// Quickstart: run breadth-first search on the Fifer system and on the
// static-pipeline baseline, and print the speedup — the repository's
// one-minute tour.
package main

import (
	"fmt"
	"log"

	"fifer"
)

func main() {
	opt := fifer.Options{Scale: 0, Seed: 1} // tiny inputs: runs in seconds

	fmt.Println("BFS on the synthetic coAuthorsDBLP stand-in (graph `Hu`):")
	cycles := map[fifer.SystemKind]uint64{}
	for _, kind := range fifer.Kinds {
		out, err := fifer.RunApp("BFS", "Hu", kind, opt)
		if err != nil {
			log.Fatal(err)
		}
		cycles[kind] = out.Cycles
		fmt.Printf("  %-12v %10d cycles (verified=%v)\n", kind, out.Cycles, out.Verified)
	}

	fmt.Printf("\nFifer vs static pipeline: %.2fx (paper: gmean 2.8x across apps)\n",
		float64(cycles[fifer.StaticPipe])/float64(cycles[fifer.FiferPipe]))
	fmt.Printf("Fifer vs 4-core OOO:      %.2fx (paper: gmean >17x across apps)\n",
		float64(cycles[fifer.MulticoreOOO])/float64(cycles[fifer.FiferPipe]))
}
