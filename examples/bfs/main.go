// Example: a deeper look at BFS on Fifer — per-system CPI stacks,
// reconfiguration behavior (Table 5's statistics), and how queue-memory
// size changes performance (one slice of Fig. 16).
package main

import (
	"fmt"
	"log"

	"fifer"
)

func main() {
	opt := fifer.Options{Scale: 0, Seed: 1}

	fmt.Println("== CPI stacks across the five Table 3 graphs (Fifer 16-PE) ==")
	for _, input := range fifer.InputsOf("BFS") {
		out, err := fifer.RunApp("BFS", input, fifer.FiferPipe, opt)
		if err != nil {
			log.Fatal(err)
		}
		i, s, q, r, idle := out.Pipe.Total.Fractions()
		fmt.Printf("  %-3s %9d cycles | issued %4.1f%% stalls %4.1f%% queues %4.1f%% reconfig %4.1f%% idle %4.1f%% | residence %.0f cyc, reconfig %.1f cyc\n",
			input, out.Cycles, 100*i, 100*s, 100*q, 100*r, 100*idle,
			out.Pipe.MeanResidence, out.Pipe.MeanReconfig)
	}

	fmt.Println("\n== Queue-memory sensitivity on graph Hu (Fig. 16's BFS panel) ==")
	base, err := fifer.RunApp("BFS", "Hu", fifer.FiferPipe, opt)
	if err != nil {
		log.Fatal(err)
	}
	for _, factor := range []float64{0.25, 0.5, 1, 2, 4} {
		f := factor
		out, err := fifer.RunApp("BFS", "Hu", fifer.FiferPipe, opt, func(cfg *fifer.Config) {
			*cfg = cfg.WithQueueScale(f)
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %4.2fx queue memory: speedup %.2f vs default\n",
			factor, float64(base.Cycles)/float64(out.Cycles))
	}

	fmt.Println("\nPaper's observation: BFS is mainly sensitive to queue size — its")
	fmt.Println("performance nearly halves with a 4 KB queue memory (insufficient decoupling).")
}
