// Example: building a custom decoupled application directly on the Fifer
// architecture model — the workflow of Sec. 4 by hand. We implement a
// scatter-histogram (an irregular kernel with data-dependent updates):
//
//	for each x in data: bins[hash(x)]++
//
// split across the source of irregularity (the bins access) into two
// stages, with the data stream fed by a scanning DRM:
//
//	scan DRM ──> hash stage ──> update stage (coupled read-modify-write)
//
// Both a single-PE Fifer temporal pipeline and a two-PE static spatial
// pipeline are built from the same stages, echoing Fig. 2.
package main

import (
	"fmt"
	"log"

	"fifer/internal/cgra"
	"fifer/internal/core"
	"fifer/internal/mem"
	"fifer/internal/queue"
	"fifer/internal/sim"
	"fifer/internal/stage"
)

const (
	numItems = 20000
	numBins  = 1 << 10
)

func hashDFG() *cgra.DFG {
	g := cgra.NewDFG("hash")
	x := g.Deq(0)
	c := g.Const(0x9e3779b97f4a7c15)
	h := g.Add(cgra.OpMul, 0, x, c)
	s := g.Const(54)
	idx := g.Add(cgra.OpShr, 0, h, s)
	g.Enq(0, idx)
	return g
}

func updateDFG() *cgra.DFG {
	g := cgra.NewDFG("update")
	idx := g.Deq(0)
	base := g.Const(0)
	a := g.Add(cgra.OpLEA, 3, base, idx)
	old := g.Add(cgra.OpLoad, 0, a)
	one := g.Const(1)
	inc := g.Add(cgra.OpAdd, 0, old, one)
	g.Add(cgra.OpStore, 0, a, inc)
	return g
}

func hashOf(x uint64) uint64 { return x * 0x9e3779b97f4a7c15 >> 54 }

// buildHistogram wires the two stages onto a system; hashPE and updPE may
// be the same PE (Fifer temporal pipeline) or different PEs (static).
func buildHistogram(sys *core.System, hashPE, updPE int, data []uint64) (bins mem.Addr) {
	b := sys.Backing
	dataA := b.AllocSlice(data)
	bins = b.AllocWords(numBins)

	// Queues: the scan DRM feeds idxQ's producer stage; hash feeds updQ.
	pe0, pe1 := sys.PE(hashPE), sys.PE(updPE)
	dataQ := pe0.AllocQueue("data", 256)
	var updIn stage.InPort
	var updOut stage.OutPort
	if hashPE == updPE {
		q := pe0.AllocQueue("upd", 256)
		updIn, updOut = stage.LocalPort{Q: q}, stage.LocalPort{Q: q}
	} else {
		arb := sys.InterPEQueue(updPE, "upd", 256, 1)
		updIn, updOut = stage.ArbiterPort{A: arb}, stage.CreditOut{P: arb.Port(0)}
	}

	drm := pe0.DRM(0)
	drm.Configure(core.DRMScan, stage.LocalPort{Q: dataQ})
	drm.In().Enq(queue.Data(uint64(dataA)))
	drm.In().Enq(queue.Data(uint64(dataA) + uint64(len(data)*mem.WordBytes)))

	place := func(g *cgra.DFG) *cgra.Mapping {
		m, err := cgra.Place(g, sys.Cfg.Fabric, true)
		if err != nil {
			log.Fatal(err)
		}
		return m
	}

	pe0.AddStage(&stage.Stage{
		Kernel: stage.KernelFunc{KernelName: "hash", Fn: func(c *stage.Ctx) stage.Status {
			t, ok := c.In[0].Peek()
			if !ok {
				return stage.NoInput
			}
			if c.Out[0].Space() < 1 {
				return stage.NoOutput
			}
			c.In[0].Pop()
			c.Out[0].Push(queue.Data(hashOf(t.Value)))
			return stage.Fired
		}},
		Mapping: place(hashDFG()),
		In:      []stage.InPort{stage.LocalPort{Q: dataQ}},
		Out:     []stage.OutPort{updOut},
	})
	pe1.AddStage(&stage.Stage{
		Kernel: stage.KernelFunc{KernelName: "update", Fn: func(c *stage.Ctx) stage.Status {
			t, ok := c.In[0].Peek()
			if !ok {
				return stage.NoInput
			}
			c.In[0].Pop()
			a := bins + mem.Addr(t.Value*mem.WordBytes)
			c.Store(a, c.Load(a)+1)
			return stage.Fired
		}},
		Mapping: place(updateDFG()),
		In:      []stage.InPort{updIn},
	})
	return bins
}

func run(mode core.Mode, pes int, data []uint64) (uint64, []uint64) {
	cfg := core.DefaultConfig()
	cfg.Mode = mode
	cfg.PEs = pes
	cfg.Hier.Clients = pes
	cfg.BackingBytes = 16 << 20
	sys := core.NewSystem(cfg)
	var bins mem.Addr
	if mode == core.ModeFifer {
		bins = buildHistogram(sys, 0, 0, data) // both stages time-multiplexed on PE 0
	} else {
		bins = buildHistogram(sys, 0, 1, data) // spatial: one stage per PE
	}
	res, err := sys.Run(core.ProgramFunc(func(*core.System) bool { return false }))
	if err != nil {
		log.Fatal(err)
	}
	out := make([]uint64, numBins)
	for i := range out {
		out[i] = sys.Backing.Load(bins + mem.Addr(i*mem.WordBytes))
	}
	return res.Cycles, out
}

func main() {
	r := sim.NewRand(7)
	data := make([]uint64, numItems)
	want := make([]uint64, numBins)
	for i := range data {
		data[i] = r.Uint64()
		want[hashOf(data[i])]++
	}

	fiferCycles, fiferBins := run(core.ModeFifer, 1, data)
	staticCycles, staticBins := run(core.ModeStatic, 2, data)
	for i := range want {
		if fiferBins[i] != want[i] || staticBins[i] != want[i] {
			log.Fatalf("bin %d mismatch: fifer=%d static=%d want=%d", i, fiferBins[i], staticBins[i], want[i])
		}
	}
	fmt.Printf("scatter-histogram over %d items into %d bins — results verified\n", numItems, numBins)
	fmt.Printf("  1-PE Fifer (temporal pipeline):  %d cycles\n", fiferCycles)
	fmt.Printf("  2-PE static (spatial pipeline):  %d cycles\n", staticCycles)
	fmt.Println("\nThe temporal pipeline time-multiplexes both stages on one PE and stays")
	fmt.Println("within 2x of a spatial pipeline using twice the hardware — the core tradeoff")
	fmt.Println("Fifer exploits (Sec. 2.2).")
}
