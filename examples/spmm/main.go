// Example: SpMM's control-intensive behavior — the merge-intersect stage
// reconfigures very frequently on sparse matrices, which is why SpMM is the
// paper's showcase for double-buffered configuration cells (Sec. 8.3) and
// for merged pipelines (Sec. 8.4).
package main

import (
	"fmt"
	"log"

	"fifer"
)

func main() {
	opt := fifer.Options{Scale: 0, Seed: 1}

	fmt.Println("== Reconfiguration behavior across Table 4 matrices (Fifer 16-PE) ==")
	for _, input := range fifer.InputsOf("SpMM") {
		out, err := fifer.RunApp("SpMM", input, fifer.FiferPipe, opt)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-3s %9d cycles | %6d reconfigs | residence %5.0f cyc (paper SpMM mean: 30 cyc)\n",
			input, out.Cycles, out.Pipe.Reconfigs, out.Pipe.MeanResidence)
	}

	fmt.Println("\n== Double-buffered configuration cells (Fig. 16's SpMM panel) ==")
	for _, input := range []string{"FS", "St"} {
		base, err := fifer.RunApp("SpMM", input, fifer.FiferPipe, opt)
		if err != nil {
			log.Fatal(err)
		}
		noDB, err := fifer.RunApp("SpMM", input, fifer.FiferPipe, opt, func(cfg *fifer.Config) {
			cfg.DoubleBuffered = false
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-3s without double buffering: %.2fx slower\n",
			input, float64(noDB.Cycles)/float64(base.Cycles))
	}

	fmt.Println("\n== Merged single-stage pipeline (Sec. 8.4) ==")
	for _, input := range []string{"FS", "St"} {
		static, err := fifer.RunApp("SpMM", input, fifer.StaticPipe, opt)
		if err != nil {
			log.Fatal(err)
		}
		merged, err := fifer.RunAppMerged("SpMM", input, fifer.StaticPipe, opt)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-3s merged static vs decoupled static: %.2fx\n",
			input, float64(static.Cycles)/float64(merged.Cycles))
	}
	fmt.Println("\nPaper's observation: merging helps small/sparse matrices (FS, Gr) where")
	fmt.Println("merge-intersections finish after a few elements and trigger frequent switches.")
}
