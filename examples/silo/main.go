// Example: Silo B+tree lookups — the pipeline with a cycle (Fig. 12b).
// Demonstrates the in-flight-lookup decoupling and the paper's observation
// that excessive queue capacity can *hurt* Silo by straining the caches.
package main

import (
	"fmt"
	"log"

	"fifer"
)

func main() {
	opt := fifer.Options{Scale: 0, Seed: 1}

	fmt.Println("== Silo (YCSB-C point lookups) across systems ==")
	for _, kind := range fifer.Kinds {
		out, err := fifer.RunApp("Silo", "YCSB-C", kind, opt)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-12v %10d cycles (verified=%v)\n", kind, out.Cycles, out.Verified)
	}

	fmt.Println("\n== Queue-capacity sensitivity (Fig. 16's Silo panel) ==")
	base, err := fifer.RunApp("Silo", "YCSB-C", fifer.FiferPipe, opt)
	if err != nil {
		log.Fatal(err)
	}
	for _, factor := range []float64{0.5, 1, 2, 4} {
		f := factor
		out, err := fifer.RunApp("Silo", "YCSB-C", fifer.FiferPipe, opt, func(cfg *fifer.Config) {
			*cfg = cfg.WithQueueScale(f)
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %4.2fx queues: %.3f speedup vs default (paper: larger queues slightly hurt)\n",
			factor, float64(base.Cycles)/float64(out.Cycles))
	}

	fmt.Println("\nResidence time (paper Table 5: Silo averages 1490 cycles per configuration,")
	fmt.Println("the longest of all apps — lookups keep each stage busy for long stretches):")
	fmt.Printf("  measured mean residence: %.0f cycles\n", base.Pipe.MeanResidence)
}
