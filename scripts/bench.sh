#!/bin/sh
# Refresh the simulator perf baseline.
#
# Usage: scripts/bench.sh [N] [extra fiferbench flags...]
#
# Writes BENCH_<N>.json (default N from the highest existing baseline + 1,
# or 0 when none exist) in the repo root: every app's first input simulated
# with the event-horizon fast-forward, with the naive-loop oracle, and with
# the sharded kernel (-shards, default 4), with wall times, simulated
# cycles/second, and speedups. Compare successive BENCH_*.json files to
# track the simulator's perf trajectory across PRs.
set -eu
cd "$(dirname "$0")/.."

n="${1:-}"
if [ -n "$n" ]; then shift; else
	n=-1
	for f in BENCH_*.json; do
		[ -e "$f" ] || break
		i="${f#BENCH_}"
		i="${i%.json}"
		[ "$i" -gt "$n" ] && n="$i"
	done
	n=$((n + 1))
fi

out="BENCH_${n}.json"
echo "writing $out" >&2
go run ./cmd/fiferbench -perfjson "$out" -scale 1 -seed 1 "$@"
