// Benchmarks that regenerate the paper's tables and figures (one benchmark
// per table/figure, as indexed in DESIGN.md §4) plus ablation benches for
// the design choices DESIGN.md §6 calls out, and micro-benchmarks of the
// simulator substrates.
//
// The table/figure benches run at the tiny workload scale so `go test
// -bench=.` finishes in minutes; `cmd/fiferbench -scale 1` runs the same
// experiments at the paper-default scale with full reporting.
package fifer_test

import (
	"testing"

	"fifer"
	"fifer/internal/apps"
	"fifer/internal/bench"
	"fifer/internal/cgra"
	"fifer/internal/core"
	"fifer/internal/graph"
	"fifer/internal/mem"
	"fifer/internal/queue"
	"fifer/internal/sim"
	"fifer/internal/sparse"
	"fifer/internal/ycsb"
)

func benchOpt() bench.Options { return bench.Options{Scale: 0, Seed: 1} }

// mustRun executes one combination, failing the benchmark on error.
func mustRun(b *testing.B, app, input string, kind apps.SystemKind, merged bool, override func(*core.Config)) apps.Outcome {
	b.Helper()
	out, err := bench.RunOne(app, input, kind, merged, benchOpt(), override)
	if err != nil {
		b.Fatal(err)
	}
	if !out.Verified {
		b.Fatalf("%s/%s on %v: result not verified", app, input, kind)
	}
	return out
}

// --- Table benches ---------------------------------------------------------

func BenchmarkTable1Area(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := mustRun(b, "BFS", "Hu", fifer.FiferPipe, false, nil)
		_ = fifer.EnergyBreakdown(out)
	}
}

func BenchmarkTable3Graphs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, in := range graph.Inputs {
			g := graph.Generate(in, graph.ScaleTiny, 1)
			if err := g.Validate(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkTable4Matrices(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, in := range sparse.Inputs {
			m := sparse.Generate(in, 0, 1)
			if err := m.Validate(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkTable5Residence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := mustRun(b, "BFS", "Hu", fifer.FiferPipe, false, nil)
		if out.Pipe.MeanResidence <= 0 {
			b.Fatal("no residence stats")
		}
	}
}

// --- Fig. 13: per-input performance (one benchmark per application) --------

func benchFig13App(b *testing.B, app string) {
	inputs := bench.InputsOf(app)
	for i := 0; i < b.N; i++ {
		for _, input := range inputs {
			for _, kind := range apps.Kinds {
				mustRun(b, app, input, kind, false, nil)
			}
		}
	}
}

func BenchmarkFig13_BFS(b *testing.B)   { benchFig13App(b, "BFS") }
func BenchmarkFig13_CC(b *testing.B)    { benchFig13App(b, "CC") }
func BenchmarkFig13_PRD(b *testing.B)   { benchFig13App(b, "PRD") }
func BenchmarkFig13_Radii(b *testing.B) { benchFig13App(b, "Radii") }
func BenchmarkFig13_SpMM(b *testing.B)  { benchFig13App(b, "SpMM") }
func BenchmarkFig13_Silo(b *testing.B)  { benchFig13App(b, "Silo") }

// --- Fig. 14/15: breakdowns (derived from the Fig. 13 runs) ----------------

func BenchmarkFig14CycleBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := mustRun(b, "BFS", "Hu", fifer.FiferPipe, false, nil)
		if out.Pipe.Total.Total() != out.Cycles*16 {
			b.Fatal("CPI stack does not cover all PE cycles")
		}
	}
}

func BenchmarkFig15Energy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		static := mustRun(b, "BFS", "Hu", fifer.StaticPipe, false, nil)
		ff := mustRun(b, "BFS", "Hu", fifer.FiferPipe, false, nil)
		if fifer.EnergyBreakdown(ff).Total() >= fifer.EnergyBreakdown(static).Total() {
			b.Log("note: Fifer used more energy than static on this input")
		}
	}
}

// --- Fig. 16: queue-size and double-buffering sweep -------------------------

func BenchmarkFig16QueueSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, factor := range bench.Fig16Factors {
			for _, double := range []bool{true, false} {
				f, d := factor, double
				mustRun(b, "BFS", "Hu", fifer.FiferPipe, false, func(cfg *core.Config) {
					*cfg = cfg.WithQueueScale(f)
					cfg.DoubleBuffered = d
				})
			}
		}
	}
}

// --- Fig. 17: merged-stage pipelines ----------------------------------------

func BenchmarkFig17MergedStages(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, app := range bench.AppNames {
			input := bench.InputsOf(app)[0]
			mustRun(b, app, input, fifer.StaticPipe, false, nil)
			mustRun(b, app, input, fifer.StaticPipe, true, nil)
			mustRun(b, app, input, fifer.FiferPipe, false, nil)
		}
	}
}

// --- Sec. 8.3: zero-cost reconfiguration ------------------------------------

func BenchmarkZeroCostReconfig(b *testing.B) {
	for i := 0; i < b.N; i++ {
		base := mustRun(b, "SpMM", "FS", fifer.FiferPipe, false, nil)
		ideal := mustRun(b, "SpMM", "FS", fifer.FiferPipe, false, func(cfg *core.Config) {
			cfg.ZeroCostReconfig = true
		})
		if ideal.Cycles > base.Cycles {
			b.Fatal("free reconfiguration was slower")
		}
	}
}

// --- Ablations (DESIGN.md §6) ------------------------------------------------

func BenchmarkAblationSchedulerPolicy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		mustRun(b, "BFS", "In", fifer.FiferPipe, false, nil) // most-work (paper)
		mustRun(b, "BFS", "In", fifer.FiferPipe, false, func(cfg *core.Config) {
			cfg.SchedPolicy = core.PolicyRoundRobin
		})
	}
}

func BenchmarkAblationSIMD(b *testing.B) {
	for i := 0; i < b.N; i++ {
		mustRun(b, "BFS", "In", fifer.FiferPipe, false, nil)
		mustRun(b, "BFS", "In", fifer.FiferPipe, false, func(cfg *core.Config) {
			cfg.SIMDReplication = false
		})
	}
}

func BenchmarkAblationDRM(b *testing.B) {
	for i := 0; i < b.N; i++ {
		mustRun(b, "BFS", "In", fifer.FiferPipe, false, nil)
		// Crippled DRMs: single outstanding access, one issue per cycle —
		// approximating the loss of decoupled memory access (Sec. 5.4).
		mustRun(b, "BFS", "In", fifer.FiferPipe, false, func(cfg *core.Config) {
			cfg.DRMOutstanding = 1
			cfg.DRMIssueWidth = 1
		})
	}
}

// --- Per-application simulation benchmarks -----------------------------------
//
// One whole-simulation benchmark per app (first input, Fifer pipeline) with
// simulated cycles/s as the reported metric. These are the perf trajectory
// the BENCH_*.json baselines track; `fiferbench -perfjson` records the same
// runs with an explicit fast-forward-vs-oracle comparison. The FastForward/
// Oracle sub-benchmarks time the same simulation under both execution modes,
// so `-bench BenchmarkRun` shows the event-horizon win directly; Sharded
// adds the epoch-barrier kernel at four shards (DESIGN.md §11) on top of
// fast-forward, so the shard win shows next to it.

func benchRunApp(b *testing.B, app string) {
	input := bench.InputsOf(app)[0]
	for _, mode := range []struct {
		name   string
		oracle bool
		shards int
	}{{"FastForward", false, 1}, {"Oracle", true, 1}, {"Sharded", false, 4}} {
		b.Run(mode.name, func(b *testing.B) {
			opt := benchOpt()
			opt.NoFastForward = mode.oracle
			opt.Shards = mode.shards
			var cycles uint64
			for i := 0; i < b.N; i++ {
				out, err := bench.RunOne(app, input, fifer.FiferPipe, false, opt, nil)
				if err != nil {
					b.Fatal(err)
				}
				cycles += out.Cycles
			}
			b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "cycles/s")
		})
	}
}

func BenchmarkRunBFS(b *testing.B)   { benchRunApp(b, "BFS") }
func BenchmarkRunCC(b *testing.B)    { benchRunApp(b, "CC") }
func BenchmarkRunPRD(b *testing.B)   { benchRunApp(b, "PRD") }
func BenchmarkRunRadii(b *testing.B) { benchRunApp(b, "Radii") }
func BenchmarkRunSpMM(b *testing.B)  { benchRunApp(b, "SpMM") }
func BenchmarkRunSilo(b *testing.B)  { benchRunApp(b, "Silo") }

// --- Substrate micro-benchmarks ---------------------------------------------

func BenchmarkQueueEnqDeq(b *testing.B) {
	q := queue.NewQueue("b", 1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.Enq(queue.Data(uint64(i)))
		q.Deq()
	}
}

func BenchmarkCacheHit(b *testing.B) {
	h := mem.NewHierarchy(mem.DefaultPEHierarchy(1))
	back := mem.NewBacking(1 << 20)
	p := h.Port(0, back)
	a := back.AllocWords(8)
	p.Load(0, a)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Load(uint64(i), a)
	}
}

func BenchmarkCacheMissStream(b *testing.B) {
	h := mem.NewHierarchy(mem.DefaultPEHierarchy(1))
	back := mem.NewBacking(256 << 20)
	p := h.Port(0, back)
	base := back.Alloc(128 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Load(uint64(i)*4, base+mem.Addr(i%(1<<20))*64)
	}
}

func BenchmarkPlaceStage(b *testing.B) {
	g := cgra.NewDFG("bench")
	v := g.Deq(0)
	base := g.Const(0)
	addr := g.Add(cgra.OpLEA, 3, base, v)
	g.Enq(0, addr)
	fabric := cgra.DefaultFabric()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := cgra.Place(g, fabric, true); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReferenceBFS(b *testing.B) {
	g := graph.Generate(graph.Hu, graph.ScaleTiny, 1)
	src := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		graph.BFS(g, src)
	}
}

func BenchmarkSimulatorCyclesPerSecond(b *testing.B) {
	// End-to-end simulator throughput: simulated PE-cycles per wall second.
	var cycles uint64
	for i := 0; i < b.N; i++ {
		out := mustRun(b, "BFS", "Hu", fifer.FiferPipe, false, nil)
		cycles += out.Cycles * 16
	}
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "PE-cycles/s")
}

func BenchmarkZipfian(b *testing.B) {
	z := ycsb.NewZipfian(1_000_000, 0.99, sim.NewRand(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		z.Next()
	}
}
