// Package fifer is the public API of this repository: a cycle-level
// reproduction of "Fifer: Practical Acceleration of Irregular Applications
// on Reconfigurable Architectures" (Nguyen & Sanchez, MICRO 2021).
//
// The package re-exports the high-level entry points a downstream user
// needs: system configuration, the four evaluated systems, the six
// benchmark applications, and the experiment harness that regenerates the
// paper's tables and figures. Lower-level building blocks (the CGRA fabric
// model, queues, caches, the stage abstraction) live in the internal
// packages and are exercised through these exports and the examples/.
//
// Quick start:
//
//	out, err := fifer.RunApp("BFS", "Hu", fifer.FiferPipe, fifer.Options{Scale: 1, Seed: 1})
//	fmt.Println(out.Cycles)
//
// See examples/quickstart for a complete program and DESIGN.md for the
// architecture overview and the per-experiment index.
package fifer

import (
	"io"

	"fifer/internal/apps"
	"fifer/internal/bench"
	"fifer/internal/core"
	"fifer/internal/energy"
	"fifer/internal/trace"
)

// SystemKind selects one of the paper's four evaluated systems.
type SystemKind = apps.SystemKind

// The four evaluated systems (Sec. 7.1).
const (
	SerialOOO    = apps.SerialOOO
	MulticoreOOO = apps.MulticoreOOO
	StaticPipe   = apps.StaticPipe
	FiferPipe    = apps.FiferPipe
)

// Kinds lists the four systems in Fig. 13's order.
var Kinds = apps.Kinds

// Options selects workload scale and seed for runs and experiments.
// Options.Jobs sets how many simulations the experiment drivers (Fig13,
// Fig16, Fig17, ZeroCost) run concurrently; 0 (the default) is serial,
// and results are bit-identical at every worker count.
type Options = bench.Options

// DefaultOptions returns the standard configuration (small scale, seed 1).
func DefaultOptions() Options { return bench.DefaultOptions() }

// Outcome is one run's measurements: cycles, CPI stack, energy inputs, and
// whether the functional result matched the reference implementation.
type Outcome = apps.Outcome

// JobResult is one sweep job's result as reported to Options.Progress:
// the job, its outcome or error, the attempt count, and whether it was
// replayed from a journal.
type JobResult = bench.JobResult

// ProgressFunc observes sweep job completions (Options.Progress); done is
// monotone 1..total and every job is reported exactly once.
type ProgressFunc = bench.ProgressFunc

// ErrCycleBudget is returned (wrapped) by runs that exhaust their cycle
// budget (Config.MaxCycles) before completing. The harness cap is applied
// before the user override, so an override may raise MaxCycles to buy a
// longer budget.
var ErrCycleBudget = bench.ErrCycleBudget

// ErrDeadlock is returned (wrapped) when the progress watchdog
// (Config.WatchdogCycles, or Options.WatchdogCycles) sees no component of
// the simulated system make progress for a full window. errors.As with a
// *DeadlockError retrieves the structured report.
var ErrDeadlock = core.ErrDeadlock

// ErrInvariant is returned (wrapped) when the live invariant audit
// (Config.AuditCycles, or Options.AuditCycles) finds the simulation in an
// inconsistent state, or when recovered queue-layer corruption is reported.
var ErrInvariant = core.ErrInvariant

// DeadlockError carries the watchdog's structured DeadlockReport: trip
// cycle, last progress, wait-for edges naming what each blocked component
// waits on, and a truncated state dump.
type DeadlockError = core.DeadlockError

// ErrCanceled is returned (wrapped) by runs stopped through the cooperative
// cancellation hook (Config.Done, or Options.Cancel). errors.As with a
// *CanceledError retrieves the stop cycle and a blocked-state excerpt.
var ErrCanceled = core.ErrCanceled

// CanceledError carries where a canceled run stopped.
type CanceledError = core.CanceledError

// ErrJobTimeout is returned (wrapped) by sweep jobs that exceeded
// Options.JobTimeout; the underlying error still wraps ErrCanceled because
// the deadline is enforced through the same cooperative hook.
var ErrJobTimeout = bench.ErrJobTimeout

// ErrorClass maps any run or sweep error onto its stable one-word class
// ("ok", "canceled", "timeout", "panic", "cycle-budget", "deadlock",
// "invariant", "journal-mismatch", "error") — the vocabulary the journal
// persists and degraded tables print.
func ErrorClass(err error) string { return bench.ErrorClass(err) }

// Journal is the crash-safe JSONL result log that makes sweeps resumable;
// see CreateJournal and ResumeJournal.
type Journal = bench.Journal

// CreateJournal starts a fresh journal at path for sweeps run with opt;
// attach it via Options.Journal.
func CreateJournal(path string, opt Options) (*Journal, error) {
	return bench.CreateJournal(path, opt)
}

// ResumeJournal verifies an existing journal against opt and returns a
// Journal that replays completed jobs and appends the rest, making a
// resumed sweep byte-identical to an uninterrupted one.
func ResumeJournal(path string, opt Options) (*Journal, error) {
	return bench.ResumeJournal(path, opt)
}

// Config is the CGRA-system configuration (Table 2 plus Fifer mechanisms).
type Config = core.Config

// Observability (DESIGN.md §9): typed event tracing and periodic metrics
// sampling with zero overhead when disabled, and bit-identical results when
// enabled.

// TraceEvent is one typed simulation event (cycle, PE, kind, component,
// payload) as emitted through Config.Tracer.
type TraceEvent = trace.Event

// TraceKind identifies a simulation event's type; see the trace package for
// the taxonomy (stage switches, reconfigurations, queue stall edges, DRM
// traffic, credits, watchdog checkpoints).
type TraceKind = trace.Kind

// Tracer receives events from a simulation (Config.Tracer). A nil Tracer —
// the default — costs one branch per potential event and no allocations.
type Tracer = trace.Tracer

// MetricsRow is one periodic per-PE sample: CPI-stack deltas over the
// window plus queue-occupancy and DRM-inflight gauges (Config.Metrics).
type MetricsRow = trace.MetricsRow

// Collector is the standard in-memory Tracer and MetricsSink: a
// fixed-capacity event ring with flight-recorder semantics plus a metrics
// log. Attach one to a single run via the Config override:
//
//	col := fifer.NewCollector(0)
//	out, _ := fifer.RunApp("BFS", "Hu", fifer.FiferPipe, opt, func(cfg *fifer.Config) {
//		cfg.Tracer, cfg.Metrics = col, col
//	})
type Collector = trace.Collector

// NewCollector returns a Collector with the given event-ring capacity
// (<= 0 selects the 1M-event default).
func NewCollector(capEvents int) *Collector { return trace.NewCollector(capEvents) }

// TraceSink collects traces and metrics for every simulation in a sweep
// (Options.Trace); its Write* methods export the Chrome/Perfetto trace JSON
// and metrics JSONL/CSV files that cmd/fifertrace summarizes.
type TraceSink = bench.TraceSink

// NewTraceSink returns a sweep-wide trace sink sampling metrics every
// sampleCycles cycles (0 selects the 4096-cycle default).
func NewTraceSink(sampleCycles uint64) *TraceSink { return bench.NewTraceSink(sampleCycles) }

// WriteTrace exports per-job event streams as one Chrome trace-event JSON
// document that Perfetto and chrome://tracing load directly.
func WriteTrace(w io.Writer, jobs []trace.JobTrace) error { return trace.WriteChrome(w, jobs) }

// DefaultConfig returns the paper's 16-PE Fifer system; StaticConfig the
// static-spatial-pipeline baseline.
func DefaultConfig() Config { return core.DefaultConfig() }

// StaticConfig returns the baseline system without the scheduler.
func StaticConfig() Config { return core.StaticConfig() }

// AppNames lists the six benchmarks in the paper's order:
// BFS, CC, PRD, Radii, SpMM, Silo.
var AppNames = bench.AppNames

// InputsOf returns the Table 3/4 input labels of an application.
func InputsOf(app string) []string { return bench.InputsOf(app) }

// RunApp executes one benchmark on one input and system, verifying the
// functional output against the pure-Go reference implementation. Passing a
// non-nil override customizes the CGRA system (queue sizes, scheduler
// policy, reconfiguration model) before the run.
func RunApp(app, input string, kind SystemKind, opt Options, override ...func(*Config)) (Outcome, error) {
	var ov func(*Config)
	if len(override) > 0 {
		ov = override[0]
	}
	return bench.RunOne(app, input, kind, false, opt, ov)
}

// RunAppMerged is RunApp with the merged-stage pipeline variant (Sec. 8.4).
func RunAppMerged(app, input string, kind SystemKind, opt Options, override ...func(*Config)) (Outcome, error) {
	var ov func(*Config)
	if len(override) > 0 {
		ov = override[0]
	}
	return bench.RunOne(app, input, kind, true, opt, ov)
}

// EnergyBreakdown converts a run's event counts into the Fig. 15 energy
// components (picojoules).
func EnergyBreakdown(out Outcome) energy.Breakdown { return energy.Model(out.Counts) }

// Experiment drivers: each regenerates one of the paper's tables/figures.

// Fig13 runs the per-input performance sweep over all systems.
func Fig13(opt Options) (*bench.Fig13Data, error) { return bench.Fig13(opt) }

// Fig16 sweeps queue-memory size and double-buffering (Fig. 16).
func Fig16(opt Options) ([]bench.Fig16Point, error) { return bench.Fig16(opt) }

// Fig17 compares merged-stage pipelines (Fig. 17 / Sec. 8.4).
func Fig17(opt Options) ([]bench.Fig17Row, error) { return bench.Fig17(opt) }

// ZeroCost measures idealized zero-cost reconfiguration (Sec. 8.3).
func ZeroCost(opt Options) (bench.ZeroCostResult, error) { return bench.ZeroCost(opt) }

// PrintTables renders the static configuration tables (Tables 1-4).
func PrintTables(w io.Writer, opt Options) {
	bench.PrintTable1(w)
	io.WriteString(w, "\n")
	bench.PrintTable2(w)
	io.WriteString(w, "\n")
	bench.PrintTable3(w, opt)
	io.WriteString(w, "\n")
	bench.PrintTable4(w, opt)
}
