// Command fifersim runs one benchmark on one system and prints its timing,
// CPI stack, and energy breakdown.
//
// Usage:
//
//	fifersim -app BFS -input Hu -system fifer -scale 1
//	fifersim -app SpMM -input St -system static -merged
//	fifersim -app Silo -system serial
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"fifer"
	"fifer/internal/apps"
	"fifer/internal/bench"
)

func main() {
	app := flag.String("app", "BFS", "application: "+strings.Join(fifer.AppNames, ", "))
	input := flag.String("input", "", "input name (default: the app's first input)")
	system := flag.String("system", "fifer", "system: serial, multicore, static, fifer")
	scale := flag.Int("scale", 1, "workload scale: 0=tiny, 1=small, 2=medium")
	seed := flag.Uint64("seed", 1, "generator seed")
	merged := flag.Bool("merged", false, "use the merged-stage pipeline variant (Sec. 8.4)")
	flag.Parse()

	kind, ok := map[string]apps.SystemKind{
		"serial": fifer.SerialOOO, "multicore": fifer.MulticoreOOO,
		"static": fifer.StaticPipe, "fifer": fifer.FiferPipe,
	}[*system]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown system %q\n", *system)
		os.Exit(2)
	}
	if *input == "" {
		*input = fifer.InputsOf(*app)[0]
	}
	opt := bench.Options{Scale: *scale, Seed: *seed}
	var out fifer.Outcome
	var err error
	if *merged {
		out, err = fifer.RunAppMerged(*app, *input, kind, opt)
	} else {
		out, err = fifer.RunApp(*app, *input, kind, opt)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("%s / %s on %v (scale %d, seed %d)\n", *app, *input, kind, *scale, *seed)
	fmt.Printf("  cycles:   %d\n", out.Cycles)
	fmt.Printf("  verified: %v (output matches the reference implementation)\n", out.Verified)
	switch kind {
	case fifer.StaticPipe, fifer.FiferPipe:
		i, s, q, r, idle := out.Pipe.Total.Fractions()
		fmt.Printf("  CPI stack: issued %.1f%%, stalls %.1f%%, queue full/empty %.1f%%, reconfig %.1f%%, idle %.1f%%\n",
			100*i, 100*s, 100*q, 100*r, 100*idle)
		fmt.Printf("  firings:  %d  reconfigurations: %d\n", out.Pipe.Firings, out.Pipe.Reconfigs)
		if out.Pipe.Reconfigs > 0 {
			fmt.Printf("  mean residence: %.0f cycles  mean reconfig period: %.1f cycles\n",
				out.Pipe.MeanResidence, out.Pipe.MeanReconfig)
		}
	default:
		fmt.Printf("  instructions: %d\n", out.Counts.Instrs)
	}
	e := fifer.EnergyBreakdown(out)
	fmt.Printf("  energy (uJ): total %.1f = memory %.1f + caches %.1f + compute %.1f + leakage %.1f\n",
		e.Total()/1e6, e.Memory/1e6, e.Caches/1e6, e.Compute/1e6, e.Leakage/1e6)
}
