package main

import (
	"errors"
	"testing"

	"fifer/internal/apps"
	"fifer/internal/bench"
	"fifer/internal/core"
)

// TestValidateShards pins the -shards front gate: values below 1 are
// rejected with the named core sentinel (so callers and scripts can match
// on it) and never reach a simulation, while every count >= 1 passes — the
// per-experiment "shards exceed PEs" case is core's to report.
func TestValidateShards(t *testing.T) {
	for _, n := range []int{-3, -1, 0} {
		err := validateShards(n)
		if err == nil {
			t.Errorf("validateShards(%d) = nil, want error", n)
			continue
		}
		if !errors.Is(err, core.ErrBadShards) {
			t.Errorf("validateShards(%d) = %v, want ErrBadShards", n, err)
		}
	}
	for _, n := range []int{1, 2, 4, 64} {
		if err := validateShards(n); err != nil {
			t.Errorf("validateShards(%d) = %v, want nil", n, err)
		}
	}
}

// TestShardsOverPEsSurfacesBadShards checks the second half of the gate: a
// count that clears the flag check but exceeds a simulation's PE count comes
// back from the run as the same named error — a structured failure, not a
// panic.
func TestShardsOverPEsSurfacesBadShards(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a simulation setup")
	}
	opt := bench.Options{Scale: 0, Seed: 1, Jobs: 1, Shards: 1 << 20}
	if err := validateShards(opt.Shards); err != nil {
		t.Fatalf("flag gate rejected %d: %v", opt.Shards, err)
	}
	_, err := bench.RunOne("BFS", bench.InputsOf("BFS")[0], apps.FiferPipe, false, opt, nil)
	if !errors.Is(err, core.ErrBadShards) {
		t.Fatalf("RunOne with Shards=%d returned %v, want ErrBadShards", opt.Shards, err)
	}
}
