package main

import (
	"encoding/json"
	"fmt"
	"os"
	"reflect"
	"runtime"
	"time"

	"fifer/internal/apps"
	"fifer/internal/bench"
)

// The -perfjson mode records the simulator's performance baseline: every
// selected app's first input is simulated twice on the Fifer pipeline —
// once with the default event-horizon fast-forward and once with the
// Config.NoFastForward oracle loop — and the wall times, simulated
// cycles/second, and speedups land in one JSON document (BENCH_<n>.json in
// the repo root, by convention). Simulated cycle counts are deterministic
// and double-checked equal between the two modes; wall times are whatever
// the host delivered, which is the point of a perf baseline.

// perfSchema tags perf baseline files; bump on incompatible changes.
const perfSchema = "fifer-perf-v1"

// perfApp is one application's timing comparison.
type perfApp struct {
	App                string  `json:"app"`
	Input              string  `json:"input"`
	Kind               string  `json:"kind"`
	Cycles             uint64  `json:"cycles"` // simulated, identical in both modes
	WallNSFast         int64   `json:"wall_ns_fast"`
	WallNSOracle       int64   `json:"wall_ns_oracle"`
	CyclesPerSecFast   float64 `json:"cycles_per_sec_fast"`
	CyclesPerSecOracle float64 `json:"cycles_per_sec_oracle"`
	Speedup            float64 `json:"speedup"` // oracle wall / fast wall
}

// perfFile is the whole baseline document.
type perfFile struct {
	Schema       string    `json:"schema"`
	Scale        int       `json:"scale"`
	Seed         uint64    `json:"seed"`
	GoVersion    string    `json:"go_version"`
	NumCPU       int       `json:"num_cpu"`
	Apps         []perfApp `json:"apps"`
	TotalSpeedup float64   `json:"total_speedup"` // sum(oracle wall) / sum(fast wall)
}

// runPerfJSON measures every selected app and writes the baseline to path.
func runPerfJSON(path string, opt bench.Options) error {
	names := opt.Apps
	if len(names) == 0 {
		names = bench.AppNames
	}
	pf := perfFile{Schema: perfSchema, Scale: opt.Scale, Seed: opt.Seed,
		GoVersion: runtime.Version(), NumCPU: runtime.NumCPU()}
	var totalFast, totalOracle time.Duration
	for _, app := range names {
		input := bench.InputsOf(app)[0]
		timed := func(oracle bool) (apps.Outcome, time.Duration, error) {
			o := opt
			o.Jobs = 1
			o.NoFastForward = oracle
			start := time.Now()
			out, err := bench.RunOne(app, input, apps.FiferPipe, false, o, nil)
			return out, time.Since(start), err
		}
		fastOut, fastD, err := timed(false)
		if err != nil {
			return fmt.Errorf("%s/%s fast-forward: %w", app, input, err)
		}
		oracleOut, oracleD, err := timed(true)
		if err != nil {
			return fmt.Errorf("%s/%s oracle: %w", app, input, err)
		}
		if !reflect.DeepEqual(fastOut, oracleOut) {
			return fmt.Errorf("%s/%s: fast-forward outcome differs from the oracle loop — fast-forward bug, do not trust this baseline", app, input)
		}
		row := perfApp{
			App: app, Input: input, Kind: apps.FiferPipe.String(),
			Cycles:             fastOut.Cycles,
			WallNSFast:         fastD.Nanoseconds(),
			WallNSOracle:       oracleD.Nanoseconds(),
			CyclesPerSecFast:   float64(fastOut.Cycles) / fastD.Seconds(),
			CyclesPerSecOracle: float64(oracleOut.Cycles) / oracleD.Seconds(),
			Speedup:            float64(oracleD) / float64(fastD),
		}
		pf.Apps = append(pf.Apps, row)
		totalFast += fastD
		totalOracle += oracleD
		fmt.Fprintf(os.Stderr, "perf %-6s %-8s %12d cycles  fast %10v  oracle %10v  speedup %.2fx\n",
			app, input, row.Cycles, fastD.Round(time.Microsecond), oracleD.Round(time.Microsecond), row.Speedup)
	}
	pf.TotalSpeedup = float64(totalOracle) / float64(totalFast)
	fmt.Fprintf(os.Stderr, "perf total: fast %v, oracle %v, speedup %.2fx\n",
		totalFast.Round(time.Microsecond), totalOracle.Round(time.Microsecond), pf.TotalSpeedup)
	data, err := json.MarshalIndent(pf, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
