package main

import (
	"encoding/json"
	"fmt"
	"os"
	"reflect"
	"runtime"
	"time"

	"fifer/internal/apps"
	"fifer/internal/bench"
)

// The -perfjson mode records the simulator's performance baseline: every
// selected app's first input is simulated three times on the Fifer pipeline —
// with the Config.NoFastForward oracle loop, with the default event-horizon
// fast-forward, and with the sharded kernel (fast-forward plus -shards
// epoch-barrier shards, default 4) — and the wall times, simulated
// cycles/second, and speedups land in one JSON document (BENCH_<n>.json in
// the repo root, by convention). Simulated cycle counts are deterministic
// and double-checked equal across all three modes; wall times are whatever
// the host delivered, which is the point of a perf baseline.

// perfSchema tags perf baseline files; bump on incompatible changes.
// v2 added the sharded-kernel column (wall_ns_sharded et al.).
const perfSchema = "fifer-perf-v2"

// perfShards is the shard count the baseline records when -shards was left
// at its sequential default.
const perfShards = 4

// perfApp is one application's timing comparison.
type perfApp struct {
	App                 string  `json:"app"`
	Input               string  `json:"input"`
	Kind                string  `json:"kind"`
	Cycles              uint64  `json:"cycles"` // simulated, identical in all modes
	WallNSFast          int64   `json:"wall_ns_fast"`
	WallNSOracle        int64   `json:"wall_ns_oracle"`
	WallNSSharded       int64   `json:"wall_ns_sharded"`
	CyclesPerSecFast    float64 `json:"cycles_per_sec_fast"`
	CyclesPerSecOracle  float64 `json:"cycles_per_sec_oracle"`
	CyclesPerSecSharded float64 `json:"cycles_per_sec_sharded"`
	Speedup             float64 `json:"speedup"`         // oracle wall / fast wall
	SpeedupSharded      float64 `json:"speedup_sharded"` // fast wall / sharded wall
}

// perfFile is the whole baseline document.
type perfFile struct {
	Schema              string    `json:"schema"`
	Scale               int       `json:"scale"`
	Seed                uint64    `json:"seed"`
	Shards              int       `json:"shards"`
	GoVersion           string    `json:"go_version"`
	NumCPU              int       `json:"num_cpu"`
	Apps                []perfApp `json:"apps"`
	TotalSpeedup        float64   `json:"total_speedup"`         // sum(oracle wall) / sum(fast wall)
	TotalSpeedupSharded float64   `json:"total_speedup_sharded"` // sum(fast wall) / sum(sharded wall)
}

// runPerfJSON measures every selected app and writes the baseline to path.
func runPerfJSON(path string, opt bench.Options) error {
	names := opt.Apps
	if len(names) == 0 {
		names = bench.AppNames
	}
	shards := opt.Shards
	if shards <= 1 {
		shards = perfShards
	}
	pf := perfFile{Schema: perfSchema, Scale: opt.Scale, Seed: opt.Seed, Shards: shards,
		GoVersion: runtime.Version(), NumCPU: runtime.NumCPU()}
	var totalFast, totalOracle, totalSharded time.Duration
	for _, app := range names {
		input := bench.InputsOf(app)[0]
		timed := func(oracle bool, shards int) (apps.Outcome, time.Duration, error) {
			o := opt
			o.Jobs = 1
			o.NoFastForward = oracle
			o.Shards = shards
			start := time.Now()
			out, err := bench.RunOne(app, input, apps.FiferPipe, false, o, nil)
			return out, time.Since(start), err
		}
		fastOut, fastD, err := timed(false, 1)
		if err != nil {
			return fmt.Errorf("%s/%s fast-forward: %w", app, input, err)
		}
		oracleOut, oracleD, err := timed(true, 1)
		if err != nil {
			return fmt.Errorf("%s/%s oracle: %w", app, input, err)
		}
		shardedOut, shardedD, err := timed(false, shards)
		if err != nil {
			return fmt.Errorf("%s/%s sharded: %w", app, input, err)
		}
		if !reflect.DeepEqual(fastOut, oracleOut) {
			return fmt.Errorf("%s/%s: fast-forward outcome differs from the oracle loop — fast-forward bug, do not trust this baseline", app, input)
		}
		if !reflect.DeepEqual(shardedOut, fastOut) {
			return fmt.Errorf("%s/%s: sharded outcome differs from the sequential kernel — shard bug, do not trust this baseline", app, input)
		}
		row := perfApp{
			App: app, Input: input, Kind: apps.FiferPipe.String(),
			Cycles:              fastOut.Cycles,
			WallNSFast:          fastD.Nanoseconds(),
			WallNSOracle:        oracleD.Nanoseconds(),
			WallNSSharded:       shardedD.Nanoseconds(),
			CyclesPerSecFast:    float64(fastOut.Cycles) / fastD.Seconds(),
			CyclesPerSecOracle:  float64(oracleOut.Cycles) / oracleD.Seconds(),
			CyclesPerSecSharded: float64(shardedOut.Cycles) / shardedD.Seconds(),
			Speedup:             float64(oracleD) / float64(fastD),
			SpeedupSharded:      float64(fastD) / float64(shardedD),
		}
		pf.Apps = append(pf.Apps, row)
		totalFast += fastD
		totalOracle += oracleD
		totalSharded += shardedD
		fmt.Fprintf(os.Stderr, "perf %-6s %-8s %12d cycles  fast %10v  oracle %10v (%.2fx)  sharded %10v (%.2fx)\n",
			app, input, row.Cycles, fastD.Round(time.Microsecond), oracleD.Round(time.Microsecond), row.Speedup,
			shardedD.Round(time.Microsecond), row.SpeedupSharded)
	}
	pf.TotalSpeedup = float64(totalOracle) / float64(totalFast)
	pf.TotalSpeedupSharded = float64(totalFast) / float64(totalSharded)
	fmt.Fprintf(os.Stderr, "perf total: oracle %v, fast %v (%.2fx), sharded %v (%.2fx)\n",
		totalOracle.Round(time.Microsecond), totalFast.Round(time.Microsecond), pf.TotalSpeedup,
		totalSharded.Round(time.Microsecond), pf.TotalSpeedupSharded)
	data, err := json.MarshalIndent(pf, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
