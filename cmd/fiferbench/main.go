// Command fiferbench regenerates the paper's evaluation tables and figures.
//
// Usage:
//
//	fiferbench                      # everything, small scale
//	fiferbench -exp fig13           # one experiment
//	fiferbench -exp fig16 -apps BFS,SpMM -scale 0
//	fiferbench -exp fig13 -j 8      # fan simulations out over 8 workers
//
// Experiments: table1 table2 table3 table4 fig13 fig14 fig15 fig16 fig17
// table5 zerocost all.
//
// -j sets how many simulations run concurrently (default: all CPUs). The
// output is byte-identical for every -j value, including -j 1 (fully
// serial): each simulation is self-contained and results are collected in
// submission order.
//
// -watchdog and -audit tune the simulator's robustness layer: the progress
// watchdog window and the live invariant-audit period, in cycles. Both
// mechanisms only observe the simulation, so results are identical at any
// setting; 0 keeps the config defaults, -1 disables.
//
// Observability: -trace FILE writes every CGRA simulation's event stream as
// one Chrome/Perfetto trace-event JSON document (load it in a trace viewer
// or summarize it with fifertrace); -metrics FILE writes periodic per-PE
// CPI-stack/occupancy samples (JSONL, or CSV when FILE ends in .csv);
// -sample N sets the sample period in cycles. Tracing only observes the
// simulation — every table stays byte-identical with or without it.
//
// Performance: the simulator fast-forwards provably-inert cycles by default
// (DESIGN.md §10); -no-fast-forward runs the naive per-cycle loop instead —
// results are byte-identical, only wall time changes. -shards N partitions
// each simulation's PEs into N epoch-barrier shards so inert regions of the
// machine park instead of ticking (DESIGN.md §11); results are again
// byte-identical, and -shards below 1 is rejected up front with exit code 2.
// -perfjson FILE skips the experiments and instead times every app three
// ways (oracle loop, fast-forward, sharded fast-forward), writing the
// baseline (cycles/s, wall time, speedups) as JSON; scripts/bench.sh wraps
// this to refresh BENCH_<n>.json. -cpuprofile/-memprofile write pprof
// profiles of whatever the invocation ran (see EXPERIMENTS.md §profiling).
//
// Crash-safe sweeps: -journal FILE appends every finished job to a
// checksummed JSONL journal; -resume (with the same -journal and workload
// flags) replays the completed jobs and runs only the remainder, producing
// byte-identical tables. -job-timeout bounds each job's wall-clock time and
// -retries re-runs transient failures. SIGINT/SIGTERM stops admitting jobs,
// cancels in-flight simulations cooperatively, flushes the journal, renders
// whatever completed in degraded mode, and exits nonzero with a summary; a
// second signal kills immediately. See EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"

	"fifer"
	"fifer/internal/bench"
	"fifer/internal/core"
)

func main() { os.Exit(fiferbench()) }

func fiferbench() int {
	exp := flag.String("exp", "all", "experiment to run")
	scale := flag.Int("scale", 1, "workload scale: 0=tiny, 1=small, 2=medium")
	seed := flag.Uint64("seed", 1, "generator seed")
	appsFlag := flag.String("apps", "", "comma-separated app subset (default: all)")
	jobs := flag.Int("j", runtime.NumCPU(), "concurrent simulations (1 = serial; output is identical for any value)")
	progress := flag.Bool("progress", false, "report per-simulation progress on stderr")
	watchdog := flag.Int64("watchdog", 0, "deadlock watchdog window in cycles (0 = config default, -1 = disable)")
	audit := flag.Int64("audit", 0, "invariant audit period in cycles (0 = config default, -1 = disable)")
	journalPath := flag.String("journal", "", "append every finished job to this crash-safe JSONL journal")
	resume := flag.Bool("resume", false, "resume from the -journal file: replay completed jobs, run only the remainder")
	jobTimeout := flag.Duration("job-timeout", 0, "per-job wall-clock deadline, e.g. 90s (0 = none)")
	retries := flag.Int("retries", 0, "times a transiently-failed job (panic, cycle budget) is retried")
	tracePath := flag.String("trace", "", "write per-simulation event traces to this Chrome/Perfetto JSON file")
	metricsPath := flag.String("metrics", "", "write periodic per-PE metrics samples to this file (.csv extension = CSV, else JSONL)")
	sample := flag.Uint64("sample", 0, "metrics sample period in cycles (0 = default 4096)")
	perfJSON := flag.String("perfjson", "", "instead of experiments, time each app fast-forward vs oracle and write the perf baseline to this JSON file")
	noFF := flag.Bool("no-fast-forward", false, "run the naive per-cycle loop instead of the event-horizon fast-forward (identical results, slower)")
	shards := flag.Int("shards", 1, "shard each simulation's PEs across this many epoch-barrier shards (1 = sequential kernel; identical results)")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the whole run to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile (after the run) to this file")
	flag.Parse()

	if err := validateShards(*shards); err != nil {
		fmt.Fprintf(os.Stderr, "fiferbench: %v\n", err)
		return 2
	}

	opt := bench.Options{Scale: *scale, Seed: *seed, Jobs: *jobs,
		WatchdogCycles: *watchdog, AuditCycles: *audit,
		JobTimeout: *jobTimeout, Retries: *retries,
		NoFastForward: *noFF, Shards: *shards}
	if *appsFlag != "" {
		opt.Apps = strings.Split(*appsFlag, ",")
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fiferbench: cpuprofile: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "fiferbench: cpuprofile: %v\n", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		path := *memProfile
		defer func() {
			runtime.GC() // settle the heap so the profile shows live data
			write := func(w io.Writer) error { return pprof.Lookup("allocs").WriteTo(w, 0) }
			if err := writeFileWith(path, write); err != nil {
				fmt.Fprintf(os.Stderr, "fiferbench: memprofile: %v\n", err)
			}
		}()
	}

	if *perfJSON != "" {
		if err := runPerfJSON(*perfJSON, opt); err != nil {
			fmt.Fprintf(os.Stderr, "fiferbench: perfjson: %v\n", err)
			return 1
		}
		return 0
	}
	var sink *bench.TraceSink
	if *tracePath != "" || *metricsPath != "" {
		sink = bench.NewTraceSink(*sample)
		opt.Trace = sink
	}

	var journal *bench.Journal
	if *resume && *journalPath == "" {
		fmt.Fprintln(os.Stderr, "fiferbench: -resume requires -journal")
		return 2
	}
	if *journalPath != "" {
		var err error
		if *resume {
			journal, err = bench.ResumeJournal(*journalPath, opt)
		} else {
			journal, err = bench.CreateJournal(*journalPath, opt)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "fiferbench: %v\n", err)
			return 1
		}
		opt.Journal = journal
		if *resume {
			fmt.Fprintf(os.Stderr, "fiferbench: resuming from %s: %d completed job(s) will be replayed\n",
				*journalPath, journal.Replayed())
		}
	}

	// SIGINT/SIGTERM: stop admitting jobs and cancel in-flight simulations
	// through the cooperative core hook; finished work is already in the
	// journal. A second signal kills the process immediately.
	cancel := make(chan struct{})
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sigc
		fmt.Fprintf(os.Stderr, "\nfiferbench: %v: canceling — in-flight simulations stop at their next checkpoint, the journal is flushed, partial tables render degraded (repeat the signal to kill now)\n", s)
		close(cancel)
		<-sigc
		os.Exit(130)
	}()
	opt.Cancel = cancel

	// The summary counts every job the drivers report, whether or not
	// -progress echoes them.
	var okCnt, failedCnt, canceledCnt, replayedCnt, retriedCnt int
	opt.Progress = func(done, total int, res bench.JobResult) {
		class := bench.ErrorClass(res.Err)
		switch class {
		case bench.ClassOK:
			okCnt++
		case bench.ClassCanceled, bench.ClassTimeout:
			canceledCnt++
		default:
			failedCnt++
		}
		if res.Replayed {
			replayedCnt++
		}
		if res.Attempts > 1 {
			retriedCnt++
		}
		if *progress {
			status := class
			if res.Replayed {
				status += " (replayed)"
			} else if res.Attempts > 1 {
				status += fmt.Sprintf(" (attempt %d)", res.Attempts)
			}
			fmt.Fprintf(os.Stderr, "[%d/%d] %s/%s %v %s\n",
				done, total, res.Job.App, res.Job.Input, res.Job.Kind, status)
		}
	}
	w := os.Stdout

	code := 0
	run := func(name string, f func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		fmt.Fprintf(w, "==== %s ====\n", name)
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			if code == 0 {
				code = 1
			}
			return
		}
		fmt.Fprintln(w)
	}

	run("table1", func() error { bench.PrintTable1(w); return nil })
	run("table2", func() error { bench.PrintTable2(w); return nil })
	run("table3", func() error { bench.PrintTable3(w, opt); return nil })
	run("table4", func() error { bench.PrintTable4(w, opt); return nil })

	var fig13 *bench.Fig13Data
	needFig13 := func() error {
		if fig13 != nil {
			return nil
		}
		var err error
		fig13, err = fifer.Fig13(opt)
		return err
	}
	run("fig13", func() error {
		if err := needFig13(); err != nil {
			return err
		}
		fig13.Print(w)
		return nil
	})
	run("fig14", func() error {
		if err := needFig13(); err != nil {
			return err
		}
		fig13.PrintFig14(w, opt)
		return nil
	})
	run("fig15", func() error {
		if err := needFig13(); err != nil {
			return err
		}
		fig13.PrintFig15(w, opt)
		return nil
	})
	run("table5", func() error {
		if err := needFig13(); err != nil {
			return err
		}
		fig13.PrintTable5(w, opt)
		return nil
	})
	run("fig16", func() error {
		points, err := fifer.Fig16(opt)
		if err != nil {
			return err
		}
		bench.PrintFig16(w, points, opt)
		return nil
	})
	run("fig17", func() error {
		rows, err := fifer.Fig17(opt)
		if err != nil {
			return err
		}
		bench.PrintFig17(w, rows)
		return nil
	})
	run("zerocost", func() error {
		r, err := fifer.ZeroCost(opt)
		if err != nil {
			return err
		}
		bench.PrintZeroCost(w, r)
		return nil
	})

	// Observability exports: written even after a partial (interrupted or
	// failed) sweep, since a trace of what did run is exactly what a
	// post-mortem wants.
	if sink != nil {
		if *tracePath != "" {
			if err := writeFileWith(*tracePath, sink.WriteTrace); err != nil {
				fmt.Fprintf(os.Stderr, "fiferbench: trace: %v\n", err)
				if code == 0 {
					code = 1
				}
			}
		}
		if *metricsPath != "" {
			writeMetrics := sink.WriteMetricsJSONL
			if strings.HasSuffix(*metricsPath, ".csv") {
				writeMetrics = sink.WriteMetricsCSV
			}
			if err := writeFileWith(*metricsPath, writeMetrics); err != nil {
				fmt.Fprintf(os.Stderr, "fiferbench: metrics: %v\n", err)
				if code == 0 {
					code = 1
				}
			}
		}
		if n := sink.Dropped(); n > 0 {
			fmt.Fprintf(os.Stderr, "fiferbench: trace ring overflowed: %d oldest event(s) dropped — the trace holds each run's suffix\n", n)
		}
	}

	if err := journal.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "fiferbench: journal: %v\n", err)
		if code == 0 {
			code = 1
		}
	}
	interrupted := false
	select {
	case <-cancel:
		interrupted = true
	default:
	}
	if failedCnt > 0 || canceledCnt > 0 || interrupted {
		fmt.Fprintf(os.Stderr, "fiferbench: %d ok, %d failed, %d canceled/timed out (%d replayed, %d retried)\n",
			okCnt, failedCnt, canceledCnt, replayedCnt, retriedCnt)
		if *journalPath != "" {
			fmt.Fprintf(os.Stderr, "fiferbench: journal flushed to %s — rerun with -resume to pick up where this run stopped\n", *journalPath)
		}
		if interrupted {
			return 130
		}
		if code == 0 {
			code = 1
		}
	}
	return code
}

// validateShards rejects unusable -shards values up front with the named
// core sentinel, so a typo'd flag exits with usage-style code 2 instead of
// surfacing mid-sweep (or, worse, panicking) after minutes of simulation.
// Counts above a system's PE count are still caught later, per simulation,
// by core's own Config.Validate — they depend on each experiment's PE count.
func validateShards(n int) error {
	if n < 1 {
		return fmt.Errorf("%w: -shards %d (need at least 1; 1 = sequential kernel)", core.ErrBadShards, n)
	}
	return nil
}

// writeFileWith creates path and streams write into it, reporting either
// the writer's or the file's first error.
func writeFileWith(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := write(f)
	cerr := f.Close()
	if werr != nil {
		return werr
	}
	return cerr
}
