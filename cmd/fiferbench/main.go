// Command fiferbench regenerates the paper's evaluation tables and figures.
//
// Usage:
//
//	fiferbench                      # everything, small scale
//	fiferbench -exp fig13           # one experiment
//	fiferbench -exp fig16 -apps BFS,SpMM -scale 0
//	fiferbench -exp fig13 -j 8      # fan simulations out over 8 workers
//
// Experiments: table1 table2 table3 table4 fig13 fig14 fig15 fig16 fig17
// table5 zerocost all.
//
// -j sets how many simulations run concurrently (default: all CPUs). The
// output is byte-identical for every -j value, including -j 1 (fully
// serial): each simulation is self-contained and results are collected in
// submission order.
//
// -watchdog and -audit tune the simulator's robustness layer: the progress
// watchdog window and the live invariant-audit period, in cycles. Both
// mechanisms only observe the simulation, so results are identical at any
// setting; 0 keeps the config defaults, -1 disables.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"fifer"
	"fifer/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run")
	scale := flag.Int("scale", 1, "workload scale: 0=tiny, 1=small, 2=medium")
	seed := flag.Uint64("seed", 1, "generator seed")
	appsFlag := flag.String("apps", "", "comma-separated app subset (default: all)")
	jobs := flag.Int("j", runtime.NumCPU(), "concurrent simulations (1 = serial; output is identical for any value)")
	progress := flag.Bool("progress", false, "report per-simulation progress on stderr")
	watchdog := flag.Int64("watchdog", 0, "deadlock watchdog window in cycles (0 = config default, -1 = disable)")
	audit := flag.Int64("audit", 0, "invariant audit period in cycles (0 = config default, -1 = disable)")
	flag.Parse()

	opt := bench.Options{Scale: *scale, Seed: *seed, Jobs: *jobs,
		WatchdogCycles: *watchdog, AuditCycles: *audit}
	if *appsFlag != "" {
		opt.Apps = strings.Split(*appsFlag, ",")
	}
	if *progress {
		opt.Progress = func(done, total int, res bench.JobResult) {
			status := "ok"
			if res.Err != nil {
				status = "FAILED"
			}
			fmt.Fprintf(os.Stderr, "[%d/%d] %s/%s %v %s\n",
				done, total, res.Job.App, res.Job.Input, res.Job.Kind, status)
		}
	}
	w := os.Stdout

	run := func(name string, f func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		fmt.Fprintf(w, "==== %s ====\n", name)
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Fprintln(w)
	}

	run("table1", func() error { bench.PrintTable1(w); return nil })
	run("table2", func() error { bench.PrintTable2(w); return nil })
	run("table3", func() error { bench.PrintTable3(w, opt); return nil })
	run("table4", func() error { bench.PrintTable4(w, opt); return nil })

	var fig13 *bench.Fig13Data
	needFig13 := func() error {
		if fig13 != nil {
			return nil
		}
		var err error
		fig13, err = fifer.Fig13(opt)
		return err
	}
	run("fig13", func() error {
		if err := needFig13(); err != nil {
			return err
		}
		fig13.Print(w)
		return nil
	})
	run("fig14", func() error {
		if err := needFig13(); err != nil {
			return err
		}
		fig13.PrintFig14(w, opt)
		return nil
	})
	run("fig15", func() error {
		if err := needFig13(); err != nil {
			return err
		}
		fig13.PrintFig15(w, opt)
		return nil
	})
	run("table5", func() error {
		if err := needFig13(); err != nil {
			return err
		}
		fig13.PrintTable5(w, opt)
		return nil
	})
	run("fig16", func() error {
		points, err := fifer.Fig16(opt)
		if err != nil {
			return err
		}
		bench.PrintFig16(w, points, opt)
		return nil
	})
	run("fig17", func() error {
		rows, err := fifer.Fig17(opt)
		if err != nil {
			return err
		}
		bench.PrintFig17(w, rows)
		return nil
	})
	run("zerocost", func() error {
		r, err := fifer.ZeroCost(opt)
		if err != nil {
			return err
		}
		bench.PrintZeroCost(w, r)
		return nil
	})
}
