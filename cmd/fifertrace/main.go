// Command fifertrace summarizes trace and metrics files produced by
// fiferbench's observability flags.
//
// Usage:
//
//	fifertrace trace.json                  # summarize every job in the trace
//	fifertrace -job BFS trace.json         # only jobs whose key contains "BFS"
//	fifertrace -top 5 trace.json           # widen/narrow the top-N tables
//	fifertrace -metrics metrics.jsonl trace.json
//
// For each job the summary reports, from the event stream alone:
//
//   - top stall sources: per-queue back-pressure, from matched
//     queue-full → queue-ready edge pairs (episode count, total stalled
//     cycles, longest episode);
//   - a reconfiguration histogram: per-PE reconfig-begin → reconfig-end
//     pairs bucketed by power-of-two duration;
//   - per-stage residency: how long each configuration stayed on its PE
//     between consecutive stage switches;
//   - DRM and credit traffic totals.
//
// With -metrics it also folds the sampled per-PE CPI stacks into a
// whole-run breakdown per job.
//
// Traces whose ring overflowed are summarized from the surviving suffix:
// unmatched leading/trailing edges are tolerated and reported, never
// fatal.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"fifer/internal/trace"
)

func main() { os.Exit(fifertrace(os.Args[1:], os.Stdout, os.Stderr)) }

func fifertrace(args []string, out, errw *os.File) int {
	fs := flag.NewFlagSet("fifertrace", flag.ContinueOnError)
	fs.SetOutput(errw)
	job := fs.String("job", "", "only summarize jobs whose key contains this substring")
	top := fs.Int("top", 8, "rows in the top-N tables")
	metricsPath := fs.String("metrics", "", "also summarize this metrics JSONL file")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(errw, "usage: fifertrace [-job SUBSTR] [-top N] [-metrics FILE] trace.json")
		return 2
	}

	f, err := os.Open(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(errw, "fifertrace: %v\n", err)
		return 1
	}
	jobs, err := trace.ReadChrome(f)
	f.Close()
	if err != nil {
		fmt.Fprintf(errw, "fifertrace: %v\n", err)
		return 1
	}

	var metrics []trace.JobMetrics
	if *metricsPath != "" {
		mf, err := os.Open(*metricsPath)
		if err != nil {
			fmt.Fprintf(errw, "fifertrace: %v\n", err)
			return 1
		}
		metrics, err = trace.ReadMetricsJSONL(mf)
		mf.Close()
		if err != nil {
			fmt.Fprintf(errw, "fifertrace: %v\n", err)
			return 1
		}
	}
	metricsOf := func(name string) []trace.MetricsRow {
		for _, m := range metrics {
			if m.Name == name {
				return m.Rows
			}
		}
		return nil
	}

	matched := 0
	for _, jt := range jobs {
		if *job != "" && !strings.Contains(jt.Name, *job) {
			continue
		}
		matched++
		s := summarize(jt)
		s.print(out, *top)
		if rows := metricsOf(jt.Name); rows != nil {
			printMetricsSummary(out, rows)
		}
		fmt.Fprintln(out)
	}
	if matched == 0 {
		if *job != "" {
			fmt.Fprintf(errw, "fifertrace: no job matching %q (trace has %d)\n", *job, len(jobs))
		} else {
			fmt.Fprintln(errw, "fifertrace: trace contains no jobs")
		}
		return 1
	}
	return 0
}
