package main

import (
	"strings"
	"testing"

	"fifer/internal/trace"
)

// fixtureTrace hand-builds a stream whose summary is computable by eye:
// two stall episodes on one queue (4 + 6 cycles) and an open one on
// another, two complete reconfigurations (durations 10 and 130) plus one
// orphan begin, three stage switches on one PE, and a leading orphan ready
// edge as a ring drop would leave behind.
func fixtureTrace() trace.JobTrace {
	return trace.JobTrace{Name: "TEST/in fifer-16pe", Events: []trace.Event{
		{Cycle: 0, PE: 1, Kind: trace.KindQueueReady, Name: "dropped.q"}, // orphan from ring drop
		{Cycle: 5, PE: 0, Kind: trace.KindStageSwitch, Name: "stage.a", Arg: 0},
		{Cycle: 10, PE: 0, Kind: trace.KindQueueFull, Name: "pe0.q1"},
		{Cycle: 14, PE: 0, Kind: trace.KindQueueReady, Name: "pe0.q1"},
		{Cycle: 20, PE: 0, Kind: trace.KindReconfigBegin, Name: "stage.b", Arg: 10},
		{Cycle: 30, PE: 0, Kind: trace.KindReconfigEnd, Name: "stage.b", Arg: 1},
		{Cycle: 30, PE: 0, Kind: trace.KindStageSwitch, Name: "stage.b", Arg: 1},
		{Cycle: 40, PE: 0, Kind: trace.KindQueueFull, Name: "pe0.q1"},
		{Cycle: 46, PE: 0, Kind: trace.KindQueueReady, Name: "pe0.q1"},
		{Cycle: 50, PE: 1, Kind: trace.KindDRMIssue, Name: "pe1.drm0", Arg: 64},
		{Cycle: 60, PE: 1, Kind: trace.KindDRMResponse, Name: "pe1.drm0", Arg: 7},
		{Cycle: 70, PE: 0, Kind: trace.KindReconfigBegin, Name: "stage.a", Arg: 130},
		{Cycle: 200, PE: 0, Kind: trace.KindReconfigEnd, Name: "stage.a", Arg: 0},
		{Cycle: 200, PE: 0, Kind: trace.KindStageSwitch, Name: "stage.a", Arg: 0},
		{Cycle: 210, PE: 1, Kind: trace.KindQueueFull, Name: "pe1.q2"},              // open at end
		{Cycle: 220, PE: 0, Kind: trace.KindReconfigBegin, Name: "stage.b", Arg: 5}, // orphan
		{Cycle: 230, PE: -1, Kind: trace.KindCheckpoint, Name: "watchdog", Arg: 9},
	}}
}

func TestSummarize(t *testing.T) {
	s := summarize(fixtureTrace())

	if s.events != 17 || s.firstCycle != 0 || s.lastCycle != 230 {
		t.Fatalf("header: events=%d cycles=[%d,%d]", s.events, s.firstCycle, s.lastCycle)
	}
	if s.orphanReady != 1 {
		t.Errorf("orphanReady = %d, want 1", s.orphanReady)
	}

	if len(s.stalls) != 2 {
		t.Fatalf("stall sources = %d, want 2 (%+v)", len(s.stalls), s.stalls)
	}
	// pe1.q2's open episode closes against lastCycle: 230-210 = 20, ranking
	// it above pe0.q1's 4+6 = 10.
	if s.stalls[0].queue != "pe1.q2" || s.stalls[0].cycles != 20 || s.stalls[0].episodes != 1 {
		t.Errorf("top stall = %+v, want pe1.q2 with 20 cycles", s.stalls[0])
	}
	if s.stalls[1].queue != "pe0.q1" || s.stalls[1].cycles != 10 || s.stalls[1].episodes != 2 || s.stalls[1].longest != 6 {
		t.Errorf("second stall = %+v, want pe0.q1 10 cycles over 2 episodes, longest 6", s.stalls[1])
	}
	if s.openStalls != 1 {
		t.Errorf("openStalls = %d, want 1", s.openStalls)
	}

	if s.reconfigs != 2 || s.orphanBegins != 1 {
		t.Errorf("reconfigs = %d (orphans %d), want 2 (1)", s.reconfigs, s.orphanBegins)
	}
	// Durations 10 and 130 land in power-of-two buckets [8,16) and [128,256).
	if s.reconfigHist[3] != 1 || s.reconfigHist[7] != 1 {
		t.Errorf("histogram = %v, want one in bucket 3 and one in bucket 7", s.reconfigHist)
	}

	// stage.a resident [5,30) and [200,230) = 55; stage.b resident [30,200) = 170.
	if len(s.residency) != 2 {
		t.Fatalf("residency rows = %d, want 2 (%+v)", len(s.residency), s.residency)
	}
	if r := s.residency[0]; r.stage != "stage.b" || r.cycles != 170 || r.switches != 1 {
		t.Errorf("top residency = %+v, want stage.b 170 cycles", r)
	}
	if r := s.residency[1]; r.stage != "stage.a" || r.cycles != 55 || r.switches != 2 {
		t.Errorf("second residency = %+v, want stage.a 55 cycles over 2 switches", r)
	}

	if s.drmIssues != 1 || s.drmResponses != 1 || s.checkpoints != 1 {
		t.Errorf("drm/checkpoint totals: %d/%d/%d", s.drmIssues, s.drmResponses, s.checkpoints)
	}
}

func TestLog2Bucket(t *testing.T) {
	for d, want := range map[uint64]int{0: 0, 1: 0, 2: 1, 3: 1, 4: 2, 7: 2, 8: 3, 15: 3, 128: 7, 255: 7, 1 << 20: 20} {
		if got := log2Bucket(d); got != want {
			t.Errorf("log2Bucket(%d) = %d, want %d", d, got, want)
		}
	}
}

// TestPrintIncludesRingDropNotes pins that a summary of a truncated trace
// tells the reader its pairings are partial instead of presenting them as
// whole-run truth.
func TestPrintIncludesRingDropNotes(t *testing.T) {
	var b strings.Builder
	summarize(fixtureTrace()).print(&b, 8)
	out := b.String()
	for _, want := range []string{
		"==== TEST/in fifer-16pe ====",
		"pe1.q2",
		"unmatched ready edge(s)",
		"unmatched begin/end edge(s)",
		"reconfigurations: 2",
		"stage.b",
		"watchdog checkpoints: 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("summary output missing %q:\n%s", want, out)
		}
	}
}

func TestMetricsSummaryPercentages(t *testing.T) {
	var b strings.Builder
	printMetricsSummary(&b, []trace.MetricsRow{
		{Cycle: 100, PE: 0, Issued: 50, Stall: 25, Queue: 25},
		{Cycle: 200, PE: 0, Issued: 100},
		{Cycle: 100, PE: 1, Idle: 100},
	})
	out := b.String()
	// PE0: 150 issued of 200 = 75%; PE1: 100% idle.
	if !strings.Contains(out, "pe0   issued  75.0") {
		t.Errorf("pe0 issued percentage wrong:\n%s", out)
	}
	if !strings.Contains(out, "idle 100.0") {
		t.Errorf("pe1 idle percentage wrong:\n%s", out)
	}
}
