package main

import (
	"fmt"
	"io"
	"math/bits"
	"sort"

	"fifer/internal/trace"
)

// summary is one job's digested event stream. All pairing (queue edges,
// reconfig begin/end, consecutive stage switches) tolerates unmatched
// leading and trailing events, because a ring-overflowed trace is the
// run's suffix and ends mid-flight.
type summary struct {
	name         string
	events       int
	firstCycle   uint64
	lastCycle    uint64
	stalls       []stallSource
	openStalls   int // queue-full edges still open at end of trace
	orphanReady  int // queue-ready edges with no visible matching full
	reconfigs    int
	orphanBegins int         // reconfig-begin with no visible end (or vice versa)
	reconfigHist map[int]int // power-of-2 bucket (floor log2 duration) -> count
	residency    []stageResidency
	drmIssues    uint64
	drmResponses uint64
	creditGrants uint64
	creditRtns   uint64
	checkpoints  int
}

// stallSource is one queue's aggregated back-pressure.
type stallSource struct {
	queue    string
	episodes int
	cycles   uint64 // total full→ready duration
	longest  uint64
}

// stageResidency is one stage's total fabric occupancy on one PE.
type stageResidency struct {
	pe       int
	stage    string
	switches int
	cycles   uint64 // cycles between its activations and the next switch
}

// summarize digests one job's event stream.
func summarize(jt trace.JobTrace) *summary {
	s := &summary{name: jt.Name, events: len(jt.Events), reconfigHist: map[int]int{}}
	if len(jt.Events) > 0 {
		s.firstCycle = jt.Events[0].Cycle
		s.lastCycle = jt.Events[len(jt.Events)-1].Cycle
	}

	type key struct {
		pe   int
		name string
	}
	fullSince := map[key]uint64{}  // open queue-full edges
	beginAt := map[int]uint64{}    // open reconfig-begin per PE
	lastSwitch := map[int]struct { // previous stage-switch per PE
		stage string
		cycle uint64
	}{}
	stalls := map[string]*stallSource{}
	res := map[key]*stageResidency{}

	endResidency := func(pe int, now uint64) {
		prev, ok := lastSwitch[pe]
		if !ok {
			return
		}
		k := key{pe, prev.stage}
		r := res[k]
		if r == nil {
			r = &stageResidency{pe: pe, stage: prev.stage}
			res[k] = r
		}
		r.switches++
		r.cycles += now - prev.cycle
	}

	for _, e := range jt.Events {
		switch e.Kind {
		case trace.KindQueueFull:
			fullSince[key{e.PE, e.Name}] = e.Cycle
		case trace.KindQueueReady:
			k := key{e.PE, e.Name}
			since, ok := fullSince[k]
			if !ok {
				s.orphanReady++
				break
			}
			delete(fullSince, k)
			src := stalls[e.Name]
			if src == nil {
				src = &stallSource{queue: e.Name}
				stalls[e.Name] = src
			}
			d := e.Cycle - since
			src.episodes++
			src.cycles += d
			if d > src.longest {
				src.longest = d
			}
		case trace.KindReconfigBegin:
			if _, open := beginAt[e.PE]; open {
				s.orphanBegins++
			}
			beginAt[e.PE] = e.Cycle
		case trace.KindReconfigEnd:
			since, ok := beginAt[e.PE]
			if !ok {
				s.orphanBegins++
				break
			}
			delete(beginAt, e.PE)
			s.reconfigs++
			s.reconfigHist[log2Bucket(e.Cycle-since)]++
		case trace.KindStageSwitch:
			endResidency(e.PE, e.Cycle)
			lastSwitch[e.PE] = struct {
				stage string
				cycle uint64
			}{e.Name, e.Cycle}
		case trace.KindDRMIssue:
			s.drmIssues++
		case trace.KindDRMResponse:
			s.drmResponses++
		case trace.KindCreditGrant:
			s.creditGrants++
		case trace.KindCreditReturn:
			s.creditRtns++
		case trace.KindCheckpoint:
			s.checkpoints++
		}
	}

	// Close what is still open at the end of the trace against the last
	// cycle, so a run that ends back-pressured still shows the stall.
	for k, since := range fullSince {
		src := stalls[k.name]
		if src == nil {
			src = &stallSource{queue: k.name}
			stalls[k.name] = src
		}
		d := s.lastCycle - since
		src.episodes++
		src.cycles += d
		if d > src.longest {
			src.longest = d
		}
		s.openStalls++
	}
	for pe := range lastSwitch {
		endResidency(pe, s.lastCycle)
	}
	s.orphanBegins += len(beginAt)

	for _, src := range stalls {
		s.stalls = append(s.stalls, *src)
	}
	sort.Slice(s.stalls, func(i, j int) bool {
		a, b := s.stalls[i], s.stalls[j]
		if a.cycles != b.cycles {
			return a.cycles > b.cycles
		}
		return a.queue < b.queue
	})
	for _, r := range res {
		s.residency = append(s.residency, *r)
	}
	sort.Slice(s.residency, func(i, j int) bool {
		a, b := s.residency[i], s.residency[j]
		if a.cycles != b.cycles {
			return a.cycles > b.cycles
		}
		if a.pe != b.pe {
			return a.pe < b.pe
		}
		return a.stage < b.stage
	})
	return s
}

// log2Bucket maps a duration to its power-of-two histogram bucket: bucket b
// holds durations in [2^b, 2^(b+1)); duration 0 lands in bucket 0 with 1.
func log2Bucket(d uint64) int {
	if d < 2 {
		return 0
	}
	return 63 - bits.LeadingZeros64(d)
}

func (s *summary) print(w io.Writer, top int) {
	fmt.Fprintf(w, "==== %s ====\n", s.name)
	fmt.Fprintf(w, "events %d  cycles [%d, %d]\n", s.events, s.firstCycle, s.lastCycle)

	fmt.Fprintf(w, "top stall sources (queue back-pressure):\n")
	if len(s.stalls) == 0 {
		fmt.Fprintf(w, "  none\n")
	}
	for i, src := range s.stalls {
		if i >= top {
			fmt.Fprintf(w, "  ... and %d more queue(s)\n", len(s.stalls)-top)
			break
		}
		fmt.Fprintf(w, "  %-28s %6d episode(s) %10d cycle(s) stalled  longest %d\n",
			src.queue, src.episodes, src.cycles, src.longest)
	}
	if s.openStalls > 0 || s.orphanReady > 0 {
		fmt.Fprintf(w, "  (%d still full at end of trace, %d unmatched ready edge(s) from ring drop)\n",
			s.openStalls, s.orphanReady)
	}

	fmt.Fprintf(w, "reconfigurations: %d\n", s.reconfigs)
	var buckets []int
	for b := range s.reconfigHist {
		buckets = append(buckets, b)
	}
	sort.Ints(buckets)
	for _, b := range buckets {
		fmt.Fprintf(w, "  %4d-%4d cycles: %d\n", 1<<b, 1<<(b+1)-1, s.reconfigHist[b])
	}
	if s.orphanBegins > 0 {
		fmt.Fprintf(w, "  (%d unmatched begin/end edge(s) from ring drop)\n", s.orphanBegins)
	}

	fmt.Fprintf(w, "per-stage residency:\n")
	if len(s.residency) == 0 {
		fmt.Fprintf(w, "  none\n")
	}
	for i, r := range s.residency {
		if i >= top {
			fmt.Fprintf(w, "  ... and %d more stage(s)\n", len(s.residency)-top)
			break
		}
		fmt.Fprintf(w, "  pe%-3d %-24s %6d switch(es) %10d cycle(s) resident\n",
			r.pe, r.stage, r.switches, r.cycles)
	}

	fmt.Fprintf(w, "drm: %d issue(s), %d response(s); credits: %d grant(s), %d return(s); watchdog checkpoints: %d\n",
		s.drmIssues, s.drmResponses, s.creditGrants, s.creditRtns, s.checkpoints)
}

// printMetricsSummary folds a job's sampled per-PE CPI-stack deltas into a
// whole-run breakdown.
func printMetricsSummary(w io.Writer, rows []trace.MetricsRow) {
	type acc struct{ issued, stall, queue, reconfig, idle, total uint64 }
	per := map[int]*acc{}
	var pes []int
	for _, r := range rows {
		a := per[r.PE]
		if a == nil {
			a = &acc{}
			per[r.PE] = a
			pes = append(pes, r.PE)
		}
		a.issued += r.Issued
		a.stall += r.Stall
		a.queue += r.Queue
		a.reconfig += r.Reconfig
		a.idle += r.Idle
		a.total += r.Total()
	}
	sort.Ints(pes)
	fmt.Fprintf(w, "sampled CPI stacks (%% of cycles):\n")
	pct := func(n, d uint64) float64 {
		if d == 0 {
			return 0
		}
		return 100 * float64(n) / float64(d)
	}
	for _, pe := range pes {
		a := per[pe]
		fmt.Fprintf(w, "  pe%-3d issued %5.1f  stall %5.1f  queue %5.1f  reconfig %5.1f  idle %5.1f  (%d cycles)\n",
			pe, pct(a.issued, a.total), pct(a.stall, a.total), pct(a.queue, a.total),
			pct(a.reconfig, a.total), pct(a.idle, a.total), a.total)
	}
}
