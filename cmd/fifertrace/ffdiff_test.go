package main

import (
	"reflect"
	"testing"

	"fifer/internal/apps"
	"fifer/internal/bench"
	"fifer/internal/trace"
)

// wdEvery is the watchdog window the differential runs pin checkpoints to —
// small enough that a scale-0 run crosses it many times, but wider than the
// longest genuine memory-stall episode so the watchdog never trips.
const wdEvery = 2048

// tracedRun simulates BFS at scale 0 with tracing and a tight watchdog,
// either under the default event-horizon fast-forward or the naive
// per-cycle oracle loop, and returns the captured event stream.
func tracedRun(t *testing.T, oracle bool) trace.JobTrace {
	t.Helper()
	opt := bench.Options{
		Scale:          0,
		Seed:           1,
		WatchdogCycles: wdEvery,
		NoFastForward:  oracle,
		Trace:          &bench.TraceSink{SampleCycles: 512, BufEvents: 1 << 17},
	}
	if _, err := bench.RunOne("BFS", bench.InputsOf("BFS")[0], apps.FiferPipe, false, opt, nil); err != nil {
		t.Fatal(err)
	}
	jobs := opt.Trace.Jobs()
	if len(jobs) != 1 {
		t.Fatalf("traced %d job(s), want 1", len(jobs))
	}
	if d := jobs[0].Collector.Dropped(); d != 0 {
		t.Fatalf("event ring dropped %d event(s); raise BufEvents so the comparison sees whole runs", d)
	}
	return trace.JobTrace{Name: jobs[0].Key, Events: jobs[0].Collector.Events()}
}

// TestSummaryFastForwardMatchesOracle runs the same simulation under
// fast-forward and under the oracle loop and digests both with summarize():
// the summaries — stall-episode pairings, reconfiguration histogram, stage
// residency, DRM and checkpoint totals — must be identical, and so must the
// raw event streams they were built from. This pins the tool-level view of
// the fast-forward equivalence contract: what fifertrace tells a user about
// a run cannot depend on which loop simulated it.
func TestSummaryFastForwardMatchesOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	fast := tracedRun(t, false)
	oracle := tracedRun(t, true)

	if !reflect.DeepEqual(fast.Events, oracle.Events) {
		t.Errorf("fast-forward event stream differs from oracle: %d vs %d event(s)",
			len(fast.Events), len(oracle.Events))
	}
	sf, so := summarize(fast), summarize(oracle)
	if !reflect.DeepEqual(sf, so) {
		t.Errorf("summaries diverge:\nfast:   %+v\noracle: %+v", sf, so)
	}

	// The comparison must not pass vacuously: the run has to exercise the
	// pairing logic (queue back-pressure episodes) and the watchdog.
	if sf.events == 0 {
		t.Fatal("traced run captured no events")
	}
	if len(sf.stalls) == 0 {
		t.Error("no stall episodes paired; pick a run with queue back-pressure")
	}
	if sf.checkpoints == 0 {
		t.Error("no watchdog checkpoints in trace")
	}
}

// TestCheckpointCadenceSurvivesFastForward pins the watchdog checkpoint
// events themselves: under fast-forward every checkpoint must still land
// exactly on the watchdog grid with the same progress signature (Arg =
// cumulative firings) the naive loop records, because fast-forward clamps
// each jump to the next observation boundary rather than skipping it.
func TestCheckpointCadenceSurvivesFastForward(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	checkpoints := func(jt trace.JobTrace) []trace.Event {
		var out []trace.Event
		for _, e := range jt.Events {
			if e.Kind == trace.KindCheckpoint {
				out = append(out, e)
			}
		}
		return out
	}
	fast := checkpoints(tracedRun(t, false))
	oracle := checkpoints(tracedRun(t, true))
	if len(fast) == 0 {
		t.Fatal("fast-forward run emitted no checkpoints")
	}
	if !reflect.DeepEqual(fast, oracle) {
		t.Fatalf("checkpoint events diverge: fast-forward %d, oracle %d", len(fast), len(oracle))
	}
	// The watchdog checkpoints at half its window so a hang is caught within
	// one window; the grid is therefore wdEvery/2.
	for _, e := range fast {
		if e.Cycle%(wdEvery/2) != 0 {
			t.Errorf("checkpoint at cycle %d is off the %d-cycle watchdog grid", e.Cycle, wdEvery/2)
		}
	}
	for i := 1; i < len(fast); i++ {
		if fast[i].Arg < fast[i-1].Arg {
			t.Errorf("checkpoint progress signature went backwards: %d then %d", fast[i-1].Arg, fast[i].Arg)
		}
	}
}
