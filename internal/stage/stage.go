// Package stage defines the pipeline-stage abstraction that Fifer executes:
// the contract between an application's decoupled stages (Sec. 4) and the
// processing elements that run them (Sec. 5). A stage couples a functional
// kernel (what one firing computes) with a CGRA mapping (how the datapath
// occupies the fabric: pipeline depth, SIMD replication, configuration
// size). This package is the moral equivalent of the paper's per-stage
// compilation flow (Fig. 5) with the LLVM front end replaced by a builder
// API; see DESIGN.md §5.
package stage

import (
	"fifer/internal/cgra"
	"fifer/internal/mem"
	"fifer/internal/queue"
)

// Status is the outcome of one firing attempt.
type Status int

const (
	// Fired: the kernel consumed inputs and produced outputs.
	Fired Status = iota
	// NoInput: a required input queue was empty.
	NoInput
	// NoOutput: a required output queue (or DRM input) was full.
	NoOutput
	// Sleep: the stage has no work by its own logic (e.g. waiting for a
	// control token that has not arrived).
	Sleep
)

func (s Status) String() string {
	switch s {
	case Fired:
		return "fired"
	case NoInput:
		return "no-input"
	case NoOutput:
		return "no-output"
	case Sleep:
		return "sleep"
	}
	return "unknown"
}

// InPort is the consumer side of a channel: a local queue, or the arbiter of
// a credited inter-PE queue.
type InPort interface {
	Len() int
	Peek() (queue.Token, bool)
	PeekAt(i int) (queue.Token, bool)
	Pop() (queue.Token, bool)
}

// OutPort is the producer side of a channel: a local queue, a credit port
// into another PE, or a DRM's address queue.
type OutPort interface {
	// Space returns how many tokens can currently be pushed.
	Space() int
	// Push delivers a token; it returns false when no space (or credit) is
	// available, without side effects.
	Push(t queue.Token) bool
}

// Named is implemented by ports that can report which queue they front.
// Deadlock diagnostics use it to name the queue a blocked stage waits on;
// PortName degrades gracefully for ports that do not implement it.
type Named interface {
	Name() string
}

// PortName returns the diagnostic name of a port, or "?" for anonymous
// (test-only) port implementations.
func PortName(p any) string {
	if n, ok := p.(Named); ok {
		return n.Name()
	}
	return "?"
}

// LocalPort adapts a *queue.Queue to both port interfaces (intra-PE queues,
// Sec. 5.3).
type LocalPort struct{ Q *queue.Queue }

func (p LocalPort) Len() int                         { return p.Q.Len() }
func (p LocalPort) Peek() (queue.Token, bool)        { return p.Q.Peek() }
func (p LocalPort) PeekAt(i int) (queue.Token, bool) { return p.Q.PeekAt(i) }
func (p LocalPort) Pop() (queue.Token, bool)         { return p.Q.Deq() }
func (p LocalPort) Space() int                       { return p.Q.Space() }
func (p LocalPort) Push(t queue.Token) bool          { return p.Q.Enq(t) }
func (p LocalPort) Name() string                     { return p.Q.Name() }

// ArbiterPort adapts the consumer side of a credited queue: dequeues return
// credits to producers.
type ArbiterPort struct{ A *queue.Arbiter }

func (p ArbiterPort) Len() int                         { return p.A.Queue().Len() }
func (p ArbiterPort) Peek() (queue.Token, bool)        { return p.A.Queue().Peek() }
func (p ArbiterPort) PeekAt(i int) (queue.Token, bool) { return p.A.Queue().PeekAt(i) }
func (p ArbiterPort) Pop() (queue.Token, bool)         { return p.A.Deq() }
func (p ArbiterPort) Name() string                     { return p.A.Queue().Name() }

// CreditOut adapts a producer-side credit port.
type CreditOut struct{ P *queue.CreditPort }

func (p CreditOut) Space() int {
	return p.P.Credits()
}
func (p CreditOut) Push(t queue.Token) bool { return p.P.Send(t) }
func (p CreditOut) Name() string            { return p.P.DestName() }

// Ctx is the environment of one firing attempt. The PE populates it each
// cycle; kernels use it to touch queues and memory.
type Ctx struct {
	Now uint64
	In  []InPort
	Out []OutPort
	Mem *mem.Port

	// ExtraStall accumulates coupled-load miss penalties incurred by this
	// firing: cycles beyond the L1 hit latency (which is covered by the
	// pipelined datapath). The PE freezes the fabric for the maximum
	// ExtraStall across the cycle's firings (Sec. 5.4: coupled interface
	// "stalls the PE on cache misses").
	ExtraStall uint64
	// FiredCtrl is set by kernels when the firing consumed or produced a
	// control token; the PE then stops grouping further SIMD firings this
	// cycle (Sec. 5.6: "control values are always handled serially").
	FiredCtrl bool
}

// Load performs a coupled load: functional value plus stall accounting.
func (c *Ctx) Load(a mem.Addr) uint64 {
	v, ready := c.Mem.Load(c.Now, a)
	if extra := ready - c.Now - c.Mem.L1().Latency(); extra > c.ExtraStall {
		c.ExtraStall = extra
	}
	return v
}

// Store performs a coupled store with the same stall accounting as Load.
func (c *Ctx) Store(a mem.Addr, v uint64) {
	ready := c.Mem.Store(c.Now, a, v)
	if extra := ready - c.Now - c.Mem.L1().Latency(); extra > c.ExtraStall {
		c.ExtraStall = extra
	}
}

// Kernel is the functional behavior of a stage. TryFire attempts exactly one
// firing (one token group through the datapath). Kernels must be
// transactional: either complete a firing, or return a non-Fired status
// having consumed nothing.
type Kernel interface {
	Name() string
	TryFire(c *Ctx) Status
}

// KernelFunc adapts a function to the Kernel interface.
type KernelFunc struct {
	KernelName string
	Fn         func(c *Ctx) Status
}

func (k KernelFunc) Name() string          { return k.KernelName }
func (k KernelFunc) TryFire(c *Ctx) Status { return k.Fn(c) }

// Stage is a kernel bound to its CGRA mapping and channel endpoints,
// ready to be scheduled onto a PE.
type Stage struct {
	Kernel  Kernel
	Mapping *cgra.Mapping
	In      []InPort
	Out     []OutPort

	// StateWork, when non-nil, reports work held in the stage's fabric
	// registers (e.g. the remainder of an active edge-list scan) that queue
	// occupancies cannot see. The scheduler and the system's quiescence
	// detector both rely on it: a stage with register-held work is not done.
	StateWork func() int

	// Firings counts successful firings (for utilization stats).
	Firings uint64

	// Devirtualized port caches, bound lazily on the first scheduler scan
	// (ports are wired by struct literal and never reassigned afterwards).
	// The per-cycle hot paths — InputWork and OutputsBlocked run for every
	// resident stage on every blocked cycle — read occupancy through these
	// concrete pointers instead of interface dispatch; a nil entry falls back
	// to the interface for exotic (test-only, wrapper) port types.
	bound   bool
	inQs    []*queue.Queue      // LocalPort / ArbiterPort input backing queues
	outQs   []*queue.Queue      // LocalPort output backing queues
	outCred []*queue.CreditPort // CreditOut output ports
}

// bind resolves the In/Out interface slices to their concrete backing
// queues and credit ports once, keeping the slow interface path only for
// port types this package does not know about.
func (s *Stage) bind() {
	s.bound = true
	s.inQs = make([]*queue.Queue, len(s.In))
	for i, in := range s.In {
		switch p := in.(type) {
		case LocalPort:
			s.inQs[i] = p.Q
		case ArbiterPort:
			s.inQs[i] = p.A.Queue()
		}
	}
	s.outQs = make([]*queue.Queue, len(s.Out))
	s.outCred = make([]*queue.CreditPort, len(s.Out))
	for i, out := range s.Out {
		switch p := out.(type) {
		case LocalPort:
			s.outQs[i] = p.Q
		case CreditOut:
			s.outCred[i] = p.P
		}
	}
}

// Name returns the kernel name.
func (s *Stage) Name() string { return s.Kernel.Name() }

// Exotic reports whether any port is of a type this package cannot see
// through (a test double, or an application wrapper like a throttling
// in-port). An exotic port's readiness may depend on state outside the
// queue/credit fabric, so execution kernels that skip provably-idle PEs
// must instead poll a stage with one (see core's sharded kernel).
func (s *Stage) Exotic() bool {
	if !s.bound {
		s.bind()
	}
	for i := range s.In {
		if s.inQs[i] == nil {
			return true
		}
	}
	for i := range s.Out {
		if s.outQs[i] == nil && s.outCred[i] == nil {
			return true
		}
	}
	return false
}

// Width returns the SIMD firing width (replicated datapaths).
func (s *Stage) Width() int {
	if s.Mapping == nil || s.Mapping.Replicas < 1 {
		return 1
	}
	return s.Mapping.Replicas
}

// Depth returns the datapath pipeline depth in cycles.
func (s *Stage) Depth() int {
	if s.Mapping == nil {
		return 1
	}
	return s.Mapping.Depth
}

// InputWork returns the total tokens waiting on the stage's inputs plus any
// register-held work — the scheduler's "amount of work available" metric
// (Sec. 5.2).
func (s *Stage) InputWork() int {
	if !s.bound {
		s.bind()
	}
	n := 0
	for i, q := range s.inQs {
		if q != nil {
			n += q.Len()
		} else {
			n += s.In[i].Len()
		}
	}
	if s.StateWork != nil {
		n += s.StateWork()
	}
	return n
}

// OutputsBlocked reports whether any output port currently has no space.
func (s *Stage) OutputsBlocked() bool {
	if !s.bound {
		s.bind()
	}
	for i := range s.Out {
		if q := s.outQs[i]; q != nil {
			if q.Space() == 0 {
				return true
			}
		} else if c := s.outCred[i]; c != nil {
			if c.Credits() == 0 {
				return true
			}
		} else if s.Out[i].Space() == 0 {
			return true
		}
	}
	return false
}

// Ready reports whether the scheduler may select this stage: it has input
// work and no output is hard-blocked.
func (s *Stage) Ready() bool {
	return s.InputWork() > 0 && !s.OutputsBlocked()
}
