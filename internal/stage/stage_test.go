package stage

import (
	"testing"

	"fifer/internal/cgra"
	"fifer/internal/mem"
	"fifer/internal/queue"
)

func TestLocalPortRoundTrip(t *testing.T) {
	q := queue.NewQueue("q", 4)
	p := LocalPort{Q: q}
	if p.Len() != 0 || p.Space() != 4 {
		t.Fatal("fresh port state wrong")
	}
	if !p.Push(queue.Data(9)) {
		t.Fatal("push failed")
	}
	if tok, ok := p.Peek(); !ok || tok.Value != 9 {
		t.Fatal("peek wrong")
	}
	if tok, ok := p.Pop(); !ok || tok.Value != 9 {
		t.Fatal("pop wrong")
	}
}

func TestArbiterAndCreditPorts(t *testing.T) {
	q := queue.NewQueue("q", 4)
	arb := queue.NewArbiter(q, 2)
	in := ArbiterPort{A: arb}
	out0 := CreditOut{P: arb.Port(0)}
	if out0.Space() != 2 {
		t.Fatalf("credit space = %d, want 2", out0.Space())
	}
	out0.Push(queue.Data(1))
	out0.Push(queue.Data(2))
	if out0.Space() != 0 || out0.Push(queue.Data(3)) {
		t.Fatal("credits not enforced")
	}
	if tok, ok := in.Pop(); !ok || tok.Value != 1 {
		t.Fatal("arbiter pop wrong")
	}
	if out0.Space() != 1 {
		t.Fatal("credit not returned to sender")
	}
}

func TestStageWorkAndReadiness(t *testing.T) {
	qin := queue.NewQueue("in", 8)
	qout := queue.NewQueue("out", 1)
	extra := 0
	s := &Stage{
		Kernel:    KernelFunc{KernelName: "k", Fn: func(*Ctx) Status { return Fired }},
		In:        []InPort{LocalPort{Q: qin}},
		Out:       []OutPort{LocalPort{Q: qout}},
		StateWork: func() int { return extra },
	}
	if s.InputWork() != 0 || s.Ready() {
		t.Fatal("empty stage should not be ready")
	}
	qin.Enq(queue.Data(1))
	if s.InputWork() != 1 || !s.Ready() {
		t.Fatal("stage with input should be ready")
	}
	extra = 3
	if s.InputWork() != 4 {
		t.Fatal("StateWork not counted")
	}
	qout.Enq(queue.Data(0)) // fill the 1-slot output
	if !s.OutputsBlocked() || s.Ready() {
		t.Fatal("full output should block readiness")
	}
}

func TestStageWidthAndDepth(t *testing.T) {
	g := cgra.NewDFG("w")
	a := g.Deq(0)
	g.Enq(0, a)
	m, err := cgra.Place(g, cgra.DefaultFabric(), true)
	if err != nil {
		t.Fatal(err)
	}
	s := &Stage{Kernel: KernelFunc{KernelName: "k"}, Mapping: m}
	if s.Width() != m.Replicas || s.Depth() != m.Depth {
		t.Fatal("width/depth not from mapping")
	}
	bare := &Stage{Kernel: KernelFunc{KernelName: "k"}}
	if bare.Width() != 1 || bare.Depth() != 1 {
		t.Fatal("unmapped stage defaults wrong")
	}
}

func TestCtxLoadStoreStallAccounting(t *testing.T) {
	h := mem.NewHierarchy(mem.DefaultPEHierarchy(1))
	b := mem.NewBacking(1 << 20)
	port := h.Port(0, b)
	a := b.AllocWords(8)
	b.Store(a, 77)

	c := &Ctx{Now: 0, Mem: port}
	if v := c.Load(a); v != 77 {
		t.Fatalf("load = %d", v)
	}
	if c.ExtraStall == 0 {
		t.Fatal("cold miss produced no extra stall")
	}
	// A warm load at a later time must not add stall beyond the L1 hit.
	c2 := &Ctx{Now: 1000, Mem: port}
	c2.Load(a)
	if c2.ExtraStall != 0 {
		t.Fatalf("warm hit charged %d extra stall", c2.ExtraStall)
	}
	c3 := &Ctx{Now: 2000, Mem: port}
	c3.Store(a, 5)
	if b.Load(a) != 5 {
		t.Fatal("store not applied functionally")
	}
}

func TestStatusStrings(t *testing.T) {
	for st, want := range map[Status]string{
		Fired: "fired", NoInput: "no-input", NoOutput: "no-output", Sleep: "sleep",
	} {
		if st.String() != want {
			t.Fatalf("%d -> %q", st, st.String())
		}
	}
}
