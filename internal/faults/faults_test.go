package faults_test

import (
	"errors"
	"strings"
	"testing"

	"fifer/internal/cgra"
	"fifer/internal/core"
	"fifer/internal/faults"
	"fifer/internal/mem"
	"fifer/internal/queue"
	"fifer/internal/stage"
)

func testConfig(pes int) core.Config {
	cfg := core.DefaultConfig()
	cfg.PEs = pes
	cfg.Hier.Clients = pes
	cfg.BackingBytes = 16 << 20
	cfg.MaxCycles = 5_000_000
	cfg.WatchdogCycles = 2000
	cfg.AuditCycles = 64
	return cfg
}

// passDFG is a minimal mapped datapath for synthetic stages.
func passDFG(name string) *cgra.Mapping {
	g := cgra.NewDFG(name)
	g.Enq(0, g.Deq(0))
	m, err := cgra.Place(g, core.DefaultConfig().Fabric, false)
	if err != nil {
		panic(err)
	}
	return m
}

// passStage forwards one token per firing from in to out.
func passStage(name string, in stage.InPort, out stage.OutPort) *stage.Stage {
	return &stage.Stage{
		Kernel: stage.KernelFunc{KernelName: name, Fn: func(c *stage.Ctx) stage.Status {
			t, ok := c.In[0].Peek()
			if !ok {
				return stage.NoInput
			}
			if c.Out[0].Space() < 1 {
				return stage.NoOutput
			}
			c.In[0].Pop()
			c.Out[0].Push(t)
			return stage.Fired
		}},
		Mapping: passDFG(name),
		In:      []stage.InPort{in},
		Out:     []stage.OutPort{out},
	}
}

// sinkStage drains its input.
func sinkStage(name string, in stage.InPort) *stage.Stage {
	return &stage.Stage{
		Kernel: stage.KernelFunc{KernelName: name, Fn: func(c *stage.Ctx) stage.Status {
			if _, ok := c.In[0].Pop(); !ok {
				return stage.NoInput
			}
			return stage.Fired
		}},
		Mapping: passDFG(name),
		In:      []stage.InPort{in},
	}
}

// fwdSinkSystem is the shared two-stage single-PE pipeline: fwd moves tokens
// q1 -> q2, sink drains q2, and q1 starts with enough tokens that the run
// outlives every injection trigger used in these tests.
func fwdSinkSystem(t *testing.T, cfg core.Config) *core.System {
	t.Helper()
	sys := core.NewSystem(cfg)
	pe := sys.PE(0)
	q1 := pe.AllocQueue("q1", 512)
	q2 := pe.AllocQueue("q2", 16)
	pe.AddStage(passStage("fwd", stage.LocalPort{Q: q1}, stage.LocalPort{Q: q2}))
	pe.AddStage(sinkStage("sink", stage.LocalPort{Q: q2}))
	for i := 0; i < 400; i++ {
		q1.Enq(queue.Data(uint64(i)))
	}
	return sys
}

func runToFailure(t *testing.T, sys *core.System) error {
	t.Helper()
	_, err := sys.Run(core.ProgramFunc(func(*core.System) bool { return false }))
	if err == nil {
		t.Fatal("faulted run completed cleanly; no detector fired")
	}
	return err
}

// TestStuckStageTripsWatchdog hangs the fwd stage mid-run and checks the
// watchdog converts the resulting global stall into ErrDeadlock whose
// wait-for summary names the stuck stage, within one window of the trigger.
func TestStuckStageTripsWatchdog(t *testing.T) {
	cfg := testConfig(1)
	sys := fwdSinkSystem(t, cfg)

	const at = 200
	plan := faults.NewPlan(1)
	plan.Add(faults.StuckStage{PE: 0, Stage: 0, At: at})
	if err := plan.Arm(sys); err != nil {
		t.Fatal(err)
	}

	err := runToFailure(t, sys)
	if !errors.Is(err, core.ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
	var de *core.DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("err chain %v carries no *DeadlockError", err)
	}
	// Everything after the sink drains q2 is dead time; the watchdog must
	// notice within ~2 windows of the trigger, not at MaxCycles.
	if sys.Cycle > at+3*cfg.WatchdogCycles {
		t.Fatalf("detected at cycle %d, want within a few windows of trigger %d", sys.Cycle, at)
	}
	var culprit bool
	for _, e := range de.Report.WaitFor {
		if strings.Contains(e.Waiter, "fwd") {
			culprit = true
		}
	}
	if !culprit {
		t.Fatalf("wait-for summary %v does not name the stuck stage fwd", de.Report.WaitFor)
	}
}

// TestWithheldCreditsTripsAudit steals credits from a producer port and
// checks the live audit reports the credit-conservation violation, naming
// the affected queue.
func TestWithheldCreditsTripsAudit(t *testing.T) {
	cfg := testConfig(2)
	sys := core.NewSystem(cfg)
	src := sys.PE(0).AllocQueue("src", 512)
	for i := 0; i < 500; i++ {
		src.Enq(queue.Data(uint64(i)))
	}
	xq := sys.InterPEQueue(1, "xq", 8, 1)
	sys.PE(0).AddStage(passStage("send", stage.LocalPort{Q: src}, stage.CreditOut{P: xq.Port(0)}))
	sys.PE(1).AddStage(sinkStage("recv", stage.ArbiterPort{A: xq}))

	plan := faults.NewPlan(2)
	plan.Add(faults.WithheldCredits{Arbiter: 0, Port: 0, N: 2, At: 100})
	if err := plan.Arm(sys); err != nil {
		t.Fatal(err)
	}

	err := runToFailure(t, sys)
	if !errors.Is(err, core.ErrInvariant) {
		t.Fatalf("err = %v, want ErrInvariant", err)
	}
	for _, want := range []string{"credit-conservation", "xq"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("audit error lacks %q: %v", want, err)
		}
	}
	if sys.Cycle > 100+2*cfg.AuditCycles {
		t.Fatalf("audit fired at cycle %d, want within two periods of trigger 100", sys.Cycle)
	}
}

// TestDroppedGrantTripsAudit drops a buffered credited token and checks the
// audit flags the credited-senders/buffered-tokens mismatch.
func TestDroppedGrantTripsAudit(t *testing.T) {
	cfg := testConfig(2)
	sys := core.NewSystem(cfg)
	src := sys.PE(0).AllocQueue("src", 64)
	for i := 0; i < 50; i++ {
		src.Enq(queue.Data(uint64(i)))
	}
	// No consumer on pe1: the 4-slot queue fills with credited tokens, so the
	// injector finds its unambiguous all-credited state quickly.
	xq := sys.InterPEQueue(1, "xq", 4, 1)
	sys.PE(0).AddStage(passStage("send", stage.LocalPort{Q: src}, stage.CreditOut{P: xq.Port(0)}))

	plan := faults.NewPlan(3)
	plan.Add(faults.DroppedGrant{Arbiter: 0, At: 50})
	if err := plan.Arm(sys); err != nil {
		t.Fatal(err)
	}

	err := runToFailure(t, sys)
	if !errors.Is(err, core.ErrInvariant) {
		t.Fatalf("err = %v, want ErrInvariant", err)
	}
	for _, want := range []string{"credit-conservation", "dropped grant", "xq"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("audit error lacks %q: %v", want, err)
		}
	}
}

// TestDelayedReconfigTripsWatchdog stretches a reconfiguration far past the
// watchdog window and checks the deadlock report blames reconfiguration.
func TestDelayedReconfigTripsWatchdog(t *testing.T) {
	cfg := testConfig(1)
	sys := fwdSinkSystem(t, cfg)

	plan := faults.NewPlan(4)
	plan.Add(faults.DelayedReconfig{PE: 0, Extra: 100_000, At: 1})
	if err := plan.Arm(sys); err != nil {
		t.Fatal(err)
	}

	err := runToFailure(t, sys)
	if !errors.Is(err, core.ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
	var de *core.DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("err chain %v carries no *DeadlockError", err)
	}
	var blamed bool
	for _, e := range de.Report.WaitFor {
		if e.WaitsOn == "reconfiguration" {
			blamed = true
		}
	}
	if !blamed {
		t.Fatalf("wait-for summary %v does not blame reconfiguration", de.Report.WaitFor)
	}
	// The freeze lasts 100k cycles; detection must come from the watchdog
	// window, not from waiting the freeze out.
	if sys.Cycle > 3*cfg.WatchdogCycles+1000 {
		t.Fatalf("detected at cycle %d, want within a few watchdog windows", sys.Cycle)
	}
}

// TestStalledDRMTripsWatchdog freezes a DRM's memory responses mid-run and
// checks the watchdog converts the starvation into ErrDeadlock whose
// wait-for summary names the starved DRM (waiting on memory) and the
// feeder stage backed up behind its address queue.
func TestStalledDRMTripsWatchdog(t *testing.T) {
	cfg := testConfig(1)
	sys := core.NewSystem(cfg)
	pe := sys.PE(0)
	arr := make([]uint64, 256)
	for i := range arr {
		arr[i] = uint64(i)
	}
	base := sys.Backing.AllocSlice(arr)
	addrs := pe.AllocQueue("addrs", 512)
	vals := pe.AllocQueue("vals", 16)
	d := pe.DRM(0)
	d.Configure(core.DRMDereference, stage.LocalPort{Q: vals})
	pe.AddStage(passStage("feed", stage.LocalPort{Q: addrs}, d.InPort()))
	pe.AddStage(sinkStage("sink", stage.LocalPort{Q: vals}))
	for i := range arr {
		addrs.Enq(queue.Data(uint64(base) + uint64(i*mem.WordBytes)))
	}

	const at = 100
	plan := faults.NewPlan(5)
	plan.Add(faults.StalledDRM{PE: 0, DRM: 0, Extra: 10_000_000, At: at})
	if err := plan.Arm(sys); err != nil {
		t.Fatal(err)
	}

	err := runToFailure(t, sys)
	if !errors.Is(err, core.ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
	var de *core.DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("err chain %v carries no *DeadlockError", err)
	}
	var starved, backedUp bool
	for _, e := range de.Report.WaitFor {
		if strings.Contains(e.Waiter, "drm0") && e.WaitsOn == "memory" {
			starved = true
		}
		if strings.Contains(e.Waiter, "feed") {
			backedUp = true
		}
	}
	if !starved {
		t.Fatalf("wait-for summary %v does not show the DRM starved on memory", de.Report.WaitFor)
	}
	if !backedUp {
		t.Fatalf("wait-for summary %v does not show the feeder backed up", de.Report.WaitFor)
	}
	// The responses are stalled for 10M cycles; detection must come from
	// the watchdog window, not from waiting the stall out.
	if sys.Cycle > at+3*cfg.WatchdogCycles+1000 {
		t.Fatalf("detected at cycle %d, want within a few windows of trigger %d", sys.Cycle, at)
	}
}

// TestPlanDeterminism runs the same seeded fault plan against two identical
// systems and checks the failure reproduces bit-identically: same detection
// cycle, same error text.
func TestPlanDeterminism(t *testing.T) {
	run := func() (uint64, string) {
		cfg := testConfig(1)
		sys := fwdSinkSystem(t, cfg)
		plan := faults.NewPlan(99)
		at := plan.TriggerBetween(100, 300)
		plan.Add(faults.StuckStage{PE: 0, Stage: 0, At: at})
		if err := plan.Arm(sys); err != nil {
			t.Fatal(err)
		}
		err := runToFailure(t, sys)
		return sys.Cycle, err.Error()
	}
	c1, e1 := run()
	c2, e2 := run()
	if c1 != c2 || e1 != e2 {
		t.Fatalf("same seed diverged:\n cycle %d vs %d\n err %q\n vs %q", c1, c2, e1, e2)
	}

	p1, p2 := faults.NewPlan(7), faults.NewPlan(7)
	for i := 0; i < 10; i++ {
		if a, b := p1.TriggerBetween(0, 1<<30), p2.TriggerBetween(0, 1<<30); a != b {
			t.Fatalf("TriggerBetween draw %d diverged: %d vs %d", i, a, b)
		}
	}
}

// TestArmRejectsBadTargets checks arming fails loudly, naming the injector.
func TestArmRejectsBadTargets(t *testing.T) {
	sys := fwdSinkSystem(t, testConfig(1))
	for _, inj := range []faults.Injector{
		faults.StuckStage{PE: 5, Stage: 0},
		faults.StuckStage{PE: 0, Stage: 9},
		faults.WithheldCredits{Arbiter: 0, N: 1},
		faults.DroppedGrant{Arbiter: 2},
		faults.DelayedReconfig{PE: -1},
		faults.StalledDRM{PE: 3, DRM: 0, Extra: 1},
		faults.StalledDRM{PE: 0, DRM: 9, Extra: 1},
		faults.StalledDRM{PE: 0, DRM: 0, Extra: 0},
	} {
		err := faults.NewPlan(0).Add(inj).Arm(sys)
		if err == nil {
			t.Errorf("%s: armed against an invalid target", inj.Name())
			continue
		}
		if !strings.Contains(err.Error(), inj.Name()) {
			t.Errorf("arm error does not name the injector: %v", err)
		}
	}
}
