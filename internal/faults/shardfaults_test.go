package faults_test

import (
	"errors"
	"fmt"
	"testing"

	"fifer/internal/core"
	"fifer/internal/faults"
	"fifer/internal/mem"
	"fifer/internal/queue"
	"fifer/internal/stage"
)

// The failure half of the shard-invariance contract (DESIGN.md §11): every
// fault detector must fire under the sharded kernel exactly as it does under
// the sequential one — same error chain, same text (wait-for summaries,
// blamed queues), same detection cycle. The sharded kernel settles lagging
// shards before the watchdog and audit observe the machine, so a detector
// must never see a shard's stale past. Each scenario below is one of the
// armed-fault suites from faults_test.go rebuilt on a 4-PE system so that
// Shards=4 is a legal (one PE per shard) partition.
func TestShardedDetectorParity(t *testing.T) {
	scenarios := []struct {
		name  string
		build func(t *testing.T, cfg core.Config) (*core.System, *faults.Plan)
		check func(t *testing.T, err error)
	}{
		{
			name: "stuck-stage-watchdog",
			build: func(t *testing.T, cfg core.Config) (*core.System, *faults.Plan) {
				sys := fwdSinkSystem(t, cfg)
				plan := faults.NewPlan(1)
				plan.Add(faults.StuckStage{PE: 0, Stage: 0, At: 200})
				return sys, plan
			},
			check: func(t *testing.T, err error) {
				if !errors.Is(err, core.ErrDeadlock) {
					t.Fatalf("err = %v, want ErrDeadlock", err)
				}
			},
		},
		{
			name: "withheld-credits-audit",
			build: func(t *testing.T, cfg core.Config) (*core.System, *faults.Plan) {
				sys := core.NewSystem(cfg)
				src := sys.PE(0).AllocQueue("src", 512)
				for i := 0; i < 500; i++ {
					src.Enq(queue.Data(uint64(i)))
				}
				xq := sys.InterPEQueue(3, "xq", 8, 1)
				sys.PE(0).AddStage(passStage("send", stage.LocalPort{Q: src}, stage.CreditOut{P: xq.Port(0)}))
				sys.PE(3).AddStage(sinkStage("recv", stage.ArbiterPort{A: xq}))
				plan := faults.NewPlan(2)
				plan.Add(faults.WithheldCredits{Arbiter: 0, Port: 0, N: 2, At: 100})
				return sys, plan
			},
			check: func(t *testing.T, err error) {
				if !errors.Is(err, core.ErrInvariant) {
					t.Fatalf("err = %v, want ErrInvariant", err)
				}
			},
		},
		{
			name: "dropped-grant-audit",
			build: func(t *testing.T, cfg core.Config) (*core.System, *faults.Plan) {
				sys := core.NewSystem(cfg)
				src := sys.PE(0).AllocQueue("src", 64)
				for i := 0; i < 50; i++ {
					src.Enq(queue.Data(uint64(i)))
				}
				xq := sys.InterPEQueue(2, "xq", 4, 1)
				sys.PE(0).AddStage(passStage("send", stage.LocalPort{Q: src}, stage.CreditOut{P: xq.Port(0)}))
				plan := faults.NewPlan(3)
				plan.Add(faults.DroppedGrant{Arbiter: 0, At: 50})
				return sys, plan
			},
			check: func(t *testing.T, err error) {
				if !errors.Is(err, core.ErrInvariant) {
					t.Fatalf("err = %v, want ErrInvariant", err)
				}
			},
		},
		{
			name: "delayed-reconfig-watchdog",
			build: func(t *testing.T, cfg core.Config) (*core.System, *faults.Plan) {
				sys := fwdSinkSystem(t, cfg)
				plan := faults.NewPlan(4)
				plan.Add(faults.DelayedReconfig{PE: 0, Extra: 100_000, At: 1})
				return sys, plan
			},
			check: func(t *testing.T, err error) {
				if !errors.Is(err, core.ErrDeadlock) {
					t.Fatalf("err = %v, want ErrDeadlock", err)
				}
			},
		},
		{
			name: "stalled-drm-watchdog",
			build: func(t *testing.T, cfg core.Config) (*core.System, *faults.Plan) {
				sys := core.NewSystem(cfg)
				pe := sys.PE(3)
				arr := make([]uint64, 256)
				for i := range arr {
					arr[i] = uint64(i)
				}
				base := sys.Backing.AllocSlice(arr)
				addrs := pe.AllocQueue("addrs", 512)
				vals := pe.AllocQueue("vals", 16)
				d := pe.DRM(0)
				d.Configure(core.DRMDereference, stage.LocalPort{Q: vals})
				pe.AddStage(passStage("feed", stage.LocalPort{Q: addrs}, d.InPort()))
				pe.AddStage(sinkStage("sink", stage.LocalPort{Q: vals}))
				for i := range arr {
					addrs.Enq(queue.Data(uint64(base) + uint64(i*mem.WordBytes)))
				}
				plan := faults.NewPlan(5)
				plan.Add(faults.StalledDRM{PE: 3, DRM: 0, Extra: 10_000_000, At: 100})
				return sys, plan
			},
			check: func(t *testing.T, err error) {
				if !errors.Is(err, core.ErrDeadlock) {
					t.Fatalf("err = %v, want ErrDeadlock", err)
				}
			},
		},
	}

	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			run := func(shards int) (uint64, error) {
				cfg := testConfig(4)
				cfg.Shards = shards
				sys, plan := sc.build(t, cfg)
				if err := plan.Arm(sys); err != nil {
					t.Fatal(err)
				}
				err := runToFailure(t, sys)
				return sys.Cycle, err
			}
			seqCycle, seqErr := run(1)
			shCycle, shErr := run(4)
			sc.check(t, seqErr)
			sc.check(t, shErr)
			if shErr.Error() != seqErr.Error() {
				t.Errorf("error text differs\nsharded:    %v\nsequential: %v", shErr, seqErr)
			}
			if shCycle != seqCycle {
				t.Errorf("detected at cycle %d sharded, %d sequential", shCycle, seqCycle)
			}
			// Structured payloads must survive the shard boundary too, not
			// just the formatted text.
			var seqDL, shDL *core.DeadlockError
			if errors.As(seqErr, &seqDL) != errors.As(shErr, &shDL) {
				t.Fatalf("only one kernel produced a DeadlockError: sequential=%v sharded=%v", seqErr, shErr)
			}
			if seqDL != nil {
				if got, want := fmt.Sprintf("%+v", shDL.Report), fmt.Sprintf("%+v", seqDL.Report); got != want {
					t.Errorf("deadlock reports differ\nsharded:    %s\nsequential: %s", got, want)
				}
			}
		})
	}
}
