// Package faults injects deterministic faults into a running core.System so
// the robustness layer's detectors — the progress watchdog and the live
// invariant audit — can be proven to fire. Each injector models one way a
// real machine (or a buggy model of one) wedges: a stage that silently
// stops firing, a flow-control credit that is withheld, a grant that is
// dropped on the floor, a configuration load that never arrives.
//
// Injection is deterministic: trigger cycles and target choices come from a
// Plan seeded with sim's xorshift RNG, so a faulted run reproduces
// bit-identically — the same detector fires at the same cycle with the same
// report. Nothing in this package is used by healthy simulations.
package faults

import (
	"fmt"

	"fifer/internal/core"
	"fifer/internal/queue"
	"fifer/internal/sim"
	"fifer/internal/stage"
)

// Injector is one fault: Arm attaches it to a system before Run; the fault
// takes effect at its trigger cycle via the system's per-cycle hook.
type Injector interface {
	// Name identifies the injector and its target in reports and tests.
	Name() string
	// Arm validates the target and hooks the fault into sys.
	Arm(sys *core.System) error
}

// Plan is a deterministic collection of injectors sharing one seeded RNG.
type Plan struct {
	rng       *sim.Rand
	injectors []Injector
}

// NewPlan returns an empty plan whose random choices derive from seed.
func NewPlan(seed uint64) *Plan { return &Plan{rng: sim.NewRand(seed)} }

// Rand exposes the plan's RNG for picking targets deterministically.
func (p *Plan) Rand() *sim.Rand { return p.rng }

// TriggerBetween draws a trigger cycle in [lo, hi) from the plan's RNG.
func (p *Plan) TriggerBetween(lo, hi uint64) uint64 {
	if hi <= lo {
		return lo
	}
	return lo + p.rng.Uint64()%(hi-lo)
}

// Add appends an injector to the plan.
func (p *Plan) Add(inj Injector) *Plan {
	p.injectors = append(p.injectors, inj)
	return p
}

// Arm arms every injector in order, stopping at the first failure.
func (p *Plan) Arm(sys *core.System) error {
	for _, inj := range p.injectors {
		if err := inj.Arm(sys); err != nil {
			return fmt.Errorf("faults: arming %s: %w", inj.Name(), err)
		}
	}
	return nil
}

// StuckStage makes a stage stop firing from cycle At onward while keeping
// its input work visible — the model of a hung datapath. Detector: the
// progress watchdog (the stage's queues back up until nothing moves).
type StuckStage struct {
	PE    int
	Stage int
	At    uint64
}

// Name implements Injector.
func (f StuckStage) Name() string {
	return fmt.Sprintf("stuck-stage(pe%d/stage%d@%d)", f.PE, f.Stage, f.At)
}

// Arm wraps the target stage's kernel with the fault gate.
func (f StuckStage) Arm(sys *core.System) error {
	if f.PE < 0 || f.PE >= len(sys.PEs) {
		return fmt.Errorf("no pe%d in a %d-PE system", f.PE, len(sys.PEs))
	}
	stages := sys.PE(f.PE).Stages()
	if f.Stage < 0 || f.Stage >= len(stages) {
		return fmt.Errorf("pe%d has no stage %d", f.PE, f.Stage)
	}
	st := stages[f.Stage]
	healthy := st.Kernel
	at := f.At
	st.Kernel = stage.KernelFunc{KernelName: healthy.Name(), Fn: func(c *stage.Ctx) stage.Status {
		if c.Now >= at {
			return stage.NoOutput // hung datapath: work visible, nothing moves
		}
		return healthy.TryFire(c)
	}}
	return nil
}

// WithheldCredits steals N flow-control credits from one producer port of
// an inter-PE queue at cycle At — the model of a credit-return link that
// silently loses messages. Detector: the live audit's credit-conservation
// check (total credits no longer cover the queue capacity).
type WithheldCredits struct {
	Arbiter int // index into sys.Arbiters()
	Port    int
	N       int
	At      uint64
}

// Name implements Injector.
func (f WithheldCredits) Name() string {
	return fmt.Sprintf("withheld-credits(arb%d/port%d n=%d @%d)", f.Arbiter, f.Port, f.N, f.At)
}

// Arm hooks the theft; it steals only credits the port actually holds,
// retrying each cycle until N have been withheld.
func (f WithheldCredits) Arm(sys *core.System) error {
	arb, err := arbiterAt(sys, f.Arbiter)
	if err != nil {
		return err
	}
	if f.Port < 0 || f.Port >= arb.Ports() {
		return fmt.Errorf("arbiter %q has no port %d", arb.Queue().Name(), f.Port)
	}
	if f.N <= 0 {
		return fmt.Errorf("nothing to withhold (N=%d)", f.N)
	}
	port := arb.Port(f.Port)
	left := f.N
	sys.OnCycle(func(_ *core.System, now uint64) {
		if left == 0 || now < f.At {
			return
		}
		steal := port.Credits()
		if steal > left {
			steal = left
		}
		if steal > 0 {
			port.FaultAdjustCredits(-steal)
			left -= steal
		}
	})
	return nil
}

// DroppedGrant discards one buffered token of an inter-PE queue without
// returning its credit at cycle At — the model of a lost grant. Detector:
// the live audit's credit-conservation check (more credited senders
// recorded than tokens buffered).
type DroppedGrant struct {
	Arbiter int
	At      uint64
}

// Name implements Injector.
func (f DroppedGrant) Name() string {
	return fmt.Sprintf("dropped-grant(arb%d@%d)", f.Arbiter, f.At)
}

// Arm hooks the drop; it waits for a cycle where every buffered token is
// credited so the loss is unambiguous, then drops exactly one.
func (f DroppedGrant) Arm(sys *core.System) error {
	arb, err := arbiterAt(sys, f.Arbiter)
	if err != nil {
		return err
	}
	done := false
	sys.OnCycle(func(_ *core.System, now uint64) {
		if done || now < f.At {
			return
		}
		q := arb.Queue()
		if q.Len() > 0 && arb.CreditedBuffered() == q.Len() {
			done = arb.FaultDropToken()
		}
	})
	return nil
}

// DelayedReconfig extends the first reconfiguration in progress at or after
// cycle At by Extra cycles — the model of a configuration load that never
// completes. Detector: the progress watchdog (the PE freezes mid-switch).
type DelayedReconfig struct {
	PE    int
	Extra uint64
	At    uint64
}

// Name implements Injector.
func (f DelayedReconfig) Name() string {
	return fmt.Sprintf("delayed-reconfig(pe%d +%d @%d)", f.PE, f.Extra, f.At)
}

// Arm hooks the delay; it retries each cycle until it catches the PE inside
// a reconfiguration period.
func (f DelayedReconfig) Arm(sys *core.System) error {
	if f.PE < 0 || f.PE >= len(sys.PEs) {
		return fmt.Errorf("no pe%d in a %d-PE system", f.PE, len(sys.PEs))
	}
	pe := sys.PE(f.PE)
	done := false
	sys.OnCycle(func(_ *core.System, now uint64) {
		if done || now < f.At {
			return
		}
		done = pe.FaultDelayReconfig(now, f.Extra)
	})
	return nil
}

// StalledDRM pushes every response of one decoupled reference machine —
// in flight and issued afterwards — out by Extra cycles from cycle At
// onward: the model of a memory controller that stops answering one
// client. Detector: the progress watchdog (the DRM's accesses sit in
// flight forever, its consumers starve, and upstream stages back up behind
// its address queue).
type StalledDRM struct {
	PE    int
	DRM   int
	Extra uint64
	At    uint64
}

// Name implements Injector.
func (f StalledDRM) Name() string {
	return fmt.Sprintf("stalled-drm(pe%d/drm%d +%d @%d)", f.PE, f.DRM, f.Extra, f.At)
}

// Arm hooks the stall; it fires once at cycle At and the delay sticks to
// every response issued from then on.
func (f StalledDRM) Arm(sys *core.System) error {
	if f.PE < 0 || f.PE >= len(sys.PEs) {
		return fmt.Errorf("no pe%d in a %d-PE system", f.PE, len(sys.PEs))
	}
	pe := sys.PE(f.PE)
	if f.DRM < 0 || f.DRM >= len(pe.DRMs) {
		return fmt.Errorf("pe%d has no drm%d", f.PE, f.DRM)
	}
	if f.Extra == 0 {
		return fmt.Errorf("nothing to stall (Extra=0)")
	}
	d := pe.DRM(f.DRM)
	done := false
	sys.OnCycle(func(_ *core.System, now uint64) {
		if done || now < f.At {
			return
		}
		done = true
		d.FaultDelayResponses(f.Extra)
	})
	return nil
}

// arbiterAt fetches the i-th inter-PE arbiter with bounds checking.
func arbiterAt(sys *core.System, i int) (*queue.Arbiter, error) {
	arbs := sys.Arbiters()
	if i < 0 || i >= len(arbs) {
		return nil, fmt.Errorf("no arbiter %d in a system with %d inter-PE queues", i, len(arbs))
	}
	return arbs[i], nil
}
