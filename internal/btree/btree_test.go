package btree

import (
	"testing"
	"testing/quick"

	"fifer/internal/mem"
	"fifer/internal/sim"
)

func build(t *testing.T, n int) (*Tree, *mem.Backing) {
	t.Helper()
	b := mem.NewBacking(64 << 20)
	keys := make([]uint64, n)
	vals := make([]uint64, n)
	for i := range keys {
		keys[i] = uint64(i) * 0x9e3779b97f4a7c15 // unique, scattered
		vals[i] = uint64(i) + 1000
	}
	tr, err := Build(b, keys, vals)
	if err != nil {
		t.Fatal(err)
	}
	return tr, b
}

func TestBuildAndLookup(t *testing.T) {
	tr, _ := build(t, 1000)
	if tr.NumKeys() != 1000 {
		t.Fatal("key count wrong")
	}
	for i := 0; i < 1000; i++ {
		k := uint64(i) * 0x9e3779b97f4a7c15
		v, ok := tr.Lookup(k)
		if !ok || v != uint64(i)+1000 {
			t.Fatalf("lookup %d: %d %v", i, v, ok)
		}
	}
	if _, ok := tr.Lookup(12345); ok {
		t.Fatal("missing key found")
	}
}

func TestBuildRejectsBadInput(t *testing.T) {
	b := mem.NewBacking(1 << 20)
	if _, err := Build(b, []uint64{1, 1}, []uint64{2, 3}); err == nil {
		t.Fatal("duplicate keys accepted")
	}
	if _, err := Build(b, []uint64{1}, []uint64{}); err == nil {
		t.Fatal("mismatched lengths accepted")
	}
	if _, err := Build(b, nil, nil); err == nil {
		t.Fatal("empty key set accepted")
	}
}

func TestSimLookupMatchesGoLookup(t *testing.T) {
	tr, b := build(t, 5000)
	for i := 0; i < 5000; i += 7 {
		k := uint64(i) * 0x9e3779b97f4a7c15
		want, _ := tr.Lookup(k)
		got, ok, visits := SimLookup(b, tr.RootAddr, k)
		if !ok || got != want {
			t.Fatalf("sim lookup %d: %d %v", i, got, ok)
		}
		if visits != tr.Height() {
			t.Fatalf("visits = %d, want height %d", visits, tr.Height())
		}
	}
	if _, ok, _ := SimLookup(b, tr.RootAddr, 999); ok {
		t.Fatal("sim lookup found missing key")
	}
}

// Property: the tree is equivalent to a map oracle for random key sets.
func TestTreeMatchesMapOracle(t *testing.T) {
	f := func(seed uint64, size uint16) bool {
		n := int(size%2000) + 1
		r := sim.NewRand(seed)
		oracle := make(map[uint64]uint64, n)
		var keys, vals []uint64
		for len(oracle) < n {
			k := r.Uint64()
			if _, dup := oracle[k]; dup {
				continue
			}
			v := r.Uint64()
			oracle[k] = v
			keys = append(keys, k)
			vals = append(vals, v)
		}
		b := mem.NewBacking(256 << 20)
		tr, err := Build(b, keys, vals)
		if err != nil {
			return false
		}
		for k, v := range oracle {
			if got, ok := tr.Lookup(k); !ok || got != v {
				return false
			}
			if got, ok, _ := SimLookup(b, tr.RootAddr, k); !ok || got != v {
				return false
			}
		}
		// Probe some absent keys.
		for i := 0; i < 16; i++ {
			k := r.Uint64()
			if _, present := oracle[k]; present {
				continue
			}
			if _, ok := tr.Lookup(k); ok {
				return false
			}
			if _, ok, _ := SimLookup(b, tr.RootAddr, k); ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestHeightGrowsLogarithmically(t *testing.T) {
	small, _ := build(t, Fanout) // one leaf
	if small.Height() != 1 {
		t.Fatalf("height = %d, want 1", small.Height())
	}
	big, _ := build(t, 10_000)
	if big.Height() < 4 || big.Height() > 7 {
		t.Fatalf("height = %d, implausible for 10k keys with fanout %d", big.Height(), Fanout)
	}
}

func TestHeaderCodec(t *testing.T) {
	n, leaf := DecodeHeader(7<<1 | 1)
	if n != 7 || !leaf {
		t.Fatal("header decode wrong")
	}
	n, leaf = DecodeHeader(3 << 1)
	if n != 3 || leaf {
		t.Fatal("internal header decode wrong")
	}
}
