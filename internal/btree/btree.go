// Package btree implements the in-memory B+tree index that the Silo
// benchmark performs lookups against (Sec. 7.2). The tree is built in Go
// and then laid out in the simulator's backing store with an explicit node
// format, so simulated pipelines traverse it with real loads and real cache
// behavior.
package btree

import (
	"fmt"
	"sort"

	"fifer/internal/mem"
)

// Fanout is the number of keys per node. 8 keys makes a node 17 words
// (136 B ≈ 2 cache lines), giving trees of depth ~7 for a few million keys,
// comparable to Silo's Masstree-style index behavior.
const Fanout = 8

// Node layout in simulated memory, in 64-bit words:
//
//	word 0:            header = numKeys<<1 | leafBit
//	words 1..Fanout:   keys (only numKeys valid)
//	words Fanout+1..:  leaf: values; internal: child node addresses
//	                   (internal nodes hold numKeys+1 children)
const (
	hdrWord   = 0
	keysWord  = 1
	childWord = keysWord + Fanout
	nodeWords = childWord + Fanout + 1
	leafBit   = 1
)

// NodeBytes is a node's footprint in simulated memory.
const NodeBytes = nodeWords * mem.WordBytes

// node is the Go-side build representation.
type node struct {
	leaf     bool
	keys     []uint64
	values   []uint64 // leaves only
	children []*node  // internal only
	addr     mem.Addr
}

// Tree is a B+tree plus its simulated-memory image.
type Tree struct {
	root     *node
	height   int
	numKeys  int
	RootAddr mem.Addr
}

// Build constructs a B+tree over the given key/value pairs (bulk-loaded,
// keys must be unique) and lays it out in backing. Keys are sorted
// internally.
func Build(backing *mem.Backing, keys, values []uint64) (*Tree, error) {
	if len(keys) != len(values) {
		return nil, fmt.Errorf("btree: %d keys but %d values", len(keys), len(values))
	}
	if len(keys) == 0 {
		return nil, fmt.Errorf("btree: empty key set")
	}
	type kv struct{ k, v uint64 }
	pairs := make([]kv, len(keys))
	for i := range keys {
		pairs[i] = kv{keys[i], values[i]}
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	for i := 1; i < len(pairs); i++ {
		if pairs[i].k == pairs[i-1].k {
			return nil, fmt.Errorf("btree: duplicate key %d", pairs[i].k)
		}
	}

	// Bulk-load leaves.
	var level []*node
	for i := 0; i < len(pairs); i += Fanout {
		end := i + Fanout
		if end > len(pairs) {
			end = len(pairs)
		}
		n := &node{leaf: true}
		for _, p := range pairs[i:end] {
			n.keys = append(n.keys, p.k)
			n.values = append(n.values, p.v)
		}
		level = append(level, n)
	}
	height := 1
	// Build internal levels: an internal node over children c0..ck uses
	// separator keys = first key of each child after the first.
	for len(level) > 1 {
		var up []*node
		for i := 0; i < len(level); i += Fanout + 1 {
			end := i + Fanout + 1
			if end > len(level) {
				end = len(level)
			}
			n := &node{}
			n.children = append(n.children, level[i:end]...)
			for _, c := range level[i+1 : end] {
				n.keys = append(n.keys, firstKey(c))
			}
			up = append(up, n)
		}
		level = up
		height++
	}
	t := &Tree{root: level[0], height: height, numKeys: len(pairs)}
	t.layout(backing, t.root)
	t.RootAddr = t.root.addr
	return t, nil
}

func firstKey(n *node) uint64 {
	for !n.leaf {
		n = n.children[0]
	}
	return n.keys[0]
}

// layout writes the subtree into simulated memory (children first so every
// child address is known when the parent is written).
func (t *Tree) layout(backing *mem.Backing, n *node) {
	if !n.leaf {
		for _, c := range n.children {
			t.layout(backing, c)
		}
	}
	n.addr = backing.Alloc(NodeBytes)
	hdr := uint64(len(n.keys)) << 1
	if n.leaf {
		hdr |= leafBit
	}
	backing.Store(n.addr+hdrWord*mem.WordBytes, hdr)
	for i, k := range n.keys {
		backing.Store(n.addr+mem.Addr((keysWord+i)*mem.WordBytes), k)
	}
	if n.leaf {
		for i, v := range n.values {
			backing.Store(n.addr+mem.Addr((childWord+i)*mem.WordBytes), v)
		}
	} else {
		for i, c := range n.children {
			backing.Store(n.addr+mem.Addr((childWord+i)*mem.WordBytes), uint64(c.addr))
		}
	}
}

// Height returns the number of node levels.
func (t *Tree) Height() int { return t.height }

// NumKeys returns the number of stored keys.
func (t *Tree) NumKeys() int { return t.numKeys }

// Lookup is the Go-side reference: it returns the value for key and whether
// it was found.
func (t *Tree) Lookup(key uint64) (uint64, bool) {
	n := t.root
	for !n.leaf {
		i := sort.Search(len(n.keys), func(i int) bool { return key < n.keys[i] })
		n = n.children[i]
	}
	for i, k := range n.keys {
		if k == key {
			return n.values[i], true
		}
	}
	return 0, false
}

// --- Simulated-memory traversal helpers -----------------------------------
//
// These mirror exactly what the Silo pipeline stages do with loads, and are
// used by tests to validate the layout and by the OOO trace generator.

// DecodeHeader splits a node header word.
func DecodeHeader(hdr uint64) (numKeys int, leaf bool) {
	return int(hdr >> 1), hdr&leafBit != 0
}

// KeyAddr returns the simulated address of keys[i] in the node at addr.
func KeyAddr(addr mem.Addr, i int) mem.Addr {
	return addr + mem.Addr((keysWord+i)*mem.WordBytes)
}

// ChildAddr returns the simulated address of children[i] (or values[i] in a
// leaf).
func ChildAddr(addr mem.Addr, i int) mem.Addr {
	return addr + mem.Addr((childWord+i)*mem.WordBytes)
}

// SimLookup walks the simulated-memory image the way the hardware pipeline
// does: linear key scans within a node, one child dereference per level.
// It returns the value, whether the key was found, and the number of node
// visits (pipeline cycles around the Silo loop, Fig. 12b).
func SimLookup(backing *mem.Backing, root mem.Addr, key uint64) (val uint64, found bool, visits int) {
	addr := root
	for {
		visits++
		numKeys, leaf := DecodeHeader(backing.Load(addr + hdrWord*mem.WordBytes))
		if leaf {
			for i := 0; i < numKeys; i++ {
				if backing.Load(KeyAddr(addr, i)) == key {
					return backing.Load(ChildAddr(addr, i)), true, visits
				}
			}
			return 0, false, visits
		}
		i := 0
		for i < numKeys && key >= backing.Load(KeyAddr(addr, i)) {
			i++
		}
		addr = mem.Addr(backing.Load(ChildAddr(addr, i)))
	}
}
