// Package energy provides the area and energy models behind Table 1 and
// Fig. 15. The paper synthesizes RTL (Yosys + FreePDK45) for area, models
// core/uncore energy with McPAT at 22 nm, and HBM energy from O'Connor et
// al.; we substitute calibrated per-event energy constants that reproduce
// the paper's *relative* breakdowns (see DESIGN.md §5). All energies are in
// picojoules, areas in mm².
package energy

// Table 1: implementation costs for the major components of a Fifer PE
// (45 nm FreePDK45, 2 GHz).
const (
	AreaFabricMM2    = 0.91   // 16×5 functional units
	AreaFMAMM2       = 0.15   // 4× double-precision FMA units
	AreaQueueSRAMMM2 = 0.054  // 16 KB queue SRAM
	AreaDRMsMM2      = 0.0029 // 4× decoupled reference machines
	AreaDCacheMM2    = 0.22   // 32 KB data cache
)

// AreaPEMM2 is the total per-PE area (Table 1's bottom line, 1.34 mm²).
const AreaPEMM2 = AreaFabricMM2 + AreaFMAMM2 + AreaQueueSRAMMM2 + AreaDRMsMM2 + AreaDCacheMM2

// AreaOOOCoreMM2 is the area of one Nehalem-class core at the same node;
// the paper reports a PE is 4.6% of it (1.34 / 0.046 ≈ 29 mm²).
const AreaOOOCoreMM2 = 29.0

// Per-event dynamic energies (22 nm, pJ). The OOO per-instruction energy
// folds in frontend, rename, wakeup/select and register-file overheads —
// the "instruction interpretation overheads" the paper's Sec. 1 cites.
const (
	EnergyFabricOp   = 4.0    // one 64-bit ALU op incl. switch traversal
	EnergyFMAOp      = 22.0   // double-precision FMA
	EnergyQueueToken = 2.0    // queue SRAM enqueue or dequeue
	EnergyConfigByte = 0.5    // reconfiguration data movement per byte
	EnergyDRMAccess  = 1.0    // DRM FSM bookkeeping per access
	EnergyL1Access   = 12.0   //
	EnergyL2Access   = 30.0   //
	EnergyLLCAccess  = 75.0   //
	EnergyMemLine    = 2200.0 // one 64 B HBM line transfer (≈4.3 pJ/bit)
	EnergyOOOInstr   = 520.0  // average per-instruction core energy (McPAT-like)
)

// Leakage power densities (pJ per cycle per mm² at 2 GHz). OOO cores leak
// more per area due to their ratio of SRAM-heavy speculative structures.
const (
	LeakagePEPerMM2   = 8.0
	LeakageCorePerMM2 = 14.0
	LeakageLLCPerMM2  = 3.0
	AreaLLCPerMB      = 4.0 // mm² per MB of LLC at this node
)

// Counts are the raw event counts a run produces; the reporting layer fills
// them from simulator statistics.
type Counts struct {
	Cycles uint64

	// CGRA-system events.
	PEs         int
	FabricOps   uint64 // integer-ALU operations executed on fabrics
	FMAOps      uint64
	QueueTokens uint64 // tokens enqueued + dequeued
	ConfigBytes uint64 // configuration bytes streamed during reconfigurations
	DRMAccesses uint64

	// OOO-system events.
	Cores  int
	Instrs uint64

	// Shared memory-hierarchy events.
	L1Accesses  uint64
	L2Accesses  uint64
	LLCAccesses uint64
	MemLines    uint64
	LLCBytes    int
}

// Breakdown is Fig. 15's four energy components, in picojoules.
type Breakdown struct {
	Memory  float64 // main-memory dynamic energy
	Caches  float64 // L1/L2/LLC dynamic energy
	Compute float64 // core or fabric + queue + DRM + reconfiguration energy
	Leakage float64
}

// Total returns the summed energy.
func (b Breakdown) Total() float64 {
	return b.Memory + b.Caches + b.Compute + b.Leakage
}

// Model converts event counts into the Fig. 15 energy breakdown.
func Model(c Counts) Breakdown {
	var b Breakdown
	b.Memory = float64(c.MemLines) * EnergyMemLine
	b.Caches = float64(c.L1Accesses)*EnergyL1Access +
		float64(c.L2Accesses)*EnergyL2Access +
		float64(c.LLCAccesses)*EnergyLLCAccess
	b.Compute = float64(c.FabricOps)*EnergyFabricOp +
		float64(c.FMAOps)*EnergyFMAOp +
		float64(c.QueueTokens)*EnergyQueueToken +
		float64(c.ConfigBytes)*EnergyConfigByte +
		float64(c.DRMAccesses)*EnergyDRMAccess +
		float64(c.Instrs)*EnergyOOOInstr
	llcArea := float64(c.LLCBytes) / (1 << 20) * AreaLLCPerMB
	area := llcArea * LeakageLLCPerMM2
	if c.Cores > 0 {
		area += float64(c.Cores) * AreaOOOCoreMM2 * LeakageCorePerMM2
	}
	if c.PEs > 0 {
		area += float64(c.PEs) * AreaPEMM2 * LeakagePEPerMM2
	}
	b.Leakage = float64(c.Cycles) * area
	return b
}
