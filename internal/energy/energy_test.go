package energy

import (
	"math"
	"testing"
)

func TestTable1Total(t *testing.T) {
	// Table 1's bottom line: 1.34 mm² per PE.
	if math.Abs(AreaPEMM2-1.34) > 0.01 {
		t.Fatalf("PE area = %g, want 1.34 (Table 1)", AreaPEMM2)
	}
	// A PE is 4.6% of an OOO core's area (Sec. 6).
	ratio := AreaPEMM2 / AreaOOOCoreMM2
	if ratio < 0.04 || ratio > 0.05 {
		t.Fatalf("PE/core area ratio = %.3f, want ~0.046", ratio)
	}
}

func TestModelComposition(t *testing.T) {
	c := Counts{
		Cycles: 1000, PEs: 16,
		FabricOps: 100, FMAOps: 10, QueueTokens: 50, ConfigBytes: 360,
		DRMAccesses: 20, L1Accesses: 200, LLCAccesses: 30, MemLines: 5,
		LLCBytes: 8 << 20,
	}
	b := Model(c)
	if b.Memory != 5*EnergyMemLine {
		t.Fatal("memory energy wrong")
	}
	wantCaches := 200*EnergyL1Access + 30*EnergyLLCAccess
	if b.Caches != wantCaches {
		t.Fatal("cache energy wrong")
	}
	wantCompute := 100*EnergyFabricOp + 10*EnergyFMAOp + 50*EnergyQueueToken +
		360*EnergyConfigByte + 20*EnergyDRMAccess
	if b.Compute != wantCompute {
		t.Fatal("compute energy wrong")
	}
	if b.Leakage <= 0 || b.Total() != b.Memory+b.Caches+b.Compute+b.Leakage {
		t.Fatal("leakage/total wrong")
	}
}

func TestOOOInstrEnergyDominatesFabricOp(t *testing.T) {
	// The premise of Sec. 1: per-operation energy on an OOO core is orders
	// of magnitude above a fabric ALU op.
	if EnergyOOOInstr < 50*EnergyFabricOp {
		t.Fatal("OOO per-instruction energy implausibly low vs fabric op")
	}
}

func TestLeakageScalesWithAreaAndTime(t *testing.T) {
	base := Model(Counts{Cycles: 1000, PEs: 16, LLCBytes: 8 << 20})
	moreTime := Model(Counts{Cycles: 2000, PEs: 16, LLCBytes: 8 << 20})
	corearea := Model(Counts{Cycles: 1000, Cores: 4, LLCBytes: 8 << 20})
	if moreTime.Leakage != 2*base.Leakage {
		t.Fatal("leakage not linear in cycles")
	}
	// 4 OOO cores leak more than 16 PEs (their area is ~5.4x larger).
	if corearea.Leakage <= base.Leakage {
		t.Fatal("OOO cores should leak more than 16 PEs")
	}
}
