package cgra

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDFGBuilderAndValidate(t *testing.T) {
	g := NewDFG("t")
	a := g.Deq(0)
	b := g.Const(5)
	s := g.Add(OpAdd, 0, a, b)
	g.Enq(0, s)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.OpCount() != 4 {
		t.Fatalf("op count = %d, want 4", g.OpCount())
	}
	if g.Depth() != 3 { // deq -> add -> enq
		t.Fatalf("depth = %d, want 3", g.Depth())
	}
}

func TestDFGValidateRejectsForwardRefs(t *testing.T) {
	g := &DFG{Name: "bad", Nodes: []Node{
		{ID: 0, Kind: OpAdd, Args: []NodeID{1, 1}},
		{ID: 1, Kind: OpConst},
	}}
	if err := g.Validate(); err == nil {
		t.Fatal("forward reference accepted")
	}
}

func TestDFGAddPanicsOnUndefinedArg(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g := NewDFG("p")
	g.Add(OpAdd, 0, 5, 6)
}

func TestPlaceSIMDReplication(t *testing.T) {
	fabric := DefaultFabric()
	g := NewDFG("small")
	a := g.Deq(0)
	b := g.Const(1)
	g.Enq(0, g.Add(OpAdd, 0, a, b))
	m, err := Place(g, fabric, true)
	if err != nil {
		t.Fatal(err)
	}
	if m.Replicas < 2 {
		t.Fatalf("small datapath not replicated: %d", m.Replicas)
	}
	if m.Replicas&(m.Replicas-1) != 0 {
		t.Fatalf("replication %d not a power of two", m.Replicas)
	}
	if m.UnitsUsed > fabric.Units() {
		t.Fatal("placement exceeds fabric")
	}
	single, _ := Place(g, fabric, false)
	if single.Replicas != 1 {
		t.Fatal("replicate=false still replicated")
	}
}

func TestPlaceMemoryPortsLimitReplication(t *testing.T) {
	g := NewDFG("mem")
	a := g.Deq(0)
	v := g.Add(OpLoad, 0, a)
	g.Enq(0, v)
	m, err := Place(g, DefaultFabric(), true)
	if err != nil {
		t.Fatal(err)
	}
	if m.Replicas > 4 {
		t.Fatalf("memory-op datapath replicated %d > port limit", m.Replicas)
	}
}

func TestPlaceFMALimits(t *testing.T) {
	fabric := DefaultFabric() // 4 FMAs
	g := NewDFG("fma")
	a := g.Deq(0)
	b := g.Deq(1)
	c := g.Const(0)
	g.Enq(0, g.Add(OpFMA, 0, a, b, c))
	m, err := Place(g, fabric, true)
	if err != nil {
		t.Fatal(err)
	}
	if m.Replicas > fabric.FMAs {
		t.Fatalf("replicas %d exceed FMA units", m.Replicas)
	}
	// A DFG needing more FMAs than exist must fail.
	g2 := NewDFG("fma5")
	x := g2.Deq(0)
	for i := 0; i < fabric.FMAs+1; i++ {
		x = g2.Add(OpFMA, 0, x, x, x)
	}
	if _, err := Place(g2, fabric, false); err == nil {
		t.Fatal("oversubscribed FMA placement accepted")
	}
}

func TestPlaceTooLargeFails(t *testing.T) {
	fabric := DefaultFabric()
	g := NewDFG("big")
	id := g.Const(1)
	for i := 0; i < fabric.Units()+1; i++ {
		id = g.Add(OpAdd, 0, id, id)
	}
	if _, err := Place(g, fabric, false); err == nil {
		t.Fatal("oversized stage placed")
	}
}

// Property: placement never oversubscribes the grid and always charges the
// full-fabric configuration size.
func TestPlaceCapacityProperty(t *testing.T) {
	fabric := DefaultFabric()
	f := func(nops uint8) bool {
		n := int(nops%40) + 1
		g := NewDFG("p")
		id := g.Deq(0)
		for i := 0; i < n; i++ {
			id = g.Add(OpAdd, 0, id, id)
		}
		g.Enq(0, id)
		m, err := Place(g, fabric, true)
		if err != nil {
			return false
		}
		return m.UnitsUsed <= fabric.Units() &&
			m.ConfigBytes == fabric.FullConfigBytes() &&
			m.Replicas >= 1 && m.Depth >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFabricConfigSizes(t *testing.T) {
	f := DefaultFabric()
	if f.Units() != 80 {
		t.Fatalf("units = %d, want 80", f.Units())
	}
	if got := f.FullConfigBytes(); got != 360 {
		t.Fatalf("config bytes = %d, want 360 (paper Sec. 5.1)", got)
	}
	if got := f.LoadCycles(f.FullConfigBytes()); got != 6 {
		t.Fatalf("load cycles = %d, want 6 (paper: 6 groups at 64 B/cycle)", got)
	}
}

func TestInterpretArithmetic(t *testing.T) {
	g := NewDFG("arith")
	a := g.Const(10)
	b := g.Const(3)
	add := g.Add(OpAdd, 0, a, b)
	sub := g.Add(OpSub, 0, a, b)
	mul := g.Add(OpMul, 0, a, b)
	div := g.Add(OpDiv, 0, a, b)
	div0 := g.Add(OpDiv, 0, a, g.Const(0))
	lt := g.Add(OpCmpLT, 0, b, a)
	eq := g.Add(OpCmpEQ, 0, a, a)
	sel := g.Add(OpSelect, 0, lt, a, b)
	lea := g.Add(OpLEA, 3, a, b)
	vals, err := Interpret(g, InterpEnv{})
	if err != nil {
		t.Fatal(err)
	}
	want := map[NodeID]uint64{add: 13, sub: 7, mul: 30, div: 3, div0: 0, lt: 1, eq: 1, sel: 10, lea: 10 + 3*8}
	for id, w := range want {
		if vals[id] != w {
			t.Fatalf("node %d = %d, want %d", id, vals[id], w)
		}
	}
}

func TestInterpretQueuesAndMemory(t *testing.T) {
	g := NewDFG("qm")
	x := g.Deq(0)
	v := g.Add(OpLoad, 0, x)
	one := g.Const(1)
	g.Add(OpStore, 0, x, g.Add(OpAdd, 0, v, one))
	g.Enq(0, v)

	memory := map[uint64]uint64{64: 9}
	var out []uint64
	vals, err := Interpret(g, InterpEnv{
		DeqFn:   func(int) (uint64, bool) { return 64, true },
		EnqFn:   func(_ int, v uint64) { out = append(out, v) },
		LoadFn:  func(a uint64) uint64 { return memory[a] },
		StoreFn: func(a, v uint64) { memory[a] = v },
	})
	if err != nil {
		t.Fatal(err)
	}
	if memory[64] != 10 || len(out) != 1 || out[0] != 9 {
		t.Fatalf("interp side effects wrong: mem=%v out=%v vals=%v", memory, out, vals)
	}
}

func TestInterpretFMA(t *testing.T) {
	g := NewDFG("fma")
	a := g.Const(math.Float64bits(2.5))
	b := g.Const(math.Float64bits(4.0))
	c := g.Const(math.Float64bits(1.0))
	r := g.Add(OpFMA, 0, a, b, c)
	vals, err := Interpret(g, InterpEnv{})
	if err != nil {
		t.Fatal(err)
	}
	if got := math.Float64frombits(vals[r]); got != 11.0 {
		t.Fatalf("fma = %g, want 11", got)
	}
}

func TestOpKindString(t *testing.T) {
	if OpAdd.String() != "add" || OpFMA.String() != "fma" {
		t.Fatal("op names wrong")
	}
	if !OpFMA.IsFMA() || OpAdd.IsFMA() {
		t.Fatal("IsFMA wrong")
	}
	if !OpLoad.IsMemory() || !OpStore.IsMemory() || OpEnq.IsMemory() {
		t.Fatal("IsMemory wrong")
	}
}

func TestBitstreamRoundTrip(t *testing.T) {
	fabric := DefaultFabric()
	g := NewDFG("bs")
	v := g.Deq(0)
	b := g.Const(3)
	s := g.Add(OpAdd, 0, v, b)
	g.Enq(0, s)
	m, err := Place(g, fabric, true)
	if err != nil {
		t.Fatal(err)
	}
	bs := m.Encode()
	if len(bs) != m.ConfigBytes {
		t.Fatalf("bitstream %d bytes, want %d", len(bs), m.ConfigBytes)
	}
	if err := VerifyBitstream(m, bs); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeUnits(fabric, bs[:10]); err == nil {
		t.Fatal("truncated bitstream accepted")
	}
}

func TestBitstreamsDifferAcrossStages(t *testing.T) {
	fabric := DefaultFabric()
	g1 := NewDFG("a")
	g1.Enq(0, g1.Deq(0))
	g2 := NewDFG("b")
	x := g2.Deq(0)
	g2.Enq(0, g2.Add(OpXor, 0, x, x))
	m1, _ := Place(g1, fabric, false)
	m2, _ := Place(g2, fabric, false)
	b1, b2 := m1.Encode(), m2.Encode()
	same := true
	for i := range b1 {
		if b1[i] != b2[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("distinct stages produced identical bitstreams")
	}
}

func TestMappingUtilization(t *testing.T) {
	g := NewDFG("u")
	g.Enq(0, g.Deq(0))
	m, err := Place(g, DefaultFabric(), true)
	if err != nil {
		t.Fatal(err)
	}
	u := m.Utilization()
	if u <= 0 || u > 1 {
		t.Fatalf("utilization = %g", u)
	}
}
