package cgra

import (
	"fmt"
	"math"
)

// InterpEnv supplies the environment a DFG interpretation runs in: queue
// reads/writes and memory accesses. It exists so tests can validate that a
// stage's hand-written kernel matches its declared dataflow graph.
type InterpEnv struct {
	// DeqFn returns the next value from input queue q.
	DeqFn func(q int) (uint64, bool)
	// EnqFn delivers v to output queue q.
	EnqFn func(q int, v uint64)
	// LoadFn returns the word at addr.
	LoadFn func(addr uint64) uint64
	// StoreFn writes v to addr.
	StoreFn func(addr uint64, v uint64)
}

// Interpret executes one firing of the DFG: every node evaluates once, in
// topological (construction) order. It returns the value of each node,
// indexed by NodeID. Missing environment hooks cause a panic only if the
// graph actually uses them.
func Interpret(g *DFG, env InterpEnv) ([]uint64, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	vals := make([]uint64, len(g.Nodes))
	arg := func(n Node, i int) uint64 { return vals[n.Args[i]] }
	for i, n := range g.Nodes {
		switch n.Kind {
		case OpNop:
			// no value
		case OpConst:
			vals[i] = n.Imm
		case OpAdd:
			vals[i] = arg(n, 0) + arg(n, 1)
		case OpSub:
			vals[i] = arg(n, 0) - arg(n, 1)
		case OpMul:
			vals[i] = arg(n, 0) * arg(n, 1)
		case OpDiv:
			if d := arg(n, 1); d != 0 {
				vals[i] = arg(n, 0) / d
			}
		case OpShl:
			vals[i] = arg(n, 0) << (arg(n, 1) & 63)
		case OpShr:
			vals[i] = arg(n, 0) >> (arg(n, 1) & 63)
		case OpAnd:
			vals[i] = arg(n, 0) & arg(n, 1)
		case OpOr:
			vals[i] = arg(n, 0) | arg(n, 1)
		case OpXor:
			vals[i] = arg(n, 0) ^ arg(n, 1)
		case OpCmpLT:
			if arg(n, 0) < arg(n, 1) {
				vals[i] = 1
			}
		case OpCmpEQ:
			if arg(n, 0) == arg(n, 1) {
				vals[i] = 1
			}
		case OpSelect:
			if arg(n, 0) != 0 {
				vals[i] = arg(n, 1)
			} else {
				vals[i] = arg(n, 2)
			}
		case OpLEA:
			vals[i] = arg(n, 0) + arg(n, 1)<<n.Imm
		case OpLoad:
			vals[i] = env.LoadFn(arg(n, 0))
		case OpStore:
			env.StoreFn(arg(n, 0), arg(n, 1))
		case OpDeq:
			v, ok := env.DeqFn(int(n.Imm))
			if !ok {
				return nil, fmt.Errorf("dfg %s: deq on empty queue %d", g.Name, n.Imm)
			}
			vals[i] = v
		case OpEnq:
			env.EnqFn(int(n.Imm), arg(n, 0))
		case OpFMA:
			a := math.Float64frombits(arg(n, 0))
			b := math.Float64frombits(arg(n, 1))
			c := math.Float64frombits(arg(n, 2))
			vals[i] = math.Float64bits(math.FMA(a, b, c))
		default:
			return nil, fmt.Errorf("dfg %s: unknown op %v", g.Name, n.Kind)
		}
	}
	return vals, nil
}
