// Package cgra models the coarse-grain reconfigurable array described in
// Sec. 3 and Fig. 3 of the paper: a grid of word-width functional units
// connected by switches, configured by per-unit configuration cells. The
// package provides the dataflow-graph (DFG) representation that stages are
// lowered to, a placer that maps DFGs onto the grid (the paper's "bitstream
// generation" step, Fig. 5), SIMD-style replication of small datapaths
// (Sec. 5.6), and an interpreter used to validate mappings.
package cgra

import "fmt"

// OpKind enumerates the operations a functional unit can be configured to
// perform. They mirror the pseudo-assembly of Fig. 6 plus the elementary ALU
// operations listed in Sec. 3.
type OpKind int

const (
	OpNop OpKind = iota
	OpConst
	OpAdd
	OpSub
	OpMul
	OpShl
	OpShr
	OpAnd
	OpOr
	OpXor
	OpDiv   // unsigned divide (iterative divider unit; b==0 yields 0)
	OpCmpLT // 1 if a < b (unsigned)
	OpCmpEQ
	OpSelect // c != 0 ? a : b
	OpLEA    // base + index<<scale (scale in Imm)
	OpLoad   // coupled load from cache
	OpStore  // coupled store to cache
	OpDeq    // dequeue from input queue Imm
	OpEnq    // enqueue to output queue Imm
	OpFMA    // double-precision fused multiply-add (dedicated units)
)

var opNames = map[OpKind]string{
	OpNop: "nop", OpConst: "const", OpAdd: "add", OpSub: "sub", OpMul: "mul", OpDiv: "div",
	OpShl: "shl", OpShr: "shr", OpAnd: "and", OpOr: "or", OpXor: "xor",
	OpCmpLT: "cmplt", OpCmpEQ: "cmpeq", OpSelect: "select", OpLEA: "lea",
	OpLoad: "ld", OpStore: "st", OpDeq: "deq", OpEnq: "enq", OpFMA: "fma",
}

func (k OpKind) String() string {
	if s, ok := opNames[k]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", int(k))
}

// IsFMA reports whether the op must be placed on one of the PE's dedicated
// floating-point units rather than an integer ALU.
func (k OpKind) IsFMA() bool { return k == OpFMA }

// IsMemory reports whether the op talks to the cache.
func (k OpKind) IsMemory() bool { return k == OpLoad || k == OpStore }

// NodeID names a node within its DFG.
type NodeID int

// Node is one operation in a dataflow graph.
type Node struct {
	ID   NodeID
	Kind OpKind
	Args []NodeID // operand nodes, in order
	Imm  uint64   // immediate: constant value, LEA scale, or queue index
}

// DFG is a stage's dataflow graph: a small feed-forward network of
// operations with queue endpoints. The graph must be acyclic except that
// loop-carried state is expressed through registers, which the timing model
// folds into pipeline depth.
type DFG struct {
	Name  string
	Nodes []Node
}

// NewDFG returns an empty dataflow graph with the given name.
func NewDFG(name string) *DFG { return &DFG{Name: name} }

// Add appends a node and returns its ID.
func (g *DFG) Add(kind OpKind, imm uint64, args ...NodeID) NodeID {
	id := NodeID(len(g.Nodes))
	for _, a := range args {
		if int(a) < 0 || int(a) >= len(g.Nodes) {
			panic(fmt.Sprintf("dfg %s: node %d references undefined arg %d", g.Name, id, a))
		}
	}
	g.Nodes = append(g.Nodes, Node{ID: id, Kind: kind, Args: append([]NodeID(nil), args...), Imm: imm})
	return id
}

// Convenience constructors for common nodes.

// Const adds a constant node.
func (g *DFG) Const(v uint64) NodeID { return g.Add(OpConst, v) }

// Deq adds a dequeue node reading input queue q.
func (g *DFG) Deq(q int) NodeID { return g.Add(OpDeq, uint64(q)) }

// Enq adds an enqueue node writing src to output queue q.
func (g *DFG) Enq(q int, src NodeID) NodeID { return g.Add(OpEnq, uint64(q), src) }

// OpCount returns the number of non-nop operations (functional units used by
// one copy of the datapath).
func (g *DFG) OpCount() int {
	n := 0
	for _, nd := range g.Nodes {
		if nd.Kind != OpNop {
			n++
		}
	}
	return n
}

// FMACount returns the number of FMA nodes.
func (g *DFG) FMACount() int {
	n := 0
	for _, nd := range g.Nodes {
		if nd.Kind.IsFMA() {
			n++
		}
	}
	return n
}

// MemOps returns the number of coupled memory operations.
func (g *DFG) MemOps() int {
	n := 0
	for _, nd := range g.Nodes {
		if nd.Kind.IsMemory() {
			n++
		}
	}
	return n
}

// Depth returns the length (in functional-unit hops) of the longest path
// through the graph — the configuration's pipeline latency (Sec. 3: "the
// longest input-output path through functional units sets the latency").
func (g *DFG) Depth() int {
	depth := make([]int, len(g.Nodes))
	max := 0
	for i, nd := range g.Nodes { // nodes are in topological order by construction
		d := 1
		for _, a := range nd.Args {
			if depth[a]+1 > d {
				d = depth[a] + 1
			}
		}
		depth[i] = d
		if d > max {
			max = d
		}
	}
	return max
}

// Validate checks structural invariants: topological argument order and
// queue endpoints present.
func (g *DFG) Validate() error {
	if len(g.Nodes) == 0 {
		return fmt.Errorf("dfg %s: empty", g.Name)
	}
	for i, nd := range g.Nodes {
		if nd.ID != NodeID(i) {
			return fmt.Errorf("dfg %s: node %d has mismatched id %d", g.Name, i, nd.ID)
		}
		for _, a := range nd.Args {
			if int(a) >= i {
				return fmt.Errorf("dfg %s: node %d uses arg %d that does not precede it", g.Name, i, a)
			}
		}
	}
	return nil
}
