package cgra

import (
	"encoding/binary"
	"fmt"
)

// Bitstream generation: the final step of the Fig. 5 compilation flow.
// A mapping is serialized into the byte image that reconfiguration streams
// from the L1 into the chained configuration cells (Sec. 5.1). The format
// is a simple fixed layout — one record per functional unit in row-major
// order, followed by switch-plane bytes — sized to match the fabric's
// FullConfigBytes (≈360 B for the 16×5 grid, 4.5 B/unit).
//
// Unit record (4 bytes): opcode, operand-A route, operand-B route, imm-low.
// The remaining 0.5 B/unit forms the switch plane (one nibble per unit).

const unitRecordBytes = 4

// Encode serializes the mapping's placed datapath. Node i of each replica
// occupies consecutive units; unused units carry OpNop records. The result
// always has exactly m.ConfigBytes bytes, the size the timing model charges.
func (m *Mapping) Encode() []byte {
	out := make([]byte, m.ConfigBytes)
	units := m.Fabric.Units()
	// Per-unit records.
	idx := 0
	for rep := 0; rep < m.Replicas; rep++ {
		for _, n := range m.DFG.Nodes {
			if n.Kind == OpNop || n.Kind.IsFMA() {
				continue // FMAs configure dedicated units, folded into switch plane
			}
			if idx >= units {
				break
			}
			rec := out[idx*unitRecordBytes:]
			if len(rec) < unitRecordBytes {
				break
			}
			rec[0] = byte(n.Kind)
			a, b := byte(0xff), byte(0xff)
			if len(n.Args) > 0 {
				a = byte(n.Args[0])
			}
			if len(n.Args) > 1 {
				b = byte(n.Args[1])
			}
			rec[1], rec[2] = a, b
			rec[3] = byte(n.Imm)
			idx++
		}
	}
	// Switch plane: a checksum-ish fill derived from the DFG so different
	// stages produce different bitstreams (useful for tests and debugging).
	plane := out[units*unitRecordBytes:]
	var h uint64 = 1469598103934665603
	for _, n := range m.DFG.Nodes {
		h ^= uint64(n.Kind)<<8 ^ n.Imm
		h *= 1099511628211
	}
	var hb [8]byte
	binary.LittleEndian.PutUint64(hb[:], h)
	for i := range plane {
		plane[i] = hb[i%8]
	}
	return out
}

// DecodeUnits parses the unit records of a bitstream back into (opcode,
// argA, argB, imm) tuples for validation.
func DecodeUnits(fabric FabricConfig, bs []byte) ([][4]byte, error) {
	if len(bs) != fabric.FullConfigBytes() {
		return nil, fmt.Errorf("cgra: bitstream is %d bytes, want %d", len(bs), fabric.FullConfigBytes())
	}
	units := fabric.Units()
	recs := make([][4]byte, 0, units)
	for i := 0; i < units; i++ {
		off := i * unitRecordBytes
		if off+unitRecordBytes > len(bs) {
			break
		}
		recs = append(recs, [4]byte{bs[off], bs[off+1], bs[off+2], bs[off+3]})
	}
	return recs, nil
}

// VerifyBitstream checks that a bitstream is consistent with its mapping:
// the first replica's non-nop nodes appear in order with their opcodes.
func VerifyBitstream(m *Mapping, bs []byte) error {
	recs, err := DecodeUnits(m.Fabric, bs)
	if err != nil {
		return err
	}
	i := 0
	for _, n := range m.DFG.Nodes {
		if n.Kind == OpNop || n.Kind.IsFMA() {
			continue
		}
		if i >= len(recs) {
			return fmt.Errorf("cgra: bitstream truncated at unit %d", i)
		}
		if OpKind(recs[i][0]) != n.Kind {
			return fmt.Errorf("cgra: unit %d holds op %v, want %v", i, OpKind(recs[i][0]), n.Kind)
		}
		i++
	}
	return nil
}
