package cgra

import "fmt"

// FabricConfig describes the physical reconfigurable array in a PE:
// a Rows × Cols grid of integer functional units surrounded by switches,
// plus a few dedicated double-precision FMA units (Sec. 3, Sec. 6).
type FabricConfig struct {
	Rows int // functional-unit rows (16 in the paper)
	Cols int // functional-unit columns (5 in the paper)
	FMAs int // dedicated FMA units distributed across the fabric (4)

	// ConfigBytesPerUnit is the configuration-cell footprint of one
	// functional unit plus its share of switch configuration. The paper's
	// 16×5 fabric needs "about 360 bytes"; 360/80 = 4.5 B/unit.
	ConfigBytesPerUnit float64
	// ConfigLoadBytesPerCycle is the L1-to-configuration-cell bandwidth
	// (64 bytes per cycle in the paper).
	ConfigLoadBytesPerCycle int
	// ActivationCycles is the dead time to flip the double-buffered cells'
	// multiplexer (2 cycles).
	ActivationCycles uint64
}

// DefaultFabric returns the paper's 16×5 fabric with 4 FMA units.
func DefaultFabric() FabricConfig {
	return FabricConfig{
		Rows: 16, Cols: 5, FMAs: 4,
		ConfigBytesPerUnit:      4.5,
		ConfigLoadBytesPerCycle: 64,
		ActivationCycles:        2,
	}
}

// Units returns the number of integer functional units.
func (f FabricConfig) Units() int { return f.Rows * f.Cols }

// FullConfigBytes returns the size of a whole-fabric configuration.
func (f FabricConfig) FullConfigBytes() int {
	return int(float64(f.Units())*f.ConfigBytesPerUnit + 0.5)
}

// LoadCycles returns the cycles needed to stream nbytes of configuration
// data from the L1 into the chained configuration cells, excluding cache
// latency (the paper: 360 B at 64 B/cycle = 6 cycles).
func (f FabricConfig) LoadCycles(nbytes int) uint64 {
	bw := f.ConfigLoadBytesPerCycle
	return uint64((nbytes + bw - 1) / bw)
}

// Mapping is the result of placing a DFG onto a fabric: the paper's
// "bitstream". The simulator uses its aggregate properties (configuration
// size, pipeline depth, replication) rather than per-switch routing bits.
type Mapping struct {
	DFG         *DFG
	Fabric      FabricConfig
	Replicas    int // SIMD replication factor (Sec. 5.6)
	UnitsUsed   int // integer units used by all replicas
	FMAsUsed    int
	Depth       int    // pipeline depth in cycles
	ConfigBytes int    // bytes of configuration data to load
	ConfigAddr  uint64 // set by the system when the bitstream is placed in memory
}

// Place maps g onto fabric, replicating the datapath to fill unused units
// when replicate is true. It fails when even a single copy does not fit.
//
// The placer is deliberately simple (greedy row-major), matching the scale
// of datapaths the paper maps: stages are small by construction because the
// program is split at every long-latency load.
func Place(g *DFG, fabric FabricConfig, replicate bool) (*Mapping, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	ops := g.OpCount()
	fmas := g.FMACount()
	ints := ops - fmas
	if ints > fabric.Units() {
		return nil, fmt.Errorf("cgra: stage %s needs %d integer units, fabric has %d; split the stage",
			g.Name, ints, fabric.Units())
	}
	if fmas > fabric.FMAs {
		return nil, fmt.Errorf("cgra: stage %s needs %d FMA units, fabric has %d", g.Name, fmas, fabric.FMAs)
	}
	replicas := 1
	if replicate {
		replicas = fabric.Units()
		if ints > 0 {
			replicas = fabric.Units() / ints
		}
		if fmas > 0 && fabric.FMAs/fmas < replicas {
			replicas = fabric.FMAs / fmas
		}
		// Memory ports bound replication: each PE has one cache port, so a
		// datapath with coupled memory ops cannot replicate past the number
		// of ports without serializing; we allow up to 4 outstanding
		// accesses per cycle to the (banked) L1, as DySER-like designs do.
		if m := g.MemOps(); m > 0 {
			if maxByMem := 4 / m; maxByMem < replicas {
				replicas = maxByMem
			}
		}
		if replicas < 1 {
			replicas = 1
		}
		// Keep replication to powers of two: lockstep datapaths share
		// dequeue grouping logic, which the RTL implements for 1/2/4/8/16.
		p := 1
		for p*2 <= replicas {
			p *= 2
		}
		replicas = p
	}
	unitsUsed := ints * replicas
	if unitsUsed > fabric.Units() {
		unitsUsed = fabric.Units()
	}
	// Configuration data covers the whole fabric (unused units still need
	// their nop/switch bits), so config size is the full-fabric size.
	cfgBytes := fabric.FullConfigBytes()
	return &Mapping{
		DFG:         g,
		Fabric:      fabric,
		Replicas:    replicas,
		UnitsUsed:   unitsUsed,
		FMAsUsed:    fmas * replicas,
		Depth:       g.Depth(),
		ConfigBytes: cfgBytes,
	}, nil
}

// Utilization returns the fraction of integer units occupied by the mapping.
func (m *Mapping) Utilization() float64 {
	return float64(m.UnitsUsed) / float64(m.Fabric.Units())
}
