package ycsb

import (
	"testing"

	"fifer/internal/sim"
)

func TestZipfianRangeAndSkew(t *testing.T) {
	r := sim.NewRand(1)
	z := NewZipfian(1000, 0.99, r)
	counts := make([]int, 1000)
	n := 100_000
	for i := 0; i < n; i++ {
		v := z.Next()
		if v >= 1000 {
			t.Fatalf("sample %d out of range", v)
		}
		counts[v]++
	}
	// Item 0 must be by far the most popular; the tail must still be hit.
	if counts[0] < n/50 {
		t.Fatalf("head not hot: %d", counts[0])
	}
	tail := 0
	for _, c := range counts[500:] {
		tail += c
	}
	if tail == 0 {
		t.Fatal("tail never sampled")
	}
	if counts[0] < 20*counts[500] && counts[500] > 0 {
		t.Fatalf("skew too weak: head %d vs mid %d", counts[0], counts[500])
	}
}

func TestZipfianDeterministic(t *testing.T) {
	a := NewZipfian(100, 0.99, sim.NewRand(7))
	b := NewZipfian(100, 0.99, sim.NewRand(7))
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("nondeterministic")
		}
	}
}

func TestGenerateC(t *testing.T) {
	w := GenerateC(500, 2000, 42, DefaultKeyOf)
	if len(w.Keys) != 2000 {
		t.Fatal("wrong op count")
	}
	valid := map[uint64]bool{}
	for i := uint64(0); i < 500; i++ {
		valid[DefaultKeyOf(i)] = true
	}
	for _, k := range w.Keys {
		if !valid[k] {
			t.Fatalf("request key %#x not in the loaded key set", k)
		}
	}
}

func TestDefaultKeyOfBijective(t *testing.T) {
	seen := map[uint64]bool{}
	for i := uint64(0); i < 100_000; i++ {
		k := DefaultKeyOf(i)
		if seen[k] {
			t.Fatalf("collision at %d", i)
		}
		seen[k] = true
	}
}
