// Package ycsb generates YCSB workloads. The Silo benchmark uses YCSB-C:
// 100% reads with a Zipfian key-popularity distribution over the loaded
// records (Sec. 7.2).
package ycsb

import (
	"math"

	"fifer/internal/sim"
)

// Zipfian samples integers in [0, n) with the standard YCSB Zipfian
// distribution (theta = 0.99 by default), using the Gray et al. rejection-
// free inverse-CDF method YCSB itself uses.
type Zipfian struct {
	n     uint64
	theta float64
	alpha float64
	zetan float64
	eta   float64
	r     *sim.Rand
}

// NewZipfian returns a Zipfian sampler over [0, n) with parameter theta.
func NewZipfian(n uint64, theta float64, r *sim.Rand) *Zipfian {
	z := &Zipfian{n: n, theta: theta, r: r}
	z.zetan = zeta(n, theta)
	z.alpha = 1 / (1 - theta)
	zeta2 := zeta(2, theta)
	z.eta = (1 - math.Pow(2/float64(n), 1-theta)) / (1 - zeta2/z.zetan)
	return z
}

func zeta(n uint64, theta float64) float64 {
	// For large n this sum is expensive; YCSB caches it — we do the same by
	// computing it once per sampler. n in this repo stays ≤ a few million.
	sum := 0.0
	for i := uint64(1); i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}

// Next returns the next sample. Item 0 is the most popular.
func (z *Zipfian) Next() uint64 {
	u := z.r.Float64()
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+math.Pow(0.5, z.theta) {
		return 1
	}
	return uint64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
}

// WorkloadC is a YCSB-C request stream: read-only key lookups.
type WorkloadC struct {
	Keys []uint64 // the keys to look up, in issue order
}

// GenerateC builds a YCSB-C workload of nops lookups over a keyspace of
// nkeys loaded records. keyOf maps a record index to its key (records are
// shuffled across the key space, as YCSB's hashed insert order does).
func GenerateC(nkeys, nops int, seed uint64, keyOf func(i uint64) uint64) WorkloadC {
	r := sim.NewRand(seed)
	z := NewZipfian(uint64(nkeys), 0.99, r)
	w := WorkloadC{Keys: make([]uint64, nops)}
	for i := range w.Keys {
		idx := z.Next()
		if idx >= uint64(nkeys) {
			idx = uint64(nkeys) - 1
		}
		w.Keys[i] = keyOf(idx)
	}
	return w
}

// DefaultKeyOf spreads record indices over the key space with a Fibonacci
// hash (a bijection, so bulk-loaded keys stay unique) so that popular
// records are not physically adjacent in the B+tree.
func DefaultKeyOf(i uint64) uint64 {
	return i * 0x9e3779b97f4a7c15
}
