package queue

import "fmt"

// Mem models a PE's queue memory: a small SRAM (16 KB by default, Table 2)
// that is statically divided among the PE's virtualized queues, each managed
// as a circular buffer (Sec. 3). Allocating a queue consumes part of the
// budget; allocation fails when the SRAM is exhausted, mirroring the
// hardware's fixed capacity.
type Mem struct {
	name       string
	totalBytes int
	usedBytes  int
	queues     []*Queue
	onAlloc    func(*Queue)
	buffered   int // aggregate token occupancy, maintained by the queues
}

// NewMem returns a queue memory with the given SRAM capacity in bytes.
func NewMem(name string, totalBytes int) *Mem {
	if totalBytes <= 0 {
		panic(fmt.Sprintf("queue.Mem %q: non-positive size %d", name, totalBytes))
	}
	return &Mem{name: name, totalBytes: totalBytes}
}

// TotalBytes returns the SRAM capacity.
func (m *Mem) TotalBytes() int { return m.totalBytes }

// FreeBytes returns the unallocated SRAM.
func (m *Mem) FreeBytes() int { return m.totalBytes - m.usedBytes }

// Queues returns all queues allocated from this memory, in allocation order.
func (m *Mem) Queues() []*Queue { return m.queues }

// SetOnAlloc registers f to run on every queue allocated after this call —
// the seam the simulator uses to attach trace hooks at the moment a queue
// is carved out of the SRAM, whenever during program build that happens.
// Queues allocated earlier are not revisited.
func (m *Mem) SetOnAlloc(f func(*Queue)) { m.onAlloc = f }

// Alloc carves a queue with capacity capTokens out of the SRAM budget.
// It returns an error when the remaining budget is insufficient.
func (m *Mem) Alloc(name string, capTokens int) (*Queue, error) {
	need := capTokens * TokenBytes
	if need > m.FreeBytes() {
		return nil, fmt.Errorf("queue mem %q: cannot allocate %d tokens (%d B) for %q: %d B free",
			m.name, capTokens, need, name, m.FreeBytes())
	}
	q := NewQueue(name, capTokens)
	q.occ = &m.buffered
	m.usedBytes += need
	m.queues = append(m.queues, q)
	if m.onAlloc != nil {
		m.onAlloc(q)
	}
	return q, nil
}

// MustAlloc is Alloc but panics on failure; used during system construction
// where an allocation failure is a configuration bug.
func (m *Mem) MustAlloc(name string, capTokens int) *Queue {
	q, err := m.Alloc(name, capTokens)
	if err != nil {
		panic(err)
	}
	return q
}

// Sample records occupancy samples on every allocated queue.
func (m *Mem) Sample() {
	for _, q := range m.queues {
		q.Sample()
	}
}

// SampleN records k occupancy samples on every allocated queue in one step,
// equivalent to k Sample calls over a window with no queue activity.
func (m *Mem) SampleN(k uint64) {
	for _, q := range m.queues {
		q.SampleN(k)
	}
}

// Buffered returns the total number of tokens currently resident across all
// queues in this memory. O(1): the queues maintain the aggregate count on
// every enqueue/dequeue, because this is read on the simulator's hot path.
func (m *Mem) Buffered() int { return m.buffered }

// recountBuffered rescans every queue — the invariant audit cross-checks it
// against the incremental counter.
func (m *Mem) recountBuffered() int {
	n := 0
	for _, q := range m.queues {
		n += q.Len()
	}
	return n
}

// CheckBuffered verifies the incremental occupancy counter against a full
// rescan, returning both values; ok is false on drift.
func (m *Mem) CheckBuffered() (incremental, rescan int, ok bool) {
	rescan = m.recountBuffered()
	return m.buffered, rescan, m.buffered == rescan
}
