package queue

// CreditPort is the producer-side endpoint of an inter-PE queue with
// credit-based flow control (Sec. 5.6). Each destination queue divides its
// credits (free slots) evenly across its producers; a producer stalls when it
// runs out of credits. Credits return to the producer when the consumer
// dequeues the corresponding tokens.
//
// The model is conservative and simple: each port starts with cap/producers
// credits; Send consumes one credit and enqueues directly into the
// destination queue (link latency is folded into pipeline depth); the
// consumer's dequeues replenish credits round-robin across ports via the
// Arbiter.
type CreditPort struct {
	arb     *Arbiter
	index   int
	credits int

	// Sent counts tokens successfully sent through this port.
	Sent uint64
	// Stalls counts send attempts rejected for lack of credits.
	Stalls uint64
}

// Credits returns the port's current credit count.
func (p *CreditPort) Credits() int { return p.credits }

// DestName returns the name of the destination queue this port feeds, for
// diagnostics (deadlock wait-for edges name the queue a producer starves on).
func (p *CreditPort) DestName() string { return p.arb.dst.Name() }

// CanSend reports whether the port holds at least one credit.
func (p *CreditPort) CanSend() bool { return p.credits > 0 }

// Send enqueues t into the destination queue, consuming one credit.
// It returns false without side effects when no credits are available.
func (p *CreditPort) Send(t Token) bool {
	if p.credits == 0 {
		p.Stalls++
		return false
	}
	if p.arb.send != nil {
		p.arb.send(p.index)
	}
	if !p.arb.dst.Enq(t) {
		// Credits are supposed to make this impossible; a failure here means
		// credit accounting is broken. Raised as a typed Corruption so the
		// simulation core can recover it into a per-run invariant error.
		corruptf(p.arb.dst.Name(), "credit port %d: enqueue failed with %d credits held",
			p.index, p.credits)
	}
	p.credits--
	p.arb.senders = append(p.arb.senders, p.index)
	if p.arb.credit != nil {
		p.arb.credit(p.index, true)
	}
	return true
}

// Arbiter manages the consumer side of a credited queue: it owns the
// destination queue, hands out producer ports, and returns each token's
// credit to the producer that sent it as the consumer drains tokens.
type Arbiter struct {
	dst     *Queue
	ports   []*CreditPort
	senders []int // port index of each buffered credited token, FIFO

	// credit, when non-nil, observes credit movements: f(port, true) when a
	// send consumes one of port's credits, f(port, false) when a consumer
	// dequeue returns one. Nil costs one branch per send and per credited
	// dequeue.
	credit func(port int, granted bool)

	// send, when non-nil, runs at the top of every successful Send, BEFORE
	// the token lands in the destination queue. The sharded simulation kernel
	// uses it to settle the consumer's deferred per-cycle accounting while the
	// destination queue's occupancy is still the pre-send value; rejected
	// sends (no credits) never invoke it. Nil costs one branch per send.
	send func(port int)
}

// SetCreditHook registers f to observe credit grants (sends) and returns
// (consumer dequeues) on this arbiter; see the credit field for the
// callback contract.
func (a *Arbiter) SetCreditHook(f func(port int, granted bool)) { a.credit = f }

// SetSendHook registers f to run before each successful send's enqueue; see
// the send field for the callback contract.
func (a *Arbiter) SetSendHook(f func(port int)) { a.send = f }

// NewArbiter wraps dst with credit flow control for nproducers producers.
// Credits are divided evenly; remainders go to the lowest-numbered ports,
// so all dst.Cap() slots are always covered.
func NewArbiter(dst *Queue, nproducers int) *Arbiter {
	if nproducers <= 0 {
		panic("queue: arbiter needs at least one producer")
	}
	a := &Arbiter{dst: dst}
	base := dst.Cap() / nproducers
	extra := dst.Cap() % nproducers
	for i := 0; i < nproducers; i++ {
		c := base
		if i < extra {
			c++
		}
		a.ports = append(a.ports, &CreditPort{arb: a, index: i, credits: c})
	}
	return a
}

// Port returns the i-th producer port.
func (a *Arbiter) Port(i int) *CreditPort { return a.ports[i] }

// Ports returns the number of producer ports.
func (a *Arbiter) Ports() int { return len(a.ports) }

// Queue returns the consumer-side destination queue.
func (a *Arbiter) Queue() *Queue { return a.dst }

// Deq dequeues one token on behalf of the consumer and returns a credit to
// the producer that has been waiting longest (approximated round-robin).
func (a *Arbiter) Deq() (Token, bool) {
	t, ok := a.dst.Deq()
	if ok {
		a.returnCredit()
	}
	return t, ok
}

func (a *Arbiter) returnCredit() {
	if len(a.senders) == 0 {
		// The token predates credit accounting (e.g. seeded directly); no
		// producer is owed a credit.
		return
	}
	idx := a.senders[0]
	copy(a.senders, a.senders[1:])
	a.senders = a.senders[:len(a.senders)-1]
	a.ports[idx].credits++
	if a.credit != nil {
		a.credit(idx, false)
	}
}

// CreditedBuffered returns the number of buffered tokens that arrived
// through a credit port and still pin a sender's credit. It can be less
// than the queue length (tokens seeded directly pin no credit) but never
// more; the live audit checks that inequality every period.
func (a *Arbiter) CreditedBuffered() int { return len(a.senders) }

// TotalCredits returns credits held across all ports plus credits pinned by
// buffered tokens. The invariant TotalCredits == dst.Cap() holds at all
// times for queues whose every enqueue went through a port.
func (a *Arbiter) TotalCredits() int {
	total := len(a.senders)
	for _, p := range a.ports {
		total += p.credits
	}
	return total
}
