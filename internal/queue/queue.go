// Package queue implements Fifer's latency-insensitive channels: virtualized
// FIFO queues stored in a per-PE queue memory, tokens that carry either data
// or control values, and credit-based flow control for inter-PE queues
// (Sec. 3, Sec. 5.3 and Sec. 5.6 of the paper).
package queue

import "fmt"

// TokenBytes is the storage footprint of one queue entry: a 64-bit value
// plus its control bit (the control bit rides in otherwise-unused SRAM ECC
// style bits, so we charge 8 bytes per token, matching the paper's
// machine-word-width channels).
const TokenBytes = 8

// Token is one value traveling through a queue. Ctrl marks control values,
// which PEs handle serially and which delineate iteration or data-set
// boundaries (Sec. 5.5).
type Token struct {
	Value uint64
	Ctrl  bool
}

// Data wraps a plain data value as a token.
func Data(v uint64) Token { return Token{Value: v} }

// Ctrl wraps v as a control token.
func Ctrl(v uint64) Token { return Token{Value: v, Ctrl: true} }

// Queue is a bounded FIFO of tokens, managed as a circular buffer inside a
// PE's queue memory. The zero value is not usable; create queues through a
// Mem so capacity is accounted against the queue SRAM budget.
type Queue struct {
	name string
	buf  []Token
	head int // index of oldest token
	size int // tokens currently buffered

	// Statistics.
	Enqueued uint64 // total tokens ever enqueued
	Dequeued uint64 // total tokens ever dequeued
	FullEvts uint64 // enqueue attempts rejected because the queue was full
	occupSum uint64 // sum of size over sampled cycles (for mean occupancy)
	occupN   uint64

	// edge, when non-nil, observes transitions into (true) and out of
	// (false) the full state — the back-pressure stall edges the tracing
	// layer records. Nil (the default) costs one branch per enqueue and
	// dequeue and nothing else.
	edge func(full bool)

	// occ, when non-nil, points at the owning Mem's aggregate occupancy
	// counter so Mem.Buffered() is O(1) instead of a per-cycle rescan of
	// every queue. Maintained on every enqueue, dequeue, and reset.
	occ *int
}

// NewQueue creates a standalone queue with the given capacity in tokens.
// Most callers should allocate queues from a Mem instead; NewQueue exists
// for tests and for conceptually unbounded structures (e.g. the memory
// controller's internal request list).
func NewQueue(name string, capTokens int) *Queue {
	if capTokens <= 0 {
		panic(fmt.Sprintf("queue %q: non-positive capacity %d", name, capTokens))
	}
	return &Queue{name: name, buf: make([]Token, capTokens)}
}

// Name returns the queue's diagnostic name.
func (q *Queue) Name() string { return q.name }

// Cap returns the queue capacity in tokens.
func (q *Queue) Cap() int { return len(q.buf) }

// Len returns the number of tokens currently buffered.
func (q *Queue) Len() int { return q.size }

// Space returns the number of free slots.
func (q *Queue) Space() int { return len(q.buf) - q.size }

// Empty reports whether the queue holds no tokens.
func (q *Queue) Empty() bool { return q.size == 0 }

// Full reports whether the queue has no free slots.
func (q *Queue) Full() bool { return q.size == len(q.buf) }

// SetEdgeHook registers f to observe full-state transitions: f(true) when
// an enqueue fills the last slot, f(false) when a dequeue (or Reset) first
// makes space again. Invocations strictly alternate true/false per queue,
// starting with true; the hook runs after the state change, so occupancy
// reads from inside it see the post-transition queue.
func (q *Queue) SetEdgeHook(f func(full bool)) { q.edge = f }

// Enq appends a token. It returns false (and counts a full event) when the
// queue is full.
func (q *Queue) Enq(t Token) bool {
	if q.size == len(q.buf) {
		q.FullEvts++
		return false
	}
	q.buf[(q.head+q.size)%len(q.buf)] = t
	q.size++
	q.Enqueued++
	if q.occ != nil {
		*q.occ++
	}
	if q.edge != nil && q.size == len(q.buf) {
		q.edge(true)
	}
	return true
}

// Deq removes and returns the oldest token. ok is false when the queue is
// empty.
func (q *Queue) Deq() (t Token, ok bool) {
	if q.size == 0 {
		return Token{}, false
	}
	wasFull := q.size == len(q.buf)
	t = q.buf[q.head]
	q.head = (q.head + 1) % len(q.buf)
	q.size--
	q.Dequeued++
	if q.occ != nil {
		*q.occ--
	}
	if wasFull && q.edge != nil {
		q.edge(false)
	}
	return t, true
}

// Peek returns the oldest token without removing it.
func (q *Queue) Peek() (t Token, ok bool) {
	if q.size == 0 {
		return Token{}, false
	}
	return q.buf[q.head], true
}

// PeekAt returns the i-th oldest token (0 = head) without removing it.
func (q *Queue) PeekAt(i int) (t Token, ok bool) {
	if i < 0 || i >= q.size {
		return Token{}, false
	}
	return q.buf[(q.head+i)%len(q.buf)], true
}

// Sample records the current occupancy for mean-occupancy statistics.
func (q *Queue) Sample() {
	q.occupSum += uint64(q.size)
	q.occupN++
}

// SampleN records the current occupancy k times in one step — exactly
// equivalent to calling Sample k times while the queue is untouched. The
// fast-forward kernel uses it to batch the 64-cycle sampling rhythm over a
// window in which every queue's occupancy is provably frozen.
func (q *Queue) SampleN(k uint64) {
	q.occupSum += uint64(q.size) * k
	q.occupN += k
}

// MeanOccupancy returns the average sampled occupancy in tokens.
func (q *Queue) MeanOccupancy() float64 {
	if q.occupN == 0 {
		return 0
	}
	return float64(q.occupSum) / float64(q.occupN)
}

// Reset discards buffered tokens but keeps capacity and statistics. A full
// queue reports the trailing (ready) stall edge so edge alternation
// survives a reset.
func (q *Queue) Reset() {
	wasFull := q.size == len(q.buf)
	if q.occ != nil {
		*q.occ -= q.size
	}
	q.head, q.size = 0, 0
	if wasFull && q.edge != nil {
		q.edge(false)
	}
}
