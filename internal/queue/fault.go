package queue

import "fmt"

// Corruption reports an internal inconsistency in the queue layer: a state
// the flow-control protocol is supposed to make unreachable (e.g. a credited
// enqueue finding the destination full). It is raised with panic so the hot
// path stays branch-free, but as a typed value: the simulation core recovers
// Corruption panics and converts them into a per-run invariant error, so a
// corrupted simulation degrades to one failed job instead of killing the
// whole process (and the rest of a parallel bench batch with it).
type Corruption struct {
	// Component names the queue, port, or machine whose state is corrupt.
	Component string
	// Detail describes the impossible state that was observed.
	Detail string
}

// Error implements the error interface.
func (c *Corruption) Error() string {
	return fmt.Sprintf("queue corruption in %s: %s", c.Component, c.Detail)
}

// corruptf panics with a *Corruption carrying the formatted detail.
func corruptf(component, format string, args ...any) {
	panic(&Corruption{Component: component, Detail: fmt.Sprintf(format, args...)})
}

// The methods below are fault-injection hooks for internal/faults. They
// exist to corrupt an otherwise-healthy simulation on purpose so the
// watchdog and invariant audit can be proven to catch the damage; nothing
// in the simulator itself calls them.

// FaultAdjustCredits adds delta to the port's credit count (negative delta
// withholds credits, positive delta counterfeits them) and returns the new
// count. Withheld credits starve the producer; counterfeit credits make a
// credited enqueue overrun the destination queue.
func (p *CreditPort) FaultAdjustCredits(delta int) int {
	p.credits += delta
	return p.credits
}

// FaultDropToken dequeues one buffered token WITHOUT returning its credit to
// the sender — a lost grant. It reports whether a token was dropped. The
// arbiter is left owing a credit it can never repay, which the live audit
// observes as more credited senders than buffered tokens.
func (a *Arbiter) FaultDropToken() bool {
	_, ok := a.dst.Deq()
	return ok
}
