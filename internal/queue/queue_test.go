package queue

import (
	"testing"
	"testing/quick"
)

func TestQueueBasics(t *testing.T) {
	q := NewQueue("q", 4)
	if !q.Empty() || q.Full() || q.Cap() != 4 {
		t.Fatal("fresh queue state wrong")
	}
	for i := 0; i < 4; i++ {
		if !q.Enq(Data(uint64(i))) {
			t.Fatalf("enq %d failed", i)
		}
	}
	if !q.Full() || q.Space() != 0 {
		t.Fatal("queue should be full")
	}
	if q.Enq(Data(99)) {
		t.Fatal("enq into full queue succeeded")
	}
	if q.FullEvts != 1 {
		t.Fatalf("FullEvts = %d, want 1", q.FullEvts)
	}
	for i := 0; i < 4; i++ {
		tok, ok := q.Deq()
		if !ok || tok.Value != uint64(i) {
			t.Fatalf("deq %d: got %v %v", i, tok, ok)
		}
	}
	if _, ok := q.Deq(); ok {
		t.Fatal("deq from empty queue succeeded")
	}
}

func TestQueuePeek(t *testing.T) {
	q := NewQueue("q", 8)
	q.Enq(Ctrl(7))
	q.Enq(Data(8))
	if tok, ok := q.Peek(); !ok || !tok.Ctrl || tok.Value != 7 {
		t.Fatalf("peek = %v %v", tok, ok)
	}
	if tok, ok := q.PeekAt(1); !ok || tok.Ctrl || tok.Value != 8 {
		t.Fatalf("peekAt(1) = %v %v", tok, ok)
	}
	if _, ok := q.PeekAt(2); ok {
		t.Fatal("peekAt past end succeeded")
	}
	if q.Len() != 2 {
		t.Fatal("peek consumed tokens")
	}
}

// Property: under any interleaving of enqueues and dequeues, the dequeued
// sequence is a prefix-preserving FIFO of the enqueued sequence, and the
// wraparound ring never corrupts values.
func TestQueueFIFOProperty(t *testing.T) {
	f := func(ops []bool, vals []uint64, capSeed uint8) bool {
		capacity := int(capSeed%15) + 1
		q := NewQueue("p", capacity)
		var in, out []uint64
		vi := 0
		for _, isEnq := range ops {
			if isEnq {
				v := uint64(vi)
				if vi < len(vals) {
					v = vals[vi]
				}
				if q.Enq(Data(v)) {
					in = append(in, v)
				}
				vi++
			} else if tok, ok := q.Deq(); ok {
				out = append(out, tok.Value)
			}
		}
		for q.Len() > 0 {
			tok, _ := q.Deq()
			out = append(out, tok.Value)
		}
		if len(in) != len(out) {
			return false
		}
		for i := range in {
			if in[i] != out[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQueueConservation(t *testing.T) {
	f := func(ops []uint8) bool {
		q := NewQueue("c", 7)
		var enq, deq uint64
		for _, op := range ops {
			if op%2 == 0 {
				if q.Enq(Data(uint64(op))) {
					enq++
				}
			} else if _, ok := q.Deq(); ok {
				deq++
			}
		}
		return q.Enqueued == enq && q.Dequeued == deq && int(enq-deq) == q.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMeanOccupancy(t *testing.T) {
	q := NewQueue("m", 8)
	q.Enq(Data(1))
	q.Sample()
	q.Enq(Data(2))
	q.Enq(Data(3))
	q.Sample()
	if got := q.MeanOccupancy(); got != 2 {
		t.Fatalf("mean occupancy = %g, want 2", got)
	}
}

func TestMemBudget(t *testing.T) {
	m := NewMem("pe0", 64) // 8 tokens total
	q1 := m.MustAlloc("a", 4)
	if m.FreeBytes() != 32 {
		t.Fatalf("free = %d, want 32", m.FreeBytes())
	}
	if _, err := m.Alloc("b", 5); err == nil {
		t.Fatal("over-budget alloc succeeded")
	}
	q2 := m.MustAlloc("b", 4)
	if m.FreeBytes() != 0 {
		t.Fatal("budget not exhausted")
	}
	q1.Enq(Data(1))
	q2.Enq(Data(2))
	if m.Buffered() != 2 {
		t.Fatalf("buffered = %d, want 2", m.Buffered())
	}
	if len(m.Queues()) != 2 {
		t.Fatal("queue registry wrong")
	}
}

func TestCreditFlowControl(t *testing.T) {
	dst := NewQueue("dst", 8)
	arb := NewArbiter(dst, 2)
	p0, p1 := arb.Port(0), arb.Port(1)
	if p0.Credits()+p1.Credits() != 8 {
		t.Fatal("credits don't cover capacity")
	}
	for p0.CanSend() {
		p0.Send(Data(0))
	}
	if p0.Credits() != 0 || p0.Send(Data(9)) {
		t.Fatal("send without credits succeeded")
	}
	if p0.Stalls == 0 {
		t.Fatal("stall not counted")
	}
	// Dequeue returns credits to the sender (p0), not round-robin.
	arb.Deq()
	if p0.Credits() != 1 || p1.Credits() != 4 {
		t.Fatalf("credit return wrong: p0=%d p1=%d", p0.Credits(), p1.Credits())
	}
	if arb.TotalCredits() != dst.Cap() {
		t.Fatalf("credit conservation: %d != %d", arb.TotalCredits(), dst.Cap())
	}
}

// Property: credits are conserved under arbitrary send/deq interleavings,
// and each producer's sends never exceed its returned + initial credits.
func TestCreditConservationProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		dst := NewQueue("d", 6)
		arb := NewArbiter(dst, 3)
		for _, op := range ops {
			if op%4 == 3 {
				arb.Deq()
			} else {
				arb.Port(int(op % 3)).Send(Data(uint64(op)))
			}
			if arb.TotalCredits() != dst.Cap() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestArbiterSeededTokens(t *testing.T) {
	dst := NewQueue("d", 4)
	arb := NewArbiter(dst, 1)
	dst.Enq(Data(42)) // seeded directly, no credit consumed
	if tok, ok := arb.Deq(); !ok || tok.Value != 42 {
		t.Fatal("seeded token lost")
	}
	// The seeded dequeue must not mint an extra credit.
	if arb.TotalCredits() != dst.Cap() {
		t.Fatalf("credits inflated: %d", arb.TotalCredits())
	}
}

func TestQueueReset(t *testing.T) {
	q := NewQueue("r", 4)
	q.Enq(Data(1))
	q.Enq(Data(2))
	q.Reset()
	if q.Len() != 0 || q.Enqueued != 2 {
		t.Fatal("reset semantics wrong")
	}
	if !q.Enq(Data(3)) {
		t.Fatal("enq after reset failed")
	}
}
