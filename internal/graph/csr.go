// Package graph provides the graph substrate used by the BFS, CC,
// PageRank-Delta, and Radii benchmarks: a compressed-sparse-row (CSR)
// representation (Fig. 1c), synthetic generators shaped after the paper's
// Table 3 inputs, and reference implementations of all four algorithms.
package graph

import (
	"fmt"
	"sort"
)

// Graph is an unweighted directed graph in CSR form. For the paper's
// undirected inputs every edge appears in both directions.
type Graph struct {
	Name      string
	Offsets   []uint64 // length NumVertices+1
	Neighbors []uint64 // length NumEdges
}

// NumVertices returns the vertex count.
func (g *Graph) NumVertices() int { return len(g.Offsets) - 1 }

// NumEdges returns the directed edge count.
func (g *Graph) NumEdges() int { return len(g.Neighbors) }

// AvgDegree returns the mean out-degree.
func (g *Graph) AvgDegree() float64 {
	n := g.NumVertices()
	if n == 0 {
		return 0
	}
	return float64(g.NumEdges()) / float64(n)
}

// Degree returns vertex v's out-degree.
func (g *Graph) Degree(v int) int {
	return int(g.Offsets[v+1] - g.Offsets[v])
}

// Neigh returns the neighbor slice of vertex v.
func (g *Graph) Neigh(v int) []uint64 {
	return g.Neighbors[g.Offsets[v]:g.Offsets[v+1]]
}

// MaxDegree returns the largest out-degree.
func (g *Graph) MaxDegree() int {
	m := 0
	for v := 0; v < g.NumVertices(); v++ {
		if d := g.Degree(v); d > m {
			m = d
		}
	}
	return m
}

// Validate checks CSR structural invariants.
func (g *Graph) Validate() error {
	if len(g.Offsets) == 0 {
		return fmt.Errorf("graph %s: missing offsets", g.Name)
	}
	if g.Offsets[0] != 0 {
		return fmt.Errorf("graph %s: offsets[0] = %d, want 0", g.Name, g.Offsets[0])
	}
	n := g.NumVertices()
	for v := 0; v < n; v++ {
		if g.Offsets[v+1] < g.Offsets[v] {
			return fmt.Errorf("graph %s: offsets decrease at vertex %d", g.Name, v)
		}
	}
	if g.Offsets[n] != uint64(len(g.Neighbors)) {
		return fmt.Errorf("graph %s: offsets[n]=%d, want %d", g.Name, g.Offsets[n], len(g.Neighbors))
	}
	for i, u := range g.Neighbors {
		if u >= uint64(n) {
			return fmt.Errorf("graph %s: neighbor %d at %d out of range", g.Name, u, i)
		}
	}
	return nil
}

// FromEdges builds a CSR graph from an edge list, deduplicating and sorting
// adjacency lists, dropping self-loops, and (when undirected) adding both
// directions.
func FromEdges(name string, n int, edges [][2]int, undirected bool) *Graph {
	type pair struct{ u, v int }
	seen := make(map[pair]struct{}, len(edges)*2)
	adj := make([][]uint64, n)
	add := func(u, v int) {
		if u == v || u < 0 || v < 0 || u >= n || v >= n {
			return
		}
		p := pair{u, v}
		if _, ok := seen[p]; ok {
			return
		}
		seen[p] = struct{}{}
		adj[u] = append(adj[u], uint64(v))
	}
	for _, e := range edges {
		add(e[0], e[1])
		if undirected {
			add(e[1], e[0])
		}
	}
	g := &Graph{Name: name, Offsets: make([]uint64, n+1)}
	total := 0
	for _, a := range adj {
		total += len(a)
	}
	g.Neighbors = make([]uint64, 0, total)
	for v := 0; v < n; v++ {
		sort.Slice(adj[v], func(i, j int) bool { return adj[v][i] < adj[v][j] })
		g.Neighbors = append(g.Neighbors, adj[v]...)
		g.Offsets[v+1] = uint64(len(g.Neighbors))
	}
	return g
}
