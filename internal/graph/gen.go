package graph

import (
	"fmt"

	"fifer/internal/sim"
)

// The paper evaluates five real-world graphs (Table 3). We cannot ship
// those datasets, so each is replaced by a seeded synthetic generator of the
// same topology class, preserving average degree and the property that
// drives each graph's behavior (degree skew for Internet/collaboration
// graphs, long diameter for road/mesh graphs), scaled down so cycle-level
// simulation is tractable. See DESIGN.md §5.

// Input names the five Table 3 graphs.
type Input string

const (
	Hu Input = "Hu" // coAuthorsDBLP: collaboration, communities, deg 6.4
	Dy Input = "Dy" // hugetrace: dynamic-simulation mesh, deg 3.0
	Ci Input = "Ci" // Freescale1: circuit, deg 5.6
	In Input = "In" // as-Skitter: internet topology, power law, deg 12.9
	Rd Input = "Rd" // USA-road: road network, deg 2.4, huge diameter
)

// Inputs lists the Table 3 graphs in the paper's order.
var Inputs = []Input{Hu, Dy, Ci, In, Rd}

// Scale selects the generated size. Tests use ScaleTiny; benchmarks default
// to ScaleSmall.
type Scale int

const (
	ScaleTiny Scale = iota
	ScaleSmall
	ScaleMedium
)

type genSpec struct {
	vertices [3]int // per scale
	deg      float64
	kind     string // "rmat", "mesh", "road"
	skew     float64
	paperV   int
	paperE   int
	paperDeg float64
	domain   string
	dataset  string
}

var specs = map[Input]genSpec{
	Hu: {vertices: [3]int{2_000, 18_000, 72_000}, deg: 6.4, kind: "rmat", skew: 0.45,
		paperV: 299_000, paperE: 1_900_000, paperDeg: 6.4, domain: "Human collaboration", dataset: "coAuthorsDBLP-symmetric"},
	Dy: {vertices: [3]int{4_000, 48_000, 192_000}, deg: 3.0, kind: "mesh", skew: 0,
		paperV: 4_600_000, paperE: 14_000_000, paperDeg: 3.0, domain: "Dynamic simulation", dataset: "hugetrace-00000"},
	Ci: {vertices: [3]int{3_000, 36_000, 144_000}, deg: 5.6, kind: "rmat", skew: 0.38,
		paperV: 3_400_000, paperE: 19_000_000, paperDeg: 5.6, domain: "Circuit simulation", dataset: "Freescale1"},
	In: {vertices: [3]int{2_500, 24_000, 96_000}, deg: 12.9, kind: "rmat", skew: 0.57,
		paperV: 1_700_000, paperE: 22_000_000, paperDeg: 12.9, domain: "Internet graph", dataset: "as-Skitter"},
	Rd: {vertices: [3]int{6_000, 64_000, 256_000}, deg: 2.4, kind: "road", skew: 0,
		paperV: 24_000_000, paperE: 58_000_000, paperDeg: 2.4, domain: "Road network", dataset: "USA-road-d-USA"},
}

// PaperStats returns the real input's published vertex count, edge count,
// and average degree (Table 3) for reporting alongside generated stats.
func PaperStats(in Input) (vertices, edges int, avgDeg float64, domain string) {
	s := specs[in]
	return s.paperV, s.paperE, s.paperDeg, s.domain
}

// DatasetName returns the name of the real dataset the generator stands in
// for (Table 3).
func DatasetName(in Input) string { return specs[in].dataset }

// Generate produces the synthetic stand-in for the named Table 3 input at
// the given scale, deterministically from seed.
func Generate(in Input, scale Scale, seed uint64) *Graph {
	s, ok := specs[in]
	if !ok {
		panic(fmt.Sprintf("graph: unknown input %q", in))
	}
	n := s.vertices[scale]
	r := sim.NewRand(seed ^ uint64(len(in)) ^ uint64(n))
	var g *Graph
	switch s.kind {
	case "rmat":
		g = RMAT(string(in), n, int(float64(n)*s.deg/2), s.skew, r)
	case "mesh":
		g = Mesh(string(in), n, r)
	case "road":
		g = Road(string(in), n, r)
	default:
		panic("graph: unknown generator kind " + s.kind)
	}
	return g
}

// RMAT generates a recursive-matrix (Kronecker-like) graph with `m`
// undirected edges over n vertices. skew in (0.25, 1) sets the probability
// mass of the "a" quadrant: 0.25 is uniform (Erdős–Rényi-like), 0.57 gives
// as-Skitter-like power-law degree distributions.
func RMAT(name string, n, m int, skew float64, r *sim.Rand) *Graph {
	bits := 0
	for 1<<bits < n {
		bits++
	}
	a := skew
	rest := (1 - a) / 3
	b, c := rest, rest
	edges := make([][2]int, 0, m)
	for len(edges) < m {
		u, v := 0, 0
		for i := 0; i < bits; i++ {
			p := r.Float64()
			switch {
			case p < a:
				// top-left: nothing to add
			case p < a+b:
				v |= 1 << i
			case p < a+b+c:
				u |= 1 << i
			default:
				u |= 1 << i
				v |= 1 << i
			}
		}
		if u < n && v < n && u != v {
			edges = append(edges, [2]int{u, v})
		}
	}
	return FromEdges(name, n, edges, true)
}

// Mesh generates a triangulated 2D grid: the topology class of hugetrace
// (dynamic-simulation meshes): degree ~3 via a hexagonal-like lattice,
// low skew, large diameter.
func Mesh(name string, n int, r *sim.Rand) *Graph {
	side := 1
	for side*side < n {
		side++
	}
	n = side * side
	edges := make([][2]int, 0, n*2)
	id := func(x, y int) int { return y*side + x }
	for y := 0; y < side; y++ {
		for x := 0; x < side; x++ {
			if x+1 < side {
				edges = append(edges, [2]int{id(x, y), id(x+1, y)})
			}
			if y+1 < side {
				edges = append(edges, [2]int{id(x, y), id(x, y+1)})
			}
			// Sparse diagonals give mean degree ≈3 after symmetrization.
			if x+1 < side && y+1 < side && (x+y)%4 == 0 {
				edges = append(edges, [2]int{id(x, y), id(x+1, y+1)})
			}
		}
	}
	_ = r
	return FromEdges(name, n, edges, true)
}

// Road generates a road-network-like graph: a 2D grid with most degree-4
// intersections thinned to degree ~2.4 by deleting random edges while
// keeping the grid connected via a spanning backbone, plus a few long
// "highway" shortcuts. Its diameter is Θ(side), reproducing the many-round
// BFS behavior of USA-road.
func Road(name string, n int, r *sim.Rand) *Graph {
	side := 1
	for side*side < n {
		side++
	}
	n = side * side
	edges := make([][2]int, 0, n*2)
	id := func(x, y int) int { return y*side + x }
	for y := 0; y < side; y++ {
		for x := 0; x < side; x++ {
			// Backbone: serpentine path visiting every vertex keeps the
			// graph connected.
			if x+1 < side {
				edges = append(edges, [2]int{id(x, y), id(x+1, y)})
			}
		}
		if y+1 < side {
			if y%2 == 0 {
				edges = append(edges, [2]int{id(side-1, y), id(side-1, y+1)})
			} else {
				edges = append(edges, [2]int{id(0, y), id(0, y+1)})
			}
		}
	}
	// Extra vertical streets with probability tuned for avg degree ~2.4
	// (backbone contributes ~2.0).
	for y := 0; y+1 < side; y++ {
		for x := 0; x < side; x++ {
			if r.Float64() < 0.20 {
				edges = append(edges, [2]int{id(x, y), id(x, y+1)})
			}
		}
	}
	return FromEdges(name, n, edges, true)
}
