package graph

import (
	"testing"
	"testing/quick"

	"fifer/internal/sim"
)

func line(n int) *Graph {
	edges := make([][2]int, 0, n-1)
	for i := 0; i+1 < n; i++ {
		edges = append(edges, [2]int{i, i + 1})
	}
	return FromEdges("line", n, edges, true)
}

func TestFromEdgesDedupAndSort(t *testing.T) {
	g := FromEdges("t", 4, [][2]int{{0, 1}, {1, 0}, {0, 1}, {0, 3}, {0, 0}, {2, 9}}, true)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := g.Neigh(0); len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("neigh(0) = %v", got)
	}
	if g.Degree(2) != 0 { // out-of-range edge dropped
		t.Fatal("invalid edge kept")
	}
}

func TestBFSLine(t *testing.T) {
	g := line(10)
	d := BFS(g, 0)
	for v := 0; v < 10; v++ {
		if d[v] != uint64(v) {
			t.Fatalf("dist[%d] = %d", v, d[v])
		}
	}
	d = BFS(g, 5)
	if d[0] != 5 || d[9] != 4 {
		t.Fatal("middle-source BFS wrong")
	}
}

func TestBFSUnreachable(t *testing.T) {
	g := FromEdges("t", 4, [][2]int{{0, 1}}, true)
	d := BFS(g, 0)
	if d[2] != Unset || d[3] != Unset {
		t.Fatal("unreachable vertices not Unset")
	}
}

// Property: BFS distances satisfy the triangle property — adjacent vertices
// differ by at most one level, and every non-source reached vertex has a
// neighbor one level closer.
func TestBFSLevelProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := sim.NewRand(seed)
		g := RMAT("p", 200, 400, 0.5, r)
		d := BFS(g, 0)
		for v := 0; v < g.NumVertices(); v++ {
			if d[v] == Unset {
				continue
			}
			hasParent := d[v] == 0
			for _, u := range g.Neigh(v) {
				if d[u] == Unset {
					return false // reachable vertex with unreached neighbor
				}
				diff := int64(d[v]) - int64(d[u])
				if diff > 1 || diff < -1 {
					return false
				}
				if d[u]+1 == d[v] {
					hasParent = true
				}
			}
			if !hasParent && g.Degree(v) > 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestCCProperties(t *testing.T) {
	r := sim.NewRand(3)
	g := RMAT("cc", 300, 500, 0.5, r)
	comp := CC(g)
	// Same component across every edge; label is the component's min id.
	for v := 0; v < g.NumVertices(); v++ {
		if comp[v] == Unset {
			t.Fatalf("vertex %d unlabeled", v)
		}
		if comp[v] > uint64(v) {
			t.Fatalf("label %d > vertex id %d (not the min)", comp[v], v)
		}
		for _, u := range g.Neigh(v) {
			if comp[u] != comp[v] {
				t.Fatalf("edge %d-%d crosses components", v, u)
			}
		}
	}
	// The labeled vertex of each component labels itself.
	for v := 0; v < g.NumVertices(); v++ {
		if comp[comp[v]] != comp[v] {
			t.Fatal("component root mislabeled")
		}
	}
}

func TestPRDFixedPoint(t *testing.T) {
	if FixMul(ToFix(0.5), ToFix(0.5)) != ToFix(0.25) {
		t.Fatal("FixMul wrong")
	}
	if got := FromFix(ToFix(0.85)); got < 0.8499 || got > 0.8501 {
		t.Fatalf("round-trip = %g", got)
	}
}

func TestPRDConservesAndConverges(t *testing.T) {
	r := sim.NewRand(5)
	g := RMAT("prd", 200, 800, 0.5, r)
	cfg := DefaultPRD()
	rank := PRD(g, cfg)
	// Ranks are positive and the total mass stays bounded by ~1.
	var total uint64
	for _, x := range rank {
		if x == 0 {
			t.Fatal("zero rank")
		}
		total += x
	}
	if FromFix(total) > 1.2 {
		t.Fatalf("rank mass %g too large", FromFix(total))
	}
	// More iterations never decrease any vertex's rank (deltas are >= 0).
	cfg2 := cfg
	cfg2.MaxIters = cfg.MaxIters + 5
	rank2 := PRD(g, cfg2)
	for v := range rank {
		if rank2[v] < rank[v] {
			t.Fatal("rank decreased with more iterations")
		}
	}
}

func TestRadiiMatchesBFSMax(t *testing.T) {
	r := sim.NewRand(9)
	g := RMAT("radii", 150, 400, 0.5, r)
	sources := SampleSources(g, 3, r)
	radii := Radii(g, sources)
	for v := 0; v < g.NumVertices(); v++ {
		var want uint64
		for _, s := range sources {
			if d := BFS(g, s)[v]; d != Unset && d > want {
				want = d
			}
		}
		if radii[v] != want {
			t.Fatalf("radii[%d] = %d, want %d", v, radii[v], want)
		}
	}
}

func TestSampleSourcesDistinct(t *testing.T) {
	r := sim.NewRand(1)
	g := line(20)
	s := SampleSources(g, 10, r)
	seen := map[int]bool{}
	for _, v := range s {
		if seen[v] || v < 0 || v >= 20 {
			t.Fatal("bad sample")
		}
		seen[v] = true
	}
	if len(s) != 10 {
		t.Fatal("wrong count")
	}
}

func TestGeneratorsMatchTable3(t *testing.T) {
	for _, in := range Inputs {
		g := Generate(in, ScaleTiny, 1)
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: %v", in, err)
		}
		_, _, wantDeg, _ := PaperStats(in)
		got := g.AvgDegree()
		if got < wantDeg*0.55 || got > wantDeg*1.8 {
			t.Errorf("%s: avg degree %.2f too far from paper's %.1f", in, got, wantDeg)
		}
		// Symmetric: every edge exists in both directions.
		for v := 0; v < g.NumVertices(); v += 97 {
			for _, u := range g.Neigh(v) {
				found := false
				for _, w := range g.Neigh(int(u)) {
					if int(w) == v {
						found = true
					}
				}
				if !found {
					t.Fatalf("%s: edge %d->%d not symmetric", in, v, u)
				}
			}
		}
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a := Generate(In, ScaleTiny, 7)
	b := Generate(In, ScaleTiny, 7)
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("nondeterministic generator")
	}
	for i := range a.Neighbors {
		if a.Neighbors[i] != b.Neighbors[i] {
			t.Fatal("nondeterministic neighbors")
		}
	}
}

func TestRoadGraphHasLargeDiameter(t *testing.T) {
	g := Generate(Rd, ScaleTiny, 1)
	d := BFS(g, 0)
	max := uint64(0)
	for _, x := range d {
		if x != Unset && x > max {
			max = x
		}
	}
	// A road-like grid of n vertices has diameter Θ(sqrt(n)).
	if max < 30 {
		t.Fatalf("road graph eccentricity %d too small for a road topology", max)
	}
	// And the skewed internet graph must have a far smaller one.
	gi := Generate(In, ScaleTiny, 1)
	di := BFS(gi, BFSMaxDegreeVertex(gi))
	maxI := uint64(0)
	for _, x := range di {
		if x != Unset && x > maxI {
			maxI = x
		}
	}
	if maxI*3 > max {
		t.Fatalf("internet graph eccentricity %d not much smaller than road %d", maxI, max)
	}
}

// BFSMaxDegreeVertex returns the highest-degree vertex (test helper shared
// with the benchmarks' source selection).
func BFSMaxDegreeVertex(g *Graph) int {
	best, deg := 0, -1
	for v := 0; v < g.NumVertices(); v++ {
		if d := g.Degree(v); d > deg {
			best, deg = v, d
		}
	}
	return best
}

func TestDegreeSkew(t *testing.T) {
	// The internet graph must be far more skewed than the mesh.
	in := Generate(In, ScaleTiny, 1)
	dy := Generate(Dy, ScaleTiny, 1)
	if float64(in.MaxDegree()) < 5*in.AvgDegree() {
		t.Fatalf("internet graph not skewed: max %d avg %.1f", in.MaxDegree(), in.AvgDegree())
	}
	if float64(dy.MaxDegree()) > 4*dy.AvgDegree() {
		t.Fatalf("mesh too skewed: max %d avg %.1f", dy.MaxDegree(), dy.AvgDegree())
	}
}
