package graph

import "fifer/internal/sim"

// Reference (serial, pure-Go) implementations of the four graph benchmarks.
// They define correct answers for the simulated pipelines and are also the
// code the OOO baseline's instruction traces are derived from.

// Unset marks an unreached vertex in distance/component arrays.
const Unset = ^uint64(0)

// BFS returns the distance of every vertex from src (Fig. 1a), with Unset
// for unreachable vertices.
func BFS(g *Graph, src int) []uint64 {
	dist := make([]uint64, g.NumVertices())
	for i := range dist {
		dist[i] = Unset
	}
	dist[src] = 0
	cur := []uint64{uint64(src)}
	var next []uint64
	d := uint64(1)
	for len(cur) > 0 {
		next = next[:0]
		for _, v := range cur {
			for _, u := range g.Neigh(int(v)) {
				if dist[u] == Unset {
					dist[u] = d
					next = append(next, u)
				}
			}
		}
		cur, next = next, cur
		d++
	}
	return dist
}

// CC labels every vertex with the smallest vertex id in its connected
// component by launching successive breadth-first searches, the structure
// the paper's CC benchmark uses ("launches multiple breadth-first searches
// to discover connectivity").
func CC(g *Graph) []uint64 {
	comp := make([]uint64, g.NumVertices())
	for i := range comp {
		comp[i] = Unset
	}
	var cur, next []uint64
	for s := 0; s < g.NumVertices(); s++ {
		if comp[s] != Unset {
			continue
		}
		comp[s] = uint64(s)
		cur = append(cur[:0], uint64(s))
		for len(cur) > 0 {
			next = next[:0]
			for _, v := range cur {
				for _, u := range g.Neigh(int(v)) {
					if comp[u] == Unset {
						comp[u] = uint64(s)
						next = append(next, u)
					}
				}
			}
			cur, next = next, cur
		}
	}
	return comp
}

// PRDConfig parameterizes PageRank-Delta. All arithmetic is Q32.32
// fixed-point so that the simulated pipeline (whose accumulation order
// differs) produces bit-identical results to this reference.
type PRDConfig struct {
	Damping  uint64 // Q32.32
	Epsilon  uint64 // Q32.32 relative threshold for revisiting a vertex
	MaxIters int
}

// FixOne is 1.0 in Q32.32.
const FixOne = uint64(1) << 32

// ToFix converts a float to Q32.32.
func ToFix(f float64) uint64 { return uint64(f * float64(FixOne)) }

// FromFix converts Q32.32 to float64.
func FromFix(x uint64) float64 { return float64(x) / float64(FixOne) }

// FixMul multiplies two Q32.32 values.
func FixMul(a, b uint64) uint64 {
	hi := (a >> 32) * (b >> 32)
	mid1 := (a >> 32) * (b & 0xffffffff)
	mid2 := (a & 0xffffffff) * (b >> 32)
	lo := (a & 0xffffffff) * (b & 0xffffffff)
	return hi<<32 + mid1 + mid2 + lo>>32
}

// DefaultPRD returns the standard Ligra-like parameters.
func DefaultPRD() PRDConfig {
	return PRDConfig{Damping: ToFix(0.85), Epsilon: ToFix(0.01), MaxIters: 10}
}

// PRD runs PageRank-Delta: vertices are only reprocessed when the change in
// their PageRank exceeds Epsilon times their current value (Sec. 7.2).
// It returns the final PageRank values in Q32.32.
func PRD(g *Graph, cfg PRDConfig) []uint64 {
	n := g.NumVertices()
	rank := make([]uint64, n)
	delta := make([]uint64, n)
	nextDelta := make([]uint64, n)
	active := make([]uint64, 0, n)
	base := (FixOne - cfg.Damping) / uint64(n)
	for v := 0; v < n; v++ {
		rank[v] = base
		delta[v] = base
		active = append(active, uint64(v))
	}
	for iter := 0; iter < cfg.MaxIters && len(active) > 0; iter++ {
		for i := range nextDelta {
			nextDelta[i] = 0
		}
		for _, v := range active {
			deg := g.Degree(int(v))
			if deg == 0 {
				continue
			}
			share := FixMul(cfg.Damping, delta[v]) / uint64(deg)
			for _, u := range g.Neigh(int(v)) {
				nextDelta[u] += share
			}
		}
		active = active[:0]
		for v := 0; v < n; v++ {
			d := nextDelta[v]
			rank[v] += d
			delta[v] = d
			if d > 0 && d > FixMul(cfg.Epsilon, rank[v]) {
				active = append(active, uint64(v))
			}
		}
	}
	return rank
}

// SampleSources picks k distinct random vertices for radii estimation.
func SampleSources(g *Graph, k int, r *sim.Rand) []int {
	n := g.NumVertices()
	if k > n {
		k = n
	}
	seen := make(map[int]struct{}, k)
	var out []int
	for len(out) < k {
		v := r.Intn(n)
		if _, ok := seen[v]; ok {
			continue
		}
		seen[v] = struct{}{}
		out = append(out, v)
	}
	return out
}

// Radii estimates per-vertex eccentricity by running BFS from the given
// source subset and recording, for each vertex, the maximum distance
// observed to any sampled source (Sec. 7.2); the graph-radius estimate is
// the maximum entry. Returns the per-vertex estimates.
func Radii(g *Graph, sources []int) []uint64 {
	radii := make([]uint64, g.NumVertices())
	for _, src := range sources {
		dist := BFS(g, src)
		for v, d := range dist {
			if d != Unset && d > radii[v] {
				radii[v] = d
			}
		}
	}
	return radii
}
