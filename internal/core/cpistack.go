// Package core implements the Fifer architecture (Sec. 5): processing
// elements whose CGRA fabrics are time-multiplexed across pipeline stages by
// a per-PE scheduler, double-buffered rapid reconfiguration, decoupled
// reference machines (DRMs), control values, and the multi-PE system with
// replicated temporal pipelines. The same machinery, with the scheduler
// disabled and one stage pinned per PE, is the paper's static-spatial-
// pipeline baseline (Fig. 11a).
package core

// CPIStack is the per-PE cycle breakdown used in Fig. 14, extending the CPI
// stack methodology to PEs. Every simulated cycle lands in exactly one
// bucket, so the stack always sums to the PE's total cycles.
type CPIStack struct {
	Issued   uint64 // at least one datapath firing initiated
	Stall    uint64 // fabric frozen by a coupled-load cache miss
	Queue    uint64 // blocked on a full output or empty input queue
	Reconfig uint64 // draining/loading/activating a configuration
	Idle     uint64 // completely inactive waiting for other PEs
}

// Total returns the sum of all buckets.
func (c CPIStack) Total() uint64 {
	return c.Issued + c.Stall + c.Queue + c.Reconfig + c.Idle
}

// Add accumulates another stack into c.
func (c *CPIStack) Add(o CPIStack) {
	c.Issued += o.Issued
	c.Stall += o.Stall
	c.Queue += o.Queue
	c.Reconfig += o.Reconfig
	c.Idle += o.Idle
}

// Fractions returns each bucket as a fraction of the total (zero total
// yields all zeros).
func (c CPIStack) Fractions() (issued, stall, queue, reconfig, idle float64) {
	t := float64(c.Total())
	if t == 0 {
		return
	}
	return float64(c.Issued) / t, float64(c.Stall) / t, float64(c.Queue) / t,
		float64(c.Reconfig) / t, float64(c.Idle) / t
}
