package core

import (
	"fmt"

	"fifer/internal/trace"
)

// Sharded simulation kernel (DESIGN.md §11).
//
// Config.Shards > 1 partitions the PEs into contiguous shards, each owned by
// a worker goroutine, and replaces the sequential per-cycle sweep with a
// coordinator-driven one: at every cycle the coordinator visits the shards
// in ascending order and *engages* (hands the cycle to) only the shards that
// can act, parking the rest in O(1). The protocol is exact, not approximate
// — every surface of a run (Result, trace events, metrics rows, golden
// tables, journal bytes) is bit-identical to the sequential kernel, which
// the shard-invariance differential suite in internal/bench pins.
//
// Why ordered engagement, not free-running shards: all of the machine's
// intra-cycle coupling is order-sensitive. The shared cache hierarchy
// mutates LRU and timing state on every access; a credited send from PE j
// is visible to a consumer PE i in the same cycle iff j ticks before i; a
// credit return from consumer i reaches producer j's same-cycle tick iff
// i ticks before j; and the functional backing store serializes same-cycle
// stores and loads. The sequential kernel resolves all of these with one
// rule — PEs tick in ascending id per cycle — so the sharded kernel keeps
// exactly that rule: engaged shards run one at a time, in ascending shard
// (hence PE) order, with the engagement hand-off acting as the epoch
// barrier. The canonical exchange order is therefore *inherited*, not
// re-derived: arbiter grants, credit returns, and DRM responses apply in
// ascending PE id within the cycle, identical to the sequential kernel.
//
// Where the speedup comes from: parking, at two granularities. The
// sequential kernel must tick every PE on every cycle in which *any* PE can
// act — its event-horizon fast-forward only jumps when the whole machine is
// inert. The sharded kernel skips a whole shard cycle-by-cycle whenever that
// shard alone is inert (wake in the future, no incoming traffic), and inside
// an engaged shard it skips the individual PEs that are provably inert
// (pe.wake in the future and no external arrival since their last tick), so
// per-cycle work is proportional to the *active* PEs, not the machine size —
// the regime the ROADMAP's 64–256-PE studies target. Per-PE parking trusts
// exactly the invariant event-horizon fast-forward already trusts ("a PE
// whose wake is in the future is bit-exactly inert unless something arrives
// from outside"), with the exchange hooks supplying the arrival edge; the
// shards-equal-PEs points of the differential matrix pin the per-PE case
// directly.
//
// A parked PE's deferred per-cycle accounting (CPI-bucket charges, the
// 64-cycle queue-occupancy sampling rhythm, blocked-DRM OutFull counts, the
// sliding scheduler cooldown) is settled lazily by peCatchUp, which replays
// the same fixed charges pe.advanceInert already batch-replays for
// fast-forward windows; the two mechanisms share one invariant and one
// replay path. The exchange points re-engage parked shards and parked PEs:
//
//   - a credited send settles the consumer PE's accounting up to (but not
//     including) the current cycle while the destination queue still holds
//     its pre-send occupancy, then marks the consumer PE shDirty so it ticks
//     this cycle if the ascending sweep has not passed it yet (reproducing
//     the sequential same-cycle visibility rule) and next cycle otherwise;
//     a cross-shard send additionally marks the consumer shard dirtyData;
//   - a credit return marks the producing port's PE shDirty and its shard
//     dirtyCredit (the port→PE and port→shard bindings are learned at the
//     port's first send; a return always follows a send, so they exist);
//   - program work injection at quiescence bypasses the queue hooks, so a
//     round that injects marks every shard and every PE dirty.
//
// Observation boundaries (metrics samples, live audits, deadlock and
// cancellation and MaxCycles error construction, quiescence calls, run
// completion) settle every shard first, exactly as fast-forward lands the
// clock on each boundary before its checks run; the watchdog's progress
// signature needs no settling because it reads only monotonic counters,
// which are frozen for inert PEs under both kernels. Fast-forward itself
// degenerates to a pure clock jump here — with every shard parked past the
// jump target, all accounting is already deferred, so the jump moves
// s.Cycle and nothing else.
//
// Concurrency and memory ordering: engaged shards run strictly one at a
// time, with every hand-off (coordinator→worker command, worker→coordinator
// completion) a channel operation, so all simulation state — including the
// shared hierarchy, another shard's queues touched by a send hook, and the
// single tracer — is accessed under a total happens-before order and the
// kernel is clean under the race detector. The only concurrent phase is the
// 64-cycle queue-memory sampling broadcast, which touches strictly
// shard-private state. OnCycle hooks (fault injectors) force every shard to
// engage on every cycle, mirroring the sequential kernel's rule that hooks
// disable fast-forward.

// shard is one contiguous group of PEs plus its worker-protocol state. All
// fields are owned by the coordinator between engagements and by the
// shard's worker during one; the cmd/done channel hand-offs order every
// access.
type shard struct {
	id  int
	pes []*PE // s.PEs[lo:hi]

	wake    uint64 // min effective PE wake published by the last tick; 0 before cycle 0
	busy    bool   // any PE busy at the last ticked cycle
	ticked  bool   // ticked at the current sweep cycle (for the %64 sample broadcast)
	hasPoll bool   // any PE in this shard polls (exotic ports)

	// dirtyData: a token landed in one of this shard's queues since its last
	// tick (credited send, or program injection). Implies the sequential
	// kernel would see the shard busy, so the quiet scan counts it.
	// dirtyCredit: a credit returned to one of this shard's producer ports;
	// it can newly unblock a stage, so the shard must tick, but it cannot
	// make an idle shard busy.
	dirtyData   bool
	dirtyCredit bool

	cmd      chan shardCmd
	done     chan struct{}
	panicked any
}

type shardOp uint8

const (
	opBatch shardOp = iota
	opSample
)

type shardCmd struct {
	op    shardOp
	cycle uint64
	limit uint64 // opBatch: first cycle the worker must NOT tick
	idle  bool   // opBatch: every other shard is idle (quiescence is possible)
}

// buildShards partitions the PEs into Cfg.Shards contiguous shards (sizes
// differing by at most one, larger shards first), starts one worker per
// shard, and installs the exchange hooks on every inter-PE arbiter.
func (s *System) buildShards() {
	n := s.Cfg.Shards
	s.shards = make([]*shard, 0, n)
	s.peShard = make([]int, len(s.PEs))
	// A stage with an exotic port (stage.Exotic) may read program state the
	// queue/credit hooks cannot see — e.g. an in-flight throttle decremented
	// by a stage on another PE — so its PE can never be parked while user
	// code runs anywhere: it polls on every cycle that follows a firing.
	s.hasPoll = false
	for _, pe := range s.PEs {
		pe.poll = false
		for _, st := range pe.stages {
			if st.Exotic() {
				pe.poll = true
				s.hasPoll = true
				break
			}
		}
	}
	base, extra := len(s.PEs)/n, len(s.PEs)%n
	lo := 0
	for k := 0; k < n; k++ {
		sz := base
		if k < extra {
			sz++
		}
		sh := &shard{
			id:   k,
			pes:  s.PEs[lo : lo+sz],
			cmd:  make(chan shardCmd, 1),
			done: make(chan struct{}, 1),
		}
		for i := lo; i < lo+sz; i++ {
			s.peShard[i] = k
			if s.PEs[i].poll {
				sh.hasPoll = true
			}
		}
		s.shards = append(s.shards, sh)
		lo += sz
		go s.shardWorker(sh)
	}
	s.curShard, s.curPE = -1, -1
	s.installShardHooks()
}

// stopShards shuts the workers down; the coordinator has matched every
// command with a completion, so the channels are quiescent.
func (s *System) stopShards() {
	for _, sh := range s.shards {
		close(sh.cmd)
	}
}

// installShardHooks wires each inter-PE arbiter into the exchange protocol:
// the pre-send hook settles the consumer shard's deferred accounting against
// the pre-send queue occupancy and marks it dirtyData; the credit hook marks
// the producing port's shard dirtyCredit on returns (chaining the tracing
// hook the sequential kernel would have used, so event streams match).
func (s *System) installShardHooks() {
	for ai, a := range s.arbiters {
		a := a
		consumerPE := s.arbConsumers[ai]
		cpe := s.PEs[consumerPE]
		consumer := s.shards[s.peShard[consumerPE]]
		// portShard/portPE are the lazily learned port→shard and port→PE
		// bindings: port p belongs to the shard/PE that was ticking when p
		// first sent. A port has exactly one producer PE, so the bindings are
		// stable; -1 means never sent.
		portShard := make([]int, a.Ports())
		portPE := make([]int, a.Ports())
		for i := range portShard {
			portShard[i] = -1
			portPE[i] = -1
		}
		a.SetSendHook(func(port int) {
			if portShard[port] < 0 && s.curShard >= 0 {
				portShard[port] = s.curShard
				portPE[port] = s.curPE
			}
			// Settle the consumer PE against the pre-send occupancy, then mark
			// it: if the ascending sweep has not reached it yet it ticks this
			// cycle (sequential same-cycle visibility); if it has, shDirty
			// holds it awake for the next cycle.
			s.peCatchUp(cpe, s.Cycle)
			cpe.shDirty = true
			if consumer.id == s.curShard {
				// Intra-shard send: the shard's own ascending-PE tick already
				// gives the sequential same-cycle visibility, and its
				// end-of-tick busy scan sees any leftover token, so marking
				// dirtyData here would only make the quiet scan stricter than
				// the sequential kernel's (a same-cycle-consumed token would
				// block quiescence for one extra cycle). A send to an
				// already-ticked PE still needs the shard re-engaged next
				// cycle — its published wake predates the token — which
				// dirtyCredit provides without touching the quiet scan: the
				// token is necessarily still buffered at the busy scan, so
				// busy carries the quiet answer exactly.
				if consumerPE < s.curPE {
					consumer.dirtyCredit = true
				}
				return
			}
			consumer.dirtyData = true
			s.crossTouch = true
		})
		traceHook := s.creditTracer(s.arbConsumers[ai], a.Queue())
		a.SetCreditHook(func(port int, granted bool) {
			if !granted {
				if b := portShard[port]; b >= 0 {
					// A return mutates only the producer port's credit counter
					// — nothing peCatchUp accounts — so no settling is needed;
					// the producer PE just has to tick to observe it.
					s.PEs[portPE[port]].shDirty = true
					s.shards[b].dirtyCredit = true
					if b != s.curShard {
						s.crossTouch = true
					}
				} else {
					// A return without a recorded send (possible only for
					// exotic seeding paths): wake everyone, conservatively.
					for _, sh := range s.shards {
						sh.dirtyCredit = true
						for _, pe := range sh.pes {
							pe.shDirty = true
						}
					}
					s.crossTouch = true
				}
			}
			if traceHook != nil {
				traceHook(port, granted)
			}
		})
	}
}

// shardWorker is the goroutine owning one shard. Panics from the simulation
// (e.g. a queue-layer corruption raised inside a kernel firing) are parked
// in sh.panicked and re-raised on the coordinator, so Run's recover turns
// them into the same ErrInvariant the sequential kernel reports.
func (s *System) shardWorker(sh *shard) {
	for c := range sh.cmd {
		func() {
			defer func() { sh.panicked = recover() }()
			switch c.op {
			case opBatch:
				s.shardBatch(sh, c.cycle, c.limit, c.idle)
			case opSample:
				// Sample only the PEs that actually ticked this cycle
				// (caughtUp == cycle+1); a parked PE's sample for this cycle
				// rides its deferred catch-up against the frozen occupancy.
				for _, pe := range sh.pes {
					if pe.caughtUp == c.cycle+1 {
						pe.QMem.Sample()
					}
				}
			}
		}()
		sh.done <- struct{}{}
	}
}

// shardTick runs one engaged cycle: in ascending id order, settle and tick
// the PEs that can act (woken, externally marked, or force — OnCycle hooks
// may have mutated anything), leaving provably inert PEs parked with their
// accounting deferred; then publish the shard's fresh wake and busy state.
// The busy scan is live over every PE — a parked PE's frozen state answers
// Busy(now) exactly as the sequential kernel's scan would.
func (s *System) shardTick(sh *shard, now uint64, force bool) {
	for _, pe := range sh.pes {
		if force || pe.shDirty || pe.wake <= now || (pe.poll && s.sweepFired) {
			s.peCatchUp(pe, now)
			pe.shDirty = false
			s.curPE = pe.ID
			pe.Tick(now)
			pe.caughtUp = now + 1
			if pe.firedNow {
				s.sweepFired = true
			}
		}
	}
	s.curPE = -1
	wake := horizonNever
	busy := false
	for _, pe := range sh.pes {
		// shDirty here means a backward intra-shard send or a credit return
		// reached a PE the sweep had already passed: it must tick next cycle.
		w := pe.wake
		if pe.shDirty {
			w = now + 1
		}
		if w < wake {
			wake = w
		}
		if !busy && pe.Busy(now) {
			busy = true
		}
	}
	sh.wake, sh.busy = wake, busy
	sh.ticked = true
}

// shardBatch runs an autonomous multi-cycle engagement: when the coordinator
// finds exactly one shard active, that shard can tick cycle after cycle on
// its own goroutine — no per-cycle hand-off — because no other shard can act
// before the batch limit (the earliest parked wake or observation boundary,
// both strictly above every cycle the batch ticks) and every event that
// could change that (a cross-shard send or credit return, discovered only
// mid-tick) raises crossTouch and ends the batch at exactly the cycle the
// coordinator's sweep must resume. The worker advances s.Cycle itself so the
// exchange hooks and trace events see the true cycle; the coordinator is
// blocked on the epoch barrier meanwhile, so the mutation is ordered. It
// leaves s.Cycle at the last cycle ticked.
//
// Stop conditions, in order, after ticking cycle c:
//   - crossTouch: another shard was marked this cycle — if it is a later
//     shard it must still tick at c (sequential same-cycle visibility), so
//     the coordinator resumes its sweep at c;
//   - quiescence risk: this shard went idle while every other shard was
//     idle, so the coordinator must run the quiet protocol at c;
//   - c+1 reaching the limit (parked wake or observation boundary);
//   - self-parking: the shard's own wake moved past c+1 and nothing marked
//     it dirty, so the coordinator's fast-forward takes over.
func (s *System) shardBatch(sh *shard, now, limit uint64, othersIdle bool) {
	c := now
	for {
		s.Cycle = c
		for _, pe := range sh.pes {
			if pe.shDirty || pe.wake <= c {
				s.peCatchUp(pe, c)
				pe.shDirty = false
				s.curPE = pe.ID
				pe.Tick(c)
				pe.caughtUp = c + 1
			}
		}
		s.curPE = -1
		wake := horizonNever
		busy := false
		for _, pe := range sh.pes {
			w := pe.wake
			if pe.shDirty {
				w = c + 1
			}
			if w < wake {
				wake = w
			}
			if !busy && pe.Busy(c) {
				busy = true
			}
		}
		sh.wake, sh.busy = wake, busy
		if c%64 == 0 {
			for _, pe := range sh.pes {
				if pe.caughtUp == c+1 {
					pe.QMem.Sample()
				}
			}
		}
		if s.crossTouch {
			break
		}
		if !busy && othersIdle {
			break
		}
		next := c + 1
		if next >= limit {
			break
		}
		if !(sh.dirtyData || sh.dirtyCredit || wake <= next) {
			break
		}
		sh.dirtyData, sh.dirtyCredit = false, false
		c = next
	}
	s.Cycle = c
}

// peCatchUp replays one parked PE's deferred per-cycle accounting for cycles
// [caughtUp, to): the same fixed charges and 64-cycle sampling rhythm
// advanceInert batch-replays for fast-forward windows. Every PE ticks at
// cycle 0 (wake starts at 0), so caughtUp ≥ 1 whenever to > 0 and the
// (from-1)/64 term cannot underflow.
func (s *System) peCatchUp(pe *PE, to uint64) {
	from := pe.caughtUp
	if to <= from {
		return
	}
	pe.advanceInert(to, to-from)
	if n64 := (to-1)/64 - (from-1)/64; n64 > 0 {
		pe.QMem.SampleN(n64)
	}
	pe.caughtUp = to
}

// shardCatchUp settles every PE of one shard up to cycle `to`.
func (s *System) shardCatchUp(sh *shard, to uint64) {
	for _, pe := range sh.pes {
		s.peCatchUp(pe, to)
	}
}

// settleShards brings every shard's deferred accounting up to the current
// cycle. Observation boundaries call it so metrics, audits, quiescence
// calls, and error dumps see exactly the state the sequential kernel would
// have at this cycle.
func (s *System) settleShards() {
	for _, sh := range s.shards {
		s.shardCatchUp(sh, s.Cycle)
	}
}

// engage runs cycle now for sh. The dirty flags are consumed here — cleared
// before the tick so traffic arriving later in this sweep re-marks the shard
// for the next cycle. Because engagements are serialized by construction, a
// single-cycle engagement's epoch barrier degenerates to a function call on
// the coordinator — a worker hand-off would only add two scheduler round
// trips per shard per cycle; the shard's own goroutine carries the
// multi-cycle batches (shardBatch) and the concurrent sampling broadcasts,
// which is where goroutine ownership actually buys wall time.
func (s *System) engage(sh *shard, now uint64, force bool) {
	sh.dirtyData, sh.dirtyCredit = false, false
	s.curShard = sh.id
	s.shardTick(sh, now, force)
	s.curShard = -1
}

// runSharded is the sharded kernel's drive loop. It mirrors runSeq exactly
// — same checks at the same cycles, same quiet/quiescence protocol, same
// fast-forward clamping — with per-PE ticking replaced by the ordered
// engagement sweep and all inert accounting deferred to shardCatchUp.
func (s *System) runSharded(prog Program) (res Result, err error) {
	s.buildShards()
	defer s.stopShards()
	var wdInterval uint64
	if s.Cfg.WatchdogCycles > 0 {
		if wdInterval = s.Cfg.WatchdogCycles / 2; wdInterval == 0 {
			wdInterval = 1
		}
	}
	var cancelEvery uint64
	if s.Cfg.Done != nil {
		if cancelEvery = wdInterval; cancelEvery == 0 {
			cancelEvery = cancelInterval
		}
		select {
		case <-s.Cfg.Done:
			return res, s.canceledError()
		default:
		}
	}
	var sampleEvery uint64
	if s.Cfg.Metrics != nil {
		if sampleEvery = s.Cfg.MetricsCycles; sampleEvery == 0 {
			sampleEvery = DefaultMetricsCycles
		}
		if s.lastStacks == nil {
			s.lastStacks = make([]CPIStack, len(s.PEs))
		}
	}
	lastSig := s.progressSig()
	lastProgress := s.Cycle
	// checks is runSeq's observation ladder with one addition: every
	// boundary that reads non-monotonic state (CPI stacks, occupancy
	// samples, state dumps) settles the shards first. The watchdog's
	// signature comparison reads only monotonic counters and runs unsettled,
	// like the sequential kernel reads them mid-window.
	checks := func() (stop bool, err error) {
		if cancelEvery > 0 && s.Cycle%cancelEvery == 0 {
			select {
			case <-s.Cfg.Done:
				s.settleShards()
				return true, s.canceledError()
			default:
			}
		}
		if sampleEvery > 0 && s.Cycle%sampleEvery == 0 {
			s.settleShards()
			s.sampleMetrics()
		}
		if wdInterval > 0 && s.Cycle%wdInterval == 0 {
			sig := s.progressSig()
			if s.tracer != nil {
				s.tracer.Emit(trace.Event{Cycle: s.Cycle, PE: -1,
					Kind: trace.KindCheckpoint, Name: "watchdog", Arg: sig.firings})
			}
			if sig == lastSig {
				s.settleShards()
				return true, s.deadlockError(lastProgress)
			}
			lastSig, lastProgress = sig, s.Cycle
		}
		if s.Cfg.AuditCycles > 0 && s.Cycle%s.Cfg.AuditCycles == 0 {
			s.settleShards()
			if aerr := s.AuditLive(); aerr != nil {
				return true, aerr
			}
		}
		if s.Cycle >= s.Cfg.MaxCycles {
			s.settleShards()
			return true, fmt.Errorf("%w: MaxCycles=%d (deadlock or runaway program)\n%s",
				ErrMaxCycles, s.Cfg.MaxCycles, s.BlockedSummary(dumpExcerptLines))
		}
		return false, nil
	}
	for {
		now := s.Cycle
		engageAll := len(s.hooks) > 0
		if engageAll {
			for _, f := range s.hooks {
				f(s, now)
			}
		}
		for _, sh := range s.shards {
			sh.ticked = false
		}
		s.sweepFired = false
		// Single-active-shard batching: when the pre-scan finds exactly one
		// shard able to act, hand it a multi-cycle batch bounded by the
		// earliest parked wake and the next observation boundary (the same
		// clamps fast-forward uses, so no check point is skipped). The batch
		// eliminates the per-cycle hand-off in the regime parking creates —
		// activity concentrated in one region of the machine — and ends the
		// moment anything cross-shard happens, with the sweep resuming at the
		// batch's final cycle for later shards (same-cycle visibility).
		batched := false
		if !engageAll && !s.hasPoll {
			active, othersIdle := -1, true
			for i, sh := range s.shards {
				if sh.dirtyData || sh.dirtyCredit || sh.wake <= now {
					if active >= 0 {
						active = -2
						break
					}
					active = i
				} else if sh.busy {
					othersIdle = false
				}
			}
			if active >= 0 {
				sh := s.shards[active]
				limit := s.Cfg.MaxCycles
				for i, other := range s.shards {
					if i != active && other.wake < limit {
						limit = other.wake
					}
				}
				clampLimit := func(period uint64) {
					if period > 0 {
						if next := (now/period + 1) * period; next < limit {
							limit = next
						}
					}
				}
				clampLimit(cancelEvery)
				clampLimit(sampleEvery)
				clampLimit(wdInterval)
				clampLimit(s.Cfg.AuditCycles)
				if limit > now+1 {
					batched = true
					s.crossTouch = false
					sh.dirtyData, sh.dirtyCredit = false, false
					s.curShard = sh.id
					sh.cmd <- shardCmd{op: opBatch, cycle: now, limit: limit, idle: othersIdle}
					<-sh.done
					s.curShard = -1
					if p := sh.panicked; p != nil {
						sh.panicked = nil
						panic(p)
					}
					// The worker left s.Cycle at the last cycle it ticked;
					// resume the sweep there for the shards after it, which a
					// final-cycle cross-shard send may have marked.
					now = s.Cycle
					for _, sh2 := range s.shards[active+1:] {
						if sh2.dirtyData || sh2.dirtyCredit || sh2.wake <= now {
							s.engage(sh2, now, false)
						}
					}
				}
			}
		}
		if !batched {
			for _, sh := range s.shards {
				if engageAll || sh.dirtyData || sh.dirtyCredit || sh.wake <= now ||
					(s.sweepFired && sh.hasPoll) {
					s.engage(sh, now, engageAll)
				}
			}
		}
		if s.sweepFired && s.hasPoll && !engageAll {
			// A firing this cycle may have changed what a poll PE's exotic
			// ports report; every poll PE the sweep has already passed (or
			// parked) must observe the post-firing state next cycle, exactly
			// when the sequential kernel's ascending order would let it.
			// dirtyCredit re-engages the shard without affecting the quiet
			// scan; ticking an actually-inert PE is bit-identical to parking
			// it, so over-marking is safe.
			for _, sh := range s.shards {
				if sh.hasPoll {
					sh.dirtyCredit = true
					for _, pe := range sh.pes {
						if pe.poll {
							pe.shDirty = true
						}
					}
				}
			}
		}
		if now%64 == 0 {
			// The cycle's queue-occupancy samples, after the whole sweep so
			// every same-cycle send has landed. Shards that ticked sample now,
			// concurrently (strictly shard-private state); parked shards'
			// samples ride their deferred catch-up against frozen occupancies.
			for _, sh := range s.shards {
				if sh.ticked {
					sh.cmd <- shardCmd{op: opSample, cycle: now}
				}
			}
			for _, sh := range s.shards {
				if sh.ticked {
					<-sh.done
					if p := sh.panicked; p != nil {
						sh.panicked = nil
						panic(p)
					}
				}
			}
		}
		quiet := true
		sysWake := horizonNever
		for _, sh := range s.shards {
			// A parked shard's stale busy flag is exact: its state is frozen,
			// and anything that could newly occupy it sets dirtyData. Credit
			// returns never make a shard busy, so dirtyCredit is excluded —
			// matching the sequential kernel's Busy scan.
			if sh.busy || sh.dirtyData {
				quiet = false
			}
			w := sh.wake
			if sh.dirtyData || sh.dirtyCredit {
				w = now + 1
			}
			if w < sysWake {
				sysWake = w
			}
		}
		s.Cycle++
		if quiet {
			s.settleShards()
			if !prog.Quiesced(s) {
				break
			}
			res.Rounds++
			// Injection bypasses the queue hooks (programs seed local queues
			// directly), so wake everything; the next sweep re-ticks every
			// shard and every PE exactly as the sequential kernel would.
			for _, sh := range s.shards {
				sh.dirtyData = true
				for _, pe := range sh.pes {
					pe.shDirty = true
				}
			}
		}
		if stop, cerr := checks(); stop {
			return res, cerr
		}
		// Event-horizon fast-forward, degenerated to a pure clock jump: with
		// every shard parked past the target, all per-cycle accounting is
		// already deferred, so landing the clock on the next boundary is the
		// whole job. Same guard and clamps as runSeq.
		if !quiet && sysWake > s.Cycle && !s.Cfg.NoFastForward && !engageAll {
			w := sysWake
			clampMult := func(period uint64) {
				if period > 0 {
					if next := (s.Cycle/period + 1) * period; next < w {
						w = next
					}
				}
			}
			clampMult(cancelEvery)
			clampMult(sampleEvery)
			clampMult(wdInterval)
			clampMult(s.Cfg.AuditCycles)
			if s.Cfg.MaxCycles < w {
				w = s.Cfg.MaxCycles
			}
			s.Cycle = w
			if stop, cerr := checks(); stop {
				return res, cerr
			}
		}
	}
	s.settleShards()
	s.finishRun(&res)
	return res, nil
}
