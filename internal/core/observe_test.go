package core

import (
	"testing"

	"fifer/internal/queue"
	"fifer/internal/stage"
	"fifer/internal/trace"
)

// tickBatch builds a one-PE temporal pipeline (forward + sink, so ticks
// exercise firing, queue traffic, scheduling, and reconfiguration) and
// returns a closure that injects a burst of tokens and ticks the PE until
// they drain. The first call doubles as warmup: it establishes queue and
// ring capacities so steady state performs no growth.
func tickBatch(cfg Config) (run func(), sys *System) {
	sys = NewSystem(cfg)
	pe := sys.PE(0)
	// Deliberately tiny queues so batches generate full/ready stall edges,
	// not just reconfigurations — the emission sites under test.
	q1 := pe.AllocQueue("q1", 8)
	q2 := pe.AllocQueue("q2", 8)
	got := 0
	pe.AddStage(passStage("fwd", stage.LocalPort{Q: q1}, stage.LocalPort{Q: q2}))
	pe.AddStage(sinkStage("sink", stage.LocalPort{Q: q2}, &got))
	return func() {
		fed := 0
		for i := 0; i < 2000; i++ {
			if fed < 256 && q1.Space() > 0 {
				q1.Enq(queue.Data(uint64(fed)))
				fed++
			}
			pe.Tick(sys.Cycle)
			sys.Cycle++
		}
	}, sys
}

// TestDisabledTracingAllocatesNothing is the overhead contract's teeth
// (DESIGN.md §9): with no Tracer or MetricsSink attached, the simulation
// hot path — stage firing, scheduling, reconfiguration, queue traffic —
// performs zero heap allocations per tick batch. Any emission site that
// builds an event before nil-checking, or any hook wiring that allocates
// per tick, trips this immediately.
func TestDisabledTracingAllocatesNothing(t *testing.T) {
	run, _ := tickBatch(testConfig(1))
	run() // warmup: slice growth, first-switch config cache misses
	if allocs := testing.AllocsPerRun(20, run); allocs != 0 {
		t.Fatalf("untraced tick batch allocates %v times per run, want 0", allocs)
	}
}

// TestSteadyStateTracingAllocatesNothing covers the enabled side: once the
// collector's ring is saturated (flight-recorder mode), emitting events is
// overwrite-in-place and also allocation-free — a long traced run reaches a
// memory ceiling instead of growing without bound.
func TestSteadyStateTracingAllocatesNothing(t *testing.T) {
	cfg := testConfig(1)
	col := trace.NewCollector(1 << 7)
	cfg.Tracer = col
	run, _ := tickBatch(cfg)
	for i := 0; i < 10 && col.Dropped() == 0; i++ {
		run() // warmup until the ring has wrapped
	}
	if col.Dropped() == 0 {
		t.Fatal("warmup did not saturate the ring; enlarge the batch or shrink the ring")
	}
	if allocs := testing.AllocsPerRun(20, run); allocs != 0 {
		t.Fatalf("saturated traced tick batch allocates %v times per run, want 0", allocs)
	}
}

// TestTracedRunMatchesUntraced is the core-layer differential: the same
// synthetic pipeline ticked with and without a tracer lands in the same
// state, cycle counts and CPI stacks included.
func TestTracedRunMatchesUntraced(t *testing.T) {
	runA, sysA := tickBatch(testConfig(1))
	cfgB := testConfig(1)
	cfgB.Tracer = trace.NewCollector(1 << 16)
	runB, sysB := tickBatch(cfgB)
	for i := 0; i < 5; i++ {
		runA()
		runB()
	}
	a, b := sysA.PE(0), sysB.PE(0)
	if a.Stack != b.Stack || a.Activations != b.Activations || a.Reconfigs != b.Reconfigs {
		t.Fatalf("traced PE diverged from untraced:\nuntraced: stack=%+v act=%d rec=%d\ntraced:   stack=%+v act=%d rec=%d",
			a.Stack, a.Activations, a.Reconfigs, b.Stack, b.Activations, b.Reconfigs)
	}
}
