package core

import (
	"errors"
	"fmt"
)

// ErrCanceled reports that a run was stopped through the cooperative
// cancellation hook (Config.Done) before the program quiesced. The returned
// error is a *CanceledError; errors.As exposes the cycle the run reached
// and a blocked-state excerpt, so an interrupted sweep's logs still say
// where each simulation was when it died.
var ErrCanceled = errors.New("core: simulation canceled")

// CanceledError carries where a canceled run stopped. It wraps ErrCanceled
// so callers detect cancellation with errors.Is through any further
// wrapping (the bench harness adds job identity on top).
type CanceledError struct {
	// Cycle is the simulated cycle at which Run observed the cancellation.
	Cycle uint64
	// Summary is a BlockedSummary excerpt taken at the stop point: wait-for
	// edges plus a truncated state dump. A canceled run is often one the
	// operator suspected of being stuck, so the error says what it was
	// doing, not just that it stopped.
	Summary string
}

// Error renders the headline, stop cycle, and state excerpt.
func (e *CanceledError) Error() string {
	return fmt.Sprintf("%v at cycle %d\n%s", ErrCanceled, e.Cycle, e.Summary)
}

// Unwrap makes errors.Is(err, ErrCanceled) work through the report.
func (e *CanceledError) Unwrap() error { return ErrCanceled }

// canceledError builds the error Run returns when Cfg.Done is closed.
func (s *System) canceledError() error {
	return &CanceledError{
		Cycle:   s.Cycle,
		Summary: s.BlockedSummary(dumpExcerptLines),
	}
}

// cancelInterval is how often Run polls Cfg.Done when the watchdog is
// disabled: frequent enough that cancellation latency stays far below a
// second of wall-clock, rare enough that the poll never shows up in a
// profile.
const cancelInterval = 65536
