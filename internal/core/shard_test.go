package core

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"fifer/internal/mem"
	"fifer/internal/queue"
	"fifer/internal/stage"
	"fifer/internal/trace"
)

// The core half of the shard-invariance contract (DESIGN.md §11): seeded
// random synthetic pipelines whose credited queues deliberately cross shard
// boundaries in both directions — forward sends (consumer ticks later the
// same cycle), backward sends (consumer already ticked), backward credit
// returns, DRM-latency windows, coupled-load stalls — run at every shard
// count and must agree with the sequential kernel on every surface. Holding
// the equality with fast-forward enabled is also the property that per-shard
// wakes never let a jump skip past a cross-shard exchange: any exchange
// inside a jump window would tick the two kernels apart and fail DeepEqual.

// shardPipeline is one random synthetic machine: a credited forwarding chain
// across all PEs with a reflection edge sending a fraction of the traffic
// backward, so tokens repeatedly cross every shard boundary at every shard
// count that divides the chain.
type shardPipeline struct {
	inbox0   *queue.Queue
	sunk     int
	rounds   int
	maxRound int
	batch    int
	refl     []int // reflections per injected token, fixed by the seed
}

// tokenOf packs (id, reflectionsLeft); values stay below the identity
// array's extent so DRM hops preserve them exactly.
func tokenOf(id, refl int) uint64 { return uint64(id*16 + refl) }

// buildShardPipeline wires the random chain onto sys. The seed fixes the PE
// order, the hop behaviors (plain forward, coupled load, DRM dereference),
// queue capacities, and the reflection schedule.
func buildShardPipeline(t *testing.T, sys *System, seed int64) *shardPipeline {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	n := len(sys.PEs)
	chain := rng.Perm(n)

	// Identity array: arr[i] = i, so a DRM dereference of arr+(v%ext)*8
	// returns v for every token value this pipeline produces.
	const ext = 4096
	arr := sys.Backing.AllocWords(ext)
	for i := 0; i < ext; i++ {
		sys.Backing.Store(arr+mem.Addr(i*8), uint64(i))
	}

	p := &shardPipeline{
		maxRound: 3 + rng.Intn(3),
		batch:    8 + rng.Intn(17),
	}
	for i := 0; i < p.batch*(p.maxRound+1); i++ {
		p.refl = append(p.refl, rng.Intn(4))
	}

	// inbox[k] feeds the stage on chain[k]: a local queue for the head (the
	// program seeds it directly), a credited inter-PE queue for every later
	// hop (producer chain[k-1], consumer chain[k]).
	inPort := make([]stage.InPort, n)
	outPort := make([]stage.OutPort, n) // producer-side port into inbox[k]
	p.inbox0 = sys.PE(chain[0]).AllocQueue("in", 64)
	inPort[0] = stage.LocalPort{Q: p.inbox0}
	for k := 1; k < n; k++ {
		a := sys.InterPEQueue(chain[k], fmt.Sprintf("hop%d", k), 4+rng.Intn(9), 1)
		inPort[k] = stage.ArbiterPort{A: a}
		outPort[k] = stage.CreditOut{P: a.Port(0)}
	}
	// The reflection edge: the tail sends tokens with reflections left back
	// to a mid-chain PE, which merges them into the forward flow.
	backIdx := 1 + rng.Intn(n/2)
	backArb := sys.InterPEQueue(chain[backIdx], "back", 4+rng.Intn(5), 1)

	for k := 0; k < n-1; k++ {
		k := k
		pe := sys.PE(chain[k])
		ins := []stage.InPort{inPort[k]}
		if k == backIdx {
			ins = append(ins, stage.ArbiterPort{A: backArb})
		}
		fwd := func(c *stage.Ctx, v uint64) bool { return c.Out[0].Push(queue.Data(v)) }
		switch rng.Intn(3) {
		case 0: // plain forward
		case 1: // coupled load (fabric stall on miss)
			inner := fwd
			fwd = func(c *stage.Ctx, v uint64) bool {
				if !inner(c, v) {
					return false
				}
				c.Load(arr + mem.Addr((v%ext)*8))
				return true
			}
		case 2: // DRM dereference hop: address in, identical value out
			d := pe.DRM(0)
			d.Configure(DRMDereference, outPort[k+1])
			fwd = func(c *stage.Ctx, v uint64) bool {
				return c.Out[0].Push(queue.Data(uint64(arr) + (v%ext)*8))
			}
			outPort[k+1] = stage.LocalPort{Q: d.In()}
		}
		pe.AddStage(&stage.Stage{
			Kernel: stage.KernelFunc{KernelName: fmt.Sprintf("hop%d", k), Fn: func(c *stage.Ctx) stage.Status {
				for i := len(c.In) - 1; i >= 0; i-- {
					t, ok := c.In[i].Peek()
					if !ok {
						continue
					}
					if c.Out[0].Space() < 1 {
						return stage.NoOutput
					}
					if !fwd(c, t.Value) {
						return stage.NoOutput
					}
					c.In[i].Pop()
					return stage.Fired
				}
				return stage.NoInput
			}},
			Mapping: passDFG(fmt.Sprintf("hop%d", k)),
			In:      ins,
			Out:     []stage.OutPort{outPort[k+1]},
		})
	}
	// Tail: reflect tokens with reflections left, sink the rest.
	backOut := stage.CreditOut{P: backArb.Port(0)}
	sys.PE(chain[n-1]).AddStage(&stage.Stage{
		Kernel: stage.KernelFunc{KernelName: "tail", Fn: func(c *stage.Ctx) stage.Status {
			t, ok := c.In[0].Peek()
			if !ok {
				return stage.NoInput
			}
			if t.Value%16 > 0 {
				if !backOut.Push(queue.Data(t.Value - 1)) {
					return stage.NoOutput
				}
			} else {
				p.sunk++
			}
			c.In[0].Pop()
			return stage.Fired
		}},
		Mapping: passDFG("tail"),
		In:      []stage.InPort{inPort[n-1]},
	})
	return p
}

// Quiesced implements Program: inject the next batch, or finish.
func (p *shardPipeline) Quiesced(*System) bool {
	if p.rounds > p.maxRound {
		return false
	}
	for j := 0; j < p.batch; j++ {
		id := p.rounds*p.batch + j
		p.inbox0.Enq(queue.Data(tokenOf(id, p.refl[id])))
	}
	p.rounds++
	return true
}

// runShardPipeline builds and runs one seeded pipeline at the given shard
// count, returning every comparable surface.
func runShardPipeline(t *testing.T, seed int64, shards int, noFF bool) (Result, error, *System, *trace.Collector, int) {
	t.Helper()
	cfg := testConfig(8)
	col := trace.NewCollector(1 << 16)
	cfg.Tracer = col
	cfg.Metrics = col
	cfg.MetricsCycles = 128
	cfg.WatchdogCycles = 1 << 16
	cfg.AuditCycles = 64
	cfg.Shards = shards
	cfg.NoFastForward = noFF
	sys := NewSystem(cfg)
	p := buildShardPipeline(t, sys, seed)
	p.inbox0.Enq(queue.Data(tokenOf(0, 0))) // pre-seed so the run starts busy
	res, err := sys.Run(p)
	return res, err, sys, col, p.sunk
}

// TestShardInvarianceRandomPipelines is the core differential pin: for each
// seed, the sharded kernel at every shard count — fast-forwarding or not —
// must match the sequential kernel on Result, final cycle, per-PE CPI
// stacks, trace events, metrics rows, sampled occupancy, and the functional
// output (tokens sunk).
func TestShardInvarianceRandomPipelines(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			wantRes, wantErr, wantSys, wantCol, wantSunk := runShardPipeline(t, seed, 1, false)
			if wantErr != nil {
				t.Fatalf("sequential kernel failed: %v", wantErr)
			}
			if wantSunk == 0 {
				t.Fatal("pipeline sank no tokens; the topology is degenerate")
			}
			for _, shards := range []int{2, 3, 4, 8} {
				for _, noFF := range []bool{false, true} {
					name := fmt.Sprintf("shards%d-ff%v", shards, !noFF)
					res, err, sys, col, sunk := runShardPipeline(t, seed, shards, noFF)
					if err != nil {
						t.Fatalf("%s: %v", name, err)
					}
					if sunk != wantSunk {
						t.Errorf("%s: sank %d tokens, sequential sank %d", name, sunk, wantSunk)
					}
					if sys.Cycle != wantSys.Cycle {
						t.Errorf("%s: final cycle %d, sequential %d", name, sys.Cycle, wantSys.Cycle)
					}
					if !reflect.DeepEqual(res, wantRes) {
						t.Errorf("%s: Result differs\nsharded:    %+v\nsequential: %+v", name, res, wantRes)
					}
					for i := range sys.PEs {
						if sys.PEs[i].Stack != wantSys.PEs[i].Stack {
							t.Errorf("%s: pe%d CPI stack differs: %+v vs %+v",
								name, i, sys.PEs[i].Stack, wantSys.PEs[i].Stack)
						}
					}
					if got, want := sys.MeanQueueOccupancy(), wantSys.MeanQueueOccupancy(); got != want {
						t.Errorf("%s: mean queue occupancy %v, sequential %v", name, got, want)
					}
					if !reflect.DeepEqual(col.Events(), wantCol.Events()) {
						diffEvents(t, col.Events(), wantCol.Events())
					}
					if !reflect.DeepEqual(col.Rows(), wantCol.Rows()) {
						t.Errorf("%s: metrics rows differ", name)
					}
					if err := sys.CheckInvariants(); err != nil {
						t.Errorf("%s: %v", name, err)
					}
				}
			}
		})
	}
}

// stuckProgram builds the canonical deadlock shape (a stage that always
// reports NoOutput over register-held work) on the last PE, so under any
// shard count the stuck PE sits in the last shard.
func stuckProgram(sys *System) Program {
	pe := sys.PE(len(sys.PEs) - 1)
	q := pe.AllocQueue("q", 4)
	q.Enq(queue.Data(1))
	pe.AddStage(&stage.Stage{
		Kernel: stage.KernelFunc{KernelName: "stuck", Fn: func(*stage.Ctx) stage.Status {
			return stage.NoOutput
		}},
		Mapping:   passDFG("stuck"),
		In:        []stage.InPort{stage.LocalPort{Q: q}},
		StateWork: func() int { return 1 },
	})
	return ProgramFunc(func(*System) bool { return false })
}

// TestShardDeadlockParity pins the failure path: a deadlocked machine must
// trip the watchdog at the same checkpoint cycle with the same structured
// report and error text under both kernels.
func TestShardDeadlockParity(t *testing.T) {
	run := func(shards int) (error, uint64) {
		cfg := testConfig(4)
		cfg.WatchdogCycles = 2048
		cfg.Shards = shards
		sys := NewSystem(cfg)
		_, err := sys.Run(stuckProgram(sys))
		return err, sys.Cycle
	}
	seqErr, seqCycle := run(1)
	shErr, shCycle := run(4)
	var seqDL, shDL *DeadlockError
	if !errors.As(seqErr, &seqDL) || !errors.As(shErr, &shDL) {
		t.Fatalf("expected deadlocks, got sequential=%v sharded=%v", seqErr, shErr)
	}
	if !reflect.DeepEqual(seqDL.Report, shDL.Report) {
		t.Errorf("deadlock reports differ\nsharded:    %+v\nsequential: %+v", shDL.Report, seqDL.Report)
	}
	if seqErr.Error() != shErr.Error() {
		t.Errorf("error text differs\nsharded:    %v\nsequential: %v", shErr, seqErr)
	}
	if seqCycle != shCycle {
		t.Errorf("deadlock detected at cycle %d sharded, %d sequential", shCycle, seqCycle)
	}
}

// TestShardMaxCyclesParity pins budget exhaustion, including the
// BlockedSummary dump embedded in the error string (which requires the
// sharded kernel to settle deferred accounting before formatting it).
func TestShardMaxCyclesParity(t *testing.T) {
	run := func(shards int) (error, uint64) {
		cfg := testConfig(4)
		cfg.WatchdogCycles = 0
		cfg.MaxCycles = 5000
		cfg.Shards = shards
		sys := NewSystem(cfg)
		_, err := sys.Run(stuckProgram(sys))
		return err, sys.Cycle
	}
	seqErr, seqCycle := run(1)
	shErr, shCycle := run(4)
	if !errors.Is(seqErr, ErrMaxCycles) || !errors.Is(shErr, ErrMaxCycles) {
		t.Fatalf("expected ErrMaxCycles, got sequential=%v sharded=%v", seqErr, shErr)
	}
	if seqErr.Error() != shErr.Error() {
		t.Errorf("error text differs\nsharded:    %v\nsequential: %v", shErr, seqErr)
	}
	if seqCycle != 5000 || shCycle != 5000 {
		t.Errorf("budget exhaustion at cycles sharded=%d sequential=%d, want 5000", shCycle, seqCycle)
	}
}

// TestShardCorruptionParity pins the typed-corruption path: a queue-layer
// panic raised inside a shard worker must surface as the same ErrInvariant
// the sequential kernel reports, not crash the process.
func TestShardCorruptionParity(t *testing.T) {
	run := func(shards int) error {
		cfg := testConfig(4)
		cfg.Shards = shards
		sys := NewSystem(cfg)
		pe := sys.PE(len(sys.PEs) - 1)
		q := pe.AllocQueue("q", 4)
		q.Enq(queue.Data(1))
		pe.AddStage(&stage.Stage{
			Kernel: stage.KernelFunc{KernelName: "corrupt", Fn: func(c *stage.Ctx) stage.Status {
				panic(&queue.Corruption{Component: "corrupt", Detail: "synthetic"})
			}},
			Mapping: passDFG("corrupt"),
			In:      []stage.InPort{stage.LocalPort{Q: q}},
		})
		_, err := sys.Run(ProgramFunc(func(*System) bool { return false }))
		return err
	}
	seqErr, shErr := run(1), run(4)
	if !errors.Is(seqErr, ErrInvariant) || !errors.Is(shErr, ErrInvariant) {
		t.Fatalf("expected ErrInvariant, got sequential=%v sharded=%v", seqErr, shErr)
	}
	if seqErr.Error() != shErr.Error() {
		t.Errorf("error text differs\nsharded:    %v\nsequential: %v", shErr, seqErr)
	}
}

// TestShardsValidation pins the named rejection of unusable shard counts:
// negative values and counts above the PE count must fail construction with
// ErrBadShards (no panic), while every in-range count builds.
func TestShardsValidation(t *testing.T) {
	for _, tc := range []struct {
		shards int
		ok     bool
	}{{-1, false}, {0, true}, {1, true}, {4, true}, {8, true}, {9, false}} {
		cfg := testConfig(8)
		cfg.Shards = tc.shards
		_, err := NewSystemChecked(cfg)
		if tc.ok && err != nil {
			t.Errorf("Shards=%d: unexpected error %v", tc.shards, err)
		}
		if !tc.ok {
			if !errors.Is(err, ErrBadShards) {
				t.Errorf("Shards=%d: error %v, want ErrBadShards", tc.shards, err)
			}
		}
	}
}
