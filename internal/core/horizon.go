package core

// Event-horizon fast-forward (DESIGN.md §10).
//
// Every PE.Tick publishes a wake cycle: the earliest future cycle at which
// that PE — fabric or any of its DRMs — could possibly act. "Act" means any
// state change beyond the fixed per-cycle bookkeeping of an inert machine:
// firing, activating, beginning or finishing a reconfiguration, issuing or
// delivering a DRM access, enqueueing or dequeueing a token. The sources:
//
//   - fabric reconfiguring:   wake = reconfigUntil (each cycle until then
//     charges Reconfig; the activation at reconfigUntil is the action)
//   - fabric stalled:         wake = stallUntil (charges Stall)
//   - fabric blocked:         wake = the soonest cooldown expiry among
//     ready-but-cooling stages (charges Queue or Idle); horizonNever when
//     only another component's token flow can unblock it
//   - fabric acted:           wake = now+1 (no window can start)
//   - DRM head in flight:     wake = inflight.front().ready
//   - DRM delivered/issued:   wake = now+1
//   - DRM otherwise:          horizonNever (needs input tokens, output
//     space, or a completion slot — all external)
//
// When every PE's wake lies strictly beyond the next cycle, every cycle up
// to the minimum wake W is provably inert: no queue changes, no trace
// events, no counter movement except the fixed per-cycle charges. Run then
// jumps the clock to min(W, next observation boundary) and advanceInert
// replays those fixed charges in one step — the same CPI-bucket increments,
// the same 64-cycle queue-occupancy samples, the same OutFull counts, the
// same sliding scheduler cooldown — leaving the machine in the exact state
// the naive loop would have reached. Observation boundaries (watchdog
// checkpoints, metrics samples, audits, cancellation polls, MaxCycles)
// clamp the jump so every check still runs at its original cycle against
// the same frozen state, which is why results are bit-identical to the
// Config.NoFastForward oracle.
//
// Fast-forward never engages while OnCycle hooks are registered (fault
// injectors mutate state at arbitrary cycles) and never crosses a cycle in
// which any component could act, so the only behavioral assumption is the
// kernel contract stage.Kernel already documents: a blocked TryFire consumes
// nothing and is repeatable. The differential suite in internal/bench pins
// the equivalence for every app.

// horizonNever is the wake cycle of a component that cannot act again
// without an external state change.
const horizonNever = ^uint64(0)

// advanceInert batch-executes the inert cycles [s.Cycle, to): it applies
// exactly the per-cycle side effects the naive loop would have applied —
// one CPI-bucket charge per PE per cycle, the 64-cycle queue-memory
// sampling rhythm, blocked-DRM OutFull counts, and the sliding scheduler
// cooldown — then sets the clock to `to`. The caller guarantees every PE's
// wake is ≥ to, hooks are absent, and no observation boundary lies inside
// (s.Cycle, to).
func (s *System) advanceInert(to uint64) {
	from := s.Cycle
	k := to - from
	for _, pe := range s.PEs {
		pe.advanceInert(to, k)
	}
	// Multiples of 64 in [from, to): each is a cycle whose tick the naive
	// loop would have followed with a QMem.Sample(). Occupancies are frozen,
	// so the samples batch into one SampleN per queue.
	if n64 := (to-1)/64 - (from-1)/64; n64 > 0 {
		for _, pe := range s.PEs {
			pe.QMem.SampleN(n64)
		}
	}
	s.Cycle = to
}

// advanceInert applies k inert cycles (ending at cycle to-1) to one PE.
func (p *PE) advanceInert(to, k uint64) {
	switch p.inertBucket {
	case bucketReconfig:
		p.Stack.Reconfig += k
	case bucketStall:
		p.Stack.Stall += k
	case bucketQueue:
		p.Stack.Queue += k
	case bucketIdle:
		p.Stack.Idle += k
	}
	if p.slideCooldown {
		// The naive loop re-arms the fruitless activation's cooldown every
		// blocked cycle; only the final value is ever observable.
		p.cooldownUntil[p.active] = (to - 1) + schedCooldown
	}
	for _, d := range p.DRMs {
		if d.outBlocked {
			d.OutFull += k
		}
	}
}
