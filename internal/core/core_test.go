package core

import (
	"testing"

	"fifer/internal/cgra"
	"fifer/internal/mem"
	"fifer/internal/queue"
	"fifer/internal/stage"
)

func testConfig(pes int) Config {
	cfg := DefaultConfig()
	cfg.PEs = pes
	cfg.Hier.Clients = pes
	cfg.BackingBytes = 16 << 20
	cfg.MaxCycles = 5_000_000
	return cfg
}

// passDFG is a minimal mapped datapath for synthetic stages.
func passDFG(name string) *cgra.Mapping {
	g := cgra.NewDFG(name)
	v := g.Deq(0)
	g.Enq(0, v)
	m, err := cgra.Place(g, DefaultConfig().Fabric, false)
	if err != nil {
		panic(err)
	}
	return m
}

// passStage forwards tokens from in to out, n tokens max per firing = 1.
func passStage(name string, in stage.InPort, out stage.OutPort) *stage.Stage {
	return &stage.Stage{
		Kernel: stage.KernelFunc{KernelName: name, Fn: func(c *stage.Ctx) stage.Status {
			t, ok := c.In[0].Peek()
			if !ok {
				return stage.NoInput
			}
			if c.Out[0].Space() < 1 {
				return stage.NoOutput
			}
			c.In[0].Pop()
			c.Out[0].Push(t)
			return stage.Fired
		}},
		Mapping: passDFG(name),
		In:      []stage.InPort{in},
		Out:     []stage.OutPort{out},
	}
}

// sinkStage drains tokens and counts them.
func sinkStage(name string, in stage.InPort, count *int) *stage.Stage {
	return &stage.Stage{
		Kernel: stage.KernelFunc{KernelName: name, Fn: func(c *stage.Ctx) stage.Status {
			if _, ok := c.In[0].Pop(); !ok {
				return stage.NoInput
			}
			*count++
			return stage.Fired
		}},
		Mapping: passDFG(name),
		In:      []stage.InPort{in},
	}
}

func TestTemporalPipelineForwardsAllTokens(t *testing.T) {
	sys := NewSystem(testConfig(1))
	pe := sys.PE(0)
	q1 := pe.AllocQueue("q1", 64)
	q2 := pe.AllocQueue("q2", 64)
	got := 0
	pe.AddStage(passStage("fwd", stage.LocalPort{Q: q1}, stage.LocalPort{Q: q2}))
	pe.AddStage(sinkStage("sink", stage.LocalPort{Q: q2}, &got))
	rounds := 0
	refill := func() {
		for j := 0; j < 50; j++ {
			q1.Enq(queue.Data(uint64(rounds*50 + j)))
		}
	}
	refill()
	res, err := sys.Run(ProgramFunc(func(*System) bool {
		rounds++
		if rounds >= 10 {
			return false
		}
		refill()
		return true
	}))
	if err != nil {
		t.Fatal(err)
	}
	if got != 500 {
		t.Fatalf("sink got %d tokens, want 500", got)
	}
	if res.Reconfigs == 0 {
		t.Fatal("temporal pipeline never reconfigured")
	}
	if err := sys.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestStaticModeRejectsSecondStage(t *testing.T) {
	cfg := testConfig(1)
	cfg.Mode = ModeStatic
	sys := NewSystem(cfg)
	pe := sys.PE(0)
	q := pe.AllocQueue("q", 16)
	got := 0
	pe.AddStage(sinkStage("a", stage.LocalPort{Q: q}, &got))
	defer func() {
		if recover() == nil {
			t.Fatal("second stage on a static PE accepted")
		}
	}()
	pe.AddStage(sinkStage("b", stage.LocalPort{Q: q}, &got))
}

func TestCPIStackSumsToCycles(t *testing.T) {
	sys := NewSystem(testConfig(2))
	q := sys.PE(0).AllocQueue("q", 32)
	got := 0
	sys.PE(0).AddStage(sinkStage("sink", stage.LocalPort{Q: q}, &got))
	for i := 0; i < 20; i++ {
		q.Enq(queue.Data(uint64(i)))
	}
	if _, err := sys.Run(ProgramFunc(func(*System) bool { return false })); err != nil {
		t.Fatal(err)
	}
	for _, pe := range sys.PEs {
		if pe.Stack.Total() != sys.Cycle {
			t.Fatalf("pe%d stack %d != cycles %d", pe.ID, pe.Stack.Total(), sys.Cycle)
		}
	}
}

func TestMostWorkPolicyPrefersDeeperQueue(t *testing.T) {
	sys := NewSystem(testConfig(1))
	pe := sys.PE(0)
	qa := pe.AllocQueue("qa", 64)
	qb := pe.AllocQueue("qb", 64)
	gotA, gotB := 0, 0
	pe.AddStage(sinkStage("a", stage.LocalPort{Q: qa}, &gotA))
	pe.AddStage(sinkStage("b", stage.LocalPort{Q: qb}, &gotB))
	qa.Enq(queue.Data(1))
	for i := 0; i < 40; i++ {
		qb.Enq(queue.Data(uint64(i)))
	}
	// First activation must pick b (more work).
	pe.Tick(0)
	if act := pe.ActiveStage(); act == nil || act.Name() != "b" {
		t.Fatalf("scheduler picked %v, want b", pe.ActiveStage())
	}
}

func TestReconfigurationTiming(t *testing.T) {
	// Switching between two stages must cost at least the 12-cycle minimum
	// (10-cycle load + 2-cycle activation) per Sec. 6.
	sys := NewSystem(testConfig(1))
	pe := sys.PE(0)
	qa := pe.AllocQueue("qa", 64)
	qb := pe.AllocQueue("qb", 64)
	gotA, gotB := 0, 0
	pe.AddStage(sinkStage("a", stage.LocalPort{Q: qa}, &gotA))
	pe.AddStage(sinkStage("b", stage.LocalPort{Q: qb}, &gotB))
	for i := 0; i < 8; i++ {
		qa.Enq(queue.Data(0))
		qb.Enq(queue.Data(0))
	}
	if _, err := sys.Run(ProgramFunc(func(*System) bool { return false })); err != nil {
		t.Fatal(err)
	}
	if pe.Reconfigs == 0 {
		t.Fatal("no reconfigurations")
	}
	if mean := pe.MeanReconfigPeriod(); mean < 12 {
		t.Fatalf("mean reconfig period %.1f < 12-cycle minimum", mean)
	}
}

func TestZeroCostReconfigIsFree(t *testing.T) {
	run := func(zero bool) uint64 {
		cfg := testConfig(1)
		cfg.ZeroCostReconfig = zero
		sys := NewSystem(cfg)
		pe := sys.PE(0)
		qa := pe.AllocQueue("qa", 4)
		qb := pe.AllocQueue("qb", 4)
		gotA, gotB := 0, 0
		pe.AddStage(sinkStage("a", stage.LocalPort{Q: qa}, &gotA))
		pe.AddStage(sinkStage("b", stage.LocalPort{Q: qb}, &gotB))
		// Alternate single tokens to force constant switching.
		prog := 0
		_, err := sys.Run(ProgramFunc(func(s *System) bool {
			prog++
			if prog > 32 {
				return false
			}
			qa.Enq(queue.Data(0))
			qb.Enq(queue.Data(0))
			return true
		}))
		if err != nil {
			t.Fatal(err)
		}
		return sys.Cycle
	}
	costly := run(false)
	free := run(true)
	if free >= costly {
		t.Fatalf("zero-cost reconfig (%d cycles) not faster than costly (%d)", free, costly)
	}
}

func TestDoubleBufferingOverlapsDrainAndLoad(t *testing.T) {
	// With deep pipelines (large drain), double buffering should hide the
	// config load; without it, drain and load serialize.
	deepDFG := func(name string) *cgra.Mapping {
		g := cgra.NewDFG(name)
		id := g.Deq(0)
		for i := 0; i < 20; i++ {
			id = g.Add(cgra.OpAdd, 0, id, id)
		}
		g.Enq(0, id)
		m, err := cgra.Place(g, DefaultConfig().Fabric, false)
		if err != nil {
			panic(err)
		}
		return m
	}
	run := func(double bool) float64 {
		cfg := testConfig(1)
		cfg.DoubleBuffered = double
		sys := NewSystem(cfg)
		pe := sys.PE(0)
		qa := pe.AllocQueue("qa", 8)
		qb := pe.AllocQueue("qb", 8)
		gotA, gotB := 0, 0
		sa := sinkStage("a", stage.LocalPort{Q: qa}, &gotA)
		sa.Mapping = deepDFG("a")
		sb := sinkStage("b", stage.LocalPort{Q: qb}, &gotB)
		sb.Mapping = deepDFG("b")
		pe.AddStage(sa)
		pe.AddStage(sb)
		prog := 0
		if _, err := sys.Run(ProgramFunc(func(*System) bool {
			prog++
			if prog > 16 {
				return false
			}
			qa.Enq(queue.Data(0))
			qb.Enq(queue.Data(0))
			return true
		})); err != nil {
			t.Fatal(err)
		}
		return pe.MeanReconfigPeriod()
	}
	with := run(true)
	without := run(false)
	if with >= without {
		t.Fatalf("double buffering did not shorten reconfig: %.1f vs %.1f", with, without)
	}
}

func TestDRMDereference(t *testing.T) {
	sys := NewSystem(testConfig(1))
	pe := sys.PE(0)
	b := sys.Backing
	arr := b.AllocSlice([]uint64{10, 20, 30})
	out := pe.AllocQueue("out", 16)
	d := pe.DRM(0)
	d.Configure(DRMDereference, stage.LocalPort{Q: out})
	for i := 0; i < 3; i++ {
		d.In().Enq(queue.Data(uint64(arr) + uint64(i*mem.WordBytes)))
	}
	for now := uint64(0); now < 2000 && out.Len() < 3; now++ {
		d.Tick(now)
	}
	for i, want := range []uint64{10, 20, 30} {
		tok, ok := out.Deq()
		if !ok || tok.Value != want {
			t.Fatalf("deref %d: got %v %v, want %d (in-order completion)", i, tok, ok, want)
		}
	}
}

func TestDRMScanWithBoundary(t *testing.T) {
	sys := NewSystem(testConfig(1))
	pe := sys.PE(0)
	arr := sys.Backing.AllocSlice([]uint64{7, 8})
	out := pe.AllocQueue("out", 16)
	d := pe.DRM(0)
	d.Configure(DRMScan, stage.LocalPort{Q: out})
	d.SetBoundary(true)
	d.In().Enq(queue.Data(uint64(arr)))
	d.In().Enq(queue.Data(uint64(arr) + 16))
	// Empty range still emits its boundary.
	d.In().Enq(queue.Data(uint64(arr)))
	d.In().Enq(queue.Data(uint64(arr)))
	for now := uint64(0); now < 2000 && out.Len() < 4; now++ {
		d.Tick(now)
	}
	want := []queue.Token{queue.Data(7), queue.Data(8), queue.Ctrl(0), queue.Ctrl(0)}
	for i, w := range want {
		tok, ok := out.Deq()
		if !ok || tok != w {
			t.Fatalf("scan token %d: got %v %v, want %v", i, tok, ok, w)
		}
	}
	if d.Busy() {
		t.Fatal("DRM still busy after drain")
	}
}

func TestDRMCtrlPassThrough(t *testing.T) {
	sys := NewSystem(testConfig(1))
	pe := sys.PE(0)
	arr := sys.Backing.AllocSlice([]uint64{5})
	out := pe.AllocQueue("out", 16)
	d := pe.DRM(0)
	d.Configure(DRMDereference, stage.LocalPort{Q: out})
	d.In().Enq(queue.Data(uint64(arr)))
	d.In().Enq(queue.Ctrl(99))
	for now := uint64(0); now < 2000 && out.Len() < 2; now++ {
		d.Tick(now)
	}
	first, _ := out.Deq()
	second, _ := out.Deq()
	if first.Ctrl || first.Value != 5 || !second.Ctrl || second.Value != 99 {
		t.Fatalf("ctrl ordering broken: %v %v", first, second)
	}
}

func TestRunDetectsDeadlockViaMaxCycles(t *testing.T) {
	cfg := testConfig(1)
	cfg.MaxCycles = 1000
	sys := NewSystem(cfg)
	pe := sys.PE(0)
	q := pe.AllocQueue("q", 4)
	q.Enq(queue.Data(1))
	// A stage that is never able to fire but holds state-work forever.
	pe.AddStage(&stage.Stage{
		Kernel: stage.KernelFunc{KernelName: "stuck", Fn: func(*stage.Ctx) stage.Status {
			return stage.NoOutput
		}},
		Mapping:   passDFG("stuck"),
		In:        []stage.InPort{stage.LocalPort{Q: q}},
		StateWork: func() int { return 1 },
	})
	if _, err := sys.Run(ProgramFunc(func(*System) bool { return false })); err == nil {
		t.Fatal("deadlocked run completed")
	}
}

func TestCouplesLoadStallsFabric(t *testing.T) {
	sys := NewSystem(testConfig(1))
	pe := sys.PE(0)
	b := sys.Backing
	// A large array so every strided load misses.
	arr := b.AllocWords(1 << 16)
	q := pe.AllocQueue("q", 64)
	n := 0
	pe.AddStage(&stage.Stage{
		Kernel: stage.KernelFunc{KernelName: "loads", Fn: func(c *stage.Ctx) stage.Status {
			t, ok := c.In[0].Pop()
			if !ok {
				return stage.NoInput
			}
			c.Load(arr + mem.Addr(t.Value*4096))
			n++
			return stage.Fired
		}},
		Mapping: passDFG("loads"),
		In:      []stage.InPort{stage.LocalPort{Q: q}},
	})
	for i := 0; i < 32; i++ {
		q.Enq(queue.Data(uint64(i)))
	}
	if _, err := sys.Run(ProgramFunc(func(*System) bool { return false })); err != nil {
		t.Fatal(err)
	}
	if pe.Stack.Stall == 0 {
		t.Fatal("cold misses produced no fabric stalls")
	}
	if n != 32 {
		t.Fatalf("fired %d, want 32", n)
	}
}

func TestResidenceStats(t *testing.T) {
	sys := NewSystem(testConfig(1))
	pe := sys.PE(0)
	qa := pe.AllocQueue("qa", 64)
	qb := pe.AllocQueue("qb", 64)
	gotA, gotB := 0, 0
	pe.AddStage(sinkStage("a", stage.LocalPort{Q: qa}, &gotA))
	pe.AddStage(sinkStage("b", stage.LocalPort{Q: qb}, &gotB))
	for i := 0; i < 30; i++ {
		qa.Enq(queue.Data(0))
		qb.Enq(queue.Data(0))
	}
	res, err := sys.Run(ProgramFunc(func(*System) bool { return false }))
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanResidence <= res.MeanReconfig {
		t.Fatalf("residence %.1f should exceed reconfig period %.1f (residence includes it)",
			res.MeanResidence, res.MeanReconfig)
	}
}

func TestDRMStride(t *testing.T) {
	sys := NewSystem(testConfig(1))
	pe := sys.PE(0)
	// Array of 3-word "structs"; fetch the first field of each.
	arr := sys.Backing.AllocSlice([]uint64{10, 0, 0, 20, 0, 0, 30, 0, 0})
	out := pe.AllocQueue("out", 16)
	d := pe.DRM(0)
	d.Configure(DRMStride, stage.LocalPort{Q: out})
	d.SetStride(3 * mem.WordBytes)
	d.SetBoundary(true)
	d.In().Enq(queue.Data(uint64(arr)))
	d.In().Enq(queue.Data(3)) // count
	for now := uint64(0); now < 2000 && out.Len() < 4; now++ {
		d.Tick(now)
	}
	want := []queue.Token{queue.Data(10), queue.Data(20), queue.Data(30), queue.Ctrl(0)}
	for i, w := range want {
		tok, ok := out.Deq()
		if !ok || tok != w {
			t.Fatalf("stride token %d: got %v %v, want %v", i, tok, ok, w)
		}
	}
	if d.Busy() {
		t.Fatal("strided DRM still busy")
	}
}
