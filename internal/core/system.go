package core

import (
	"errors"
	"fmt"

	"fifer/internal/mem"
	"fifer/internal/queue"
	"fifer/internal/trace"
)

// ErrMaxCycles reports that a run elapsed Cfg.MaxCycles before the program
// quiesced (deadlock or runaway program). Run's error wraps it, so callers
// up the stack (including the bench harness) can detect budget exhaustion
// with errors.Is even through their own wrapping.
var ErrMaxCycles = errors.New("core: exceeded MaxCycles")

// ErrDeadlock reports that the progress watchdog saw no component of the
// system make progress for Cfg.WatchdogCycles — a deadlock caught long
// before the MaxCycles budget would have burned down. The returned error is
// a *DeadlockError; errors.As exposes the structured DeadlockReport.
var ErrDeadlock = errors.New("core: simulation deadlocked (watchdog)")

// ErrInvariant reports that the live invariant audit (Cfg.AuditCycles)
// found the simulation in an internally inconsistent state, or that the
// queue layer raised a typed corruption that Run recovered. The wrapped
// message names the failing invariant and component.
var ErrInvariant = errors.New("core: simulation invariant violated")

// System is a complete CGRA-based machine: PEs, the shared cache hierarchy,
// the functional backing store, and the control core's run loop (Fig. 4 /
// Fig. 7). Whether it behaves as Fifer or as the static-pipeline baseline is
// set by Config.Mode.
type System struct {
	Cfg     Config
	Backing *mem.Backing
	Hier    *mem.Hierarchy
	PEs     []*PE
	Cycle   uint64

	arbiters []*queue.Arbiter
	// arbConsumers records, parallel to arbiters, the consumer PE of each
	// inter-PE queue; the sharded kernel maps it to the consumer's shard when
	// installing its exchange hooks (shard.go).
	arbConsumers []int

	// Sharded-kernel state (shard.go); nil/zero for the sequential kernel.
	shards   []*shard
	peShard  []int // PE id -> shard index
	curShard int   // shard currently ticking, -1 between engagements
	curPE    int   // PE currently ticking inside an engagement, -1 otherwise
	// crossTouch is set by the exchange hooks whenever they mark a shard
	// other than the one currently ticking; a batched engagement (shard.go)
	// must end its autonomous run at the cycle that touched another shard.
	crossTouch bool
	// sweepFired: some stage fired during the current sweep cycle; every
	// poll PE (exotic ports, see PE.poll) must then tick no later than the
	// next cycle. hasPoll caches whether any poll PE exists.
	sweepFired bool
	hasPoll    bool

	// hooks run at the top of every cycle, before the PEs tick. They exist
	// for observers and fault injectors (internal/faults); Run never skips
	// them, and an empty list costs one length check per cycle.
	hooks []func(s *System, now uint64)

	// tracer caches Cfg.Tracer for the nil-checked emission sites; the
	// metrics fields hold the sampler's per-PE CPI-stack snapshots (see
	// observe.go). All of them are nil/zero — and cost nothing — when
	// observability is off.
	tracer     trace.Tracer
	lastStacks []CPIStack
	lastSample uint64
}

// NewSystem builds a system from cfg, panicking on an invalid config. It
// keeps the historical convenience of silently sizing Hier.Clients to PEs;
// use NewSystemChecked to get validation errors instead of panics.
func NewSystem(cfg Config) *System {
	if cfg.Hier.Clients != cfg.PEs {
		cfg.Hier.Clients = cfg.PEs
	}
	s, err := NewSystemChecked(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// NewSystemChecked builds a system from cfg after validating it, returning
// an error (rather than a panic or a silently mis-sized machine) for
// non-positive cycle budgets, queue or backing sizes, and Clients/PEs
// mismatches. A zero Hier.Clients is sized to PEs.
func NewSystemChecked(cfg Config) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Hier.Clients == 0 {
		cfg.Hier.Clients = cfg.PEs
	}
	s := &System{
		Cfg:     cfg,
		Backing: mem.NewBacking(cfg.BackingBytes),
		Hier:    mem.NewHierarchy(cfg.Hier),
		tracer:  cfg.Tracer,
	}
	// PEs live in one contiguous backing array so the run loop's per-cycle
	// sweep walks sequential memory instead of pointer-chasing individually
	// boxed PEs; s.PEs keeps the pointer-slice shape the rest of the code
	// (and the shard partitioning) works in.
	pes := make([]PE, cfg.PEs)
	s.PEs = make([]*PE, cfg.PEs)
	for i := range pes {
		pes[i].init(i, s)
		s.PEs[i] = &pes[i]
	}
	return s, nil
}

// OnCycle registers f to run at the start of every simulated cycle. It is
// the seam fault injectors use to corrupt a live system at a chosen cycle.
func (s *System) OnCycle(f func(s *System, now uint64)) {
	s.hooks = append(s.hooks, f)
}

// PE returns processing element i.
func (s *System) PE(i int) *PE { return s.PEs[i] }

// InterPEQueue allocates a credited inter-PE queue: the buffer lives in the
// consumer PE's queue memory; producers get credit ports (Sec. 5.6).
func (s *System) InterPEQueue(consumer int, name string, capTokens, producers int) *queue.Arbiter {
	q := s.PEs[consumer].AllocQueue(name, capTokens)
	a := queue.NewArbiter(q, producers)
	if h := s.creditTracer(consumer, q); h != nil {
		a.SetCreditHook(h)
	}
	s.arbiters = append(s.arbiters, a)
	s.arbConsumers = append(s.arbConsumers, consumer)
	return a
}

// creditTracer builds the credit-movement trace hook for an inter-PE queue,
// or nil when tracing is off. The sequential kernel installs it directly;
// the sharded kernel chains it behind its own exchange bookkeeping so traced
// runs emit the identical event stream (shard.go).
func (s *System) creditTracer(consumer int, q *queue.Queue) func(port int, granted bool) {
	t := s.tracer
	if t == nil {
		return nil
	}
	return func(port int, granted bool) {
		k := trace.KindCreditReturn
		if granted {
			k = trace.KindCreditGrant
		}
		t.Emit(trace.Event{Cycle: s.Cycle, PE: consumer, Kind: k, Name: q.Name(), Arg: uint64(port)})
	}
}

// Arbiters returns all inter-PE queue arbiters (for invariant checks).
func (s *System) Arbiters() []*queue.Arbiter { return s.arbiters }

// Program is the control-core view of an application: it set up the
// pipelines before Run and is consulted at quiescence points. Returning
// true means new work was injected (e.g. the next BFS round); false means
// the program is complete.
type Program interface {
	Quiesced(sys *System) bool
}

// ProgramFunc adapts a function to the Program interface.
type ProgramFunc func(sys *System) bool

// Quiesced implements Program.
func (f ProgramFunc) Quiesced(sys *System) bool { return f(sys) }

// Result summarizes a run.
type Result struct {
	Cycles        uint64
	Stacks        []CPIStack // per PE
	Total         CPIStack   // summed over PEs
	Firings       uint64     // total datapath firings
	Rounds        uint64     // times the program injected new work
	MeanResidence float64
	MeanReconfig  float64
	Reconfigs     uint64

	// PEActivations is each PE's completed stage activations — the counter
	// the trace invariant suite reconciles per-PE stage-switch events
	// against. omitempty keeps journals written before this field existed
	// verifying (their records re-marshal without it, so CRCs still match).
	PEActivations []uint64 `json:"PEActivations,omitempty"`
}

// Run drives the system until the program reports completion. It fails with
// ErrMaxCycles when Cfg.MaxCycles elapse first, with ErrDeadlock when the
// progress watchdog sees no progress for Cfg.WatchdogCycles, with
// ErrInvariant when the live audit finds inconsistent state (including
// queue-layer corruption panics, which are recovered here so a corrupted
// simulation fails as one job instead of crashing the process), and with
// ErrCanceled when Cfg.Done is closed (checked before the first cycle and
// at watchdog-checkpoint granularity thereafter).
//
// Cfg.Shards > 1 selects the sharded kernel (shard.go), whose results are
// bit-identical to the sequential kernel's for every surface; 0 or 1 runs
// the sequential loop below.
func (s *System) Run(prog Program) (res Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			c, ok := r.(*queue.Corruption)
			if !ok {
				panic(r)
			}
			err = fmt.Errorf("%w: corruption: %s: %s\n%s",
				ErrInvariant, c.Component, c.Detail, s.BlockedSummary(dumpExcerptLines))
		}
	}()
	if s.Cfg.Shards > 1 {
		return s.runSharded(prog)
	}
	return s.runSeq(prog)
}

// runSeq is the sequential kernel: one goroutine ticks every PE in
// ascending id order each cycle, with the event-horizon fast-forward of
// horizon.go batching provably inert windows.
func (s *System) runSeq(prog Program) (res Result, err error) {
	// The watchdog compares monotonic progress counters at checkpoints half
	// a window apart: two equal consecutive snapshots prove zero progress
	// over at least half a window, and the deadlock is reported within one
	// full window of the last real progress.
	var wdInterval uint64
	if s.Cfg.WatchdogCycles > 0 {
		if wdInterval = s.Cfg.WatchdogCycles / 2; wdInterval == 0 {
			wdInterval = 1
		}
	}
	// Cancellation rides the watchdog's checkpoint cadence so it adds no
	// per-cycle work of its own; with the watchdog disabled it falls back
	// to a fixed polling interval.
	var cancelEvery uint64
	if s.Cfg.Done != nil {
		if cancelEvery = wdInterval; cancelEvery == 0 {
			cancelEvery = cancelInterval
		}
		select {
		case <-s.Cfg.Done:
			return res, s.canceledError()
		default:
		}
	}
	// Metrics sampling rides its own period; zero Cfg.Metrics keeps
	// sampleEvery at 0, reducing the per-cycle cost to one comparison.
	var sampleEvery uint64
	if s.Cfg.Metrics != nil {
		if sampleEvery = s.Cfg.MetricsCycles; sampleEvery == 0 {
			sampleEvery = DefaultMetricsCycles
		}
		if s.lastStacks == nil {
			s.lastStacks = make([]CPIStack, len(s.PEs))
		}
	}
	lastSig := s.progressSig()
	lastProgress := s.Cycle
	// checks runs the per-cycle observation points at the current (already
	// incremented) cycle, in the order the loop has always run them:
	// cancellation poll, metrics sample, watchdog checkpoint, invariant
	// audit, cycle budget. The fast-forward path calls it too, after landing
	// the clock exactly on the next boundary, so every observation happens
	// at its original cycle against the same state in both loops.
	checks := func() (stop bool, err error) {
		if cancelEvery > 0 && s.Cycle%cancelEvery == 0 {
			select {
			case <-s.Cfg.Done:
				return true, s.canceledError()
			default:
			}
		}
		if sampleEvery > 0 && s.Cycle%sampleEvery == 0 {
			s.sampleMetrics()
		}
		if wdInterval > 0 && s.Cycle%wdInterval == 0 {
			sig := s.progressSig()
			if s.tracer != nil {
				s.tracer.Emit(trace.Event{Cycle: s.Cycle, PE: -1,
					Kind: trace.KindCheckpoint, Name: "watchdog", Arg: sig.firings})
			}
			if sig == lastSig {
				return true, s.deadlockError(lastProgress)
			}
			lastSig, lastProgress = sig, s.Cycle
		}
		if s.Cfg.AuditCycles > 0 && s.Cycle%s.Cfg.AuditCycles == 0 {
			if aerr := s.AuditLive(); aerr != nil {
				return true, aerr
			}
		}
		if s.Cycle >= s.Cfg.MaxCycles {
			return true, fmt.Errorf("%w: MaxCycles=%d (deadlock or runaway program)\n%s",
				ErrMaxCycles, s.Cfg.MaxCycles, s.BlockedSummary(dumpExcerptLines))
		}
		return false, nil
	}
	for {
		quiet := true
		if len(s.hooks) > 0 {
			for _, f := range s.hooks {
				f(s, s.Cycle)
			}
		}
		sysWake := horizonNever
		for _, pe := range s.PEs {
			pe.Tick(s.Cycle)
			if pe.wake < sysWake {
				sysWake = pe.wake
			}
		}
		if s.Cycle%64 == 0 {
			for _, pe := range s.PEs {
				pe.QMem.Sample()
			}
		}
		for _, pe := range s.PEs {
			if pe.Busy(s.Cycle) {
				quiet = false
				break
			}
		}
		s.Cycle++
		if quiet {
			if !prog.Quiesced(s) {
				break
			}
			res.Rounds++
		}
		if stop, cerr := checks(); stop {
			return res, cerr
		}
		// Event-horizon fast-forward (horizon.go): when every PE just proved
		// it cannot act before sysWake, batch-execute the inert cycles up to
		// the earlier of sysWake and the next observation boundary, then run
		// that boundary's checks at its original cycle. Skipped only when
		// hooks are registered (fault injectors mutate state mid-window),
		// when the system just quiesced (the program may have injected new
		// work the stale wakes don't see), or with the NoFastForward oracle.
		if !quiet && sysWake > s.Cycle && !s.Cfg.NoFastForward && len(s.hooks) == 0 {
			w := sysWake
			clampMult := func(period uint64) {
				if period > 0 {
					if next := (s.Cycle/period + 1) * period; next < w {
						w = next
					}
				}
			}
			clampMult(cancelEvery)
			clampMult(sampleEvery)
			clampMult(wdInterval)
			clampMult(s.Cfg.AuditCycles)
			if s.Cfg.MaxCycles < w {
				w = s.Cfg.MaxCycles
			}
			s.advanceInert(w)
			if stop, cerr := checks(); stop {
				return res, cerr
			}
		}
	}
	s.finishRun(&res)
	return res, nil
}

// finishRun flushes the final partial metrics window and aggregates per-PE
// statistics into res. Both kernels end a successful run here, against
// identical machine state.
func (s *System) finishRun(res *Result) {
	res.Cycles = s.Cycle
	// Flush the final partial metrics window so per-PE deltas sum to the
	// run's cycle count exactly (skipped when the last period landed on the
	// final cycle — the deltas would all be zero).
	if s.Cfg.Metrics != nil && s.Cycle != s.lastSample {
		s.sampleMetrics()
	}
	var sumRes, sumRec, nAct, nRec uint64
	for _, pe := range s.PEs {
		res.Stacks = append(res.Stacks, pe.Stack)
		res.Total.Add(pe.Stack)
		res.PEActivations = append(res.PEActivations, pe.Activations)
		for _, st := range pe.stages {
			res.Firings += st.Firings
		}
		sumRes += pe.SumResidence
		sumRec += pe.SumReconfig
		if pe.Activations > 1 {
			nAct += pe.Activations - 1
		}
		nRec += pe.Reconfigs
	}
	if nAct > 0 {
		res.MeanResidence = float64(sumRes) / float64(nAct)
	}
	if nRec > 0 {
		res.MeanReconfig = float64(sumRec) / float64(nRec)
	}
	res.Reconfigs = nRec
}

// MeanQueueOccupancy returns the average sampled occupancy (tokens) across
// all queue-memory-resident queues — the decoupling actually in use, which
// Sec. 8.3 relates to residence times.
func (s *System) MeanQueueOccupancy() float64 {
	sum, n := 0.0, 0
	for _, pe := range s.PEs {
		for _, q := range pe.QMem.Queues() {
			sum += q.MeanOccupancy()
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// CheckInvariants verifies conservation properties after a run; it is used
// by integration tests. It returns an error describing the first violation.
func (s *System) CheckInvariants() error {
	for _, pe := range s.PEs {
		total := pe.Stack.Total()
		if total != s.Cycle {
			return fmt.Errorf("pe%d: CPI stack sums to %d, want %d cycles", pe.ID, total, s.Cycle)
		}
		if got := pe.QMem.Buffered(); got != 0 {
			return fmt.Errorf("pe%d: %d tokens still buffered after completion", pe.ID, got)
		}
		for _, d := range pe.DRMs {
			if d.Busy() {
				return fmt.Errorf("%s: still busy after completion", d.Name())
			}
		}
	}
	for _, a := range s.arbiters {
		if got, want := a.TotalCredits(), a.Queue().Cap(); got != want {
			return fmt.Errorf("arbiter %q: %d credits outstanding, want %d", a.Queue().Name(), got, want)
		}
	}
	return nil
}
