package core

import (
	"errors"
	"fmt"

	"fifer/internal/mem"
	"fifer/internal/queue"
)

// ErrMaxCycles reports that a run elapsed Cfg.MaxCycles before the program
// quiesced (deadlock or runaway program). Run's error wraps it, so callers
// up the stack (including the bench harness) can detect budget exhaustion
// with errors.Is even through their own wrapping.
var ErrMaxCycles = errors.New("core: exceeded MaxCycles")

// System is a complete CGRA-based machine: PEs, the shared cache hierarchy,
// the functional backing store, and the control core's run loop (Fig. 4 /
// Fig. 7). Whether it behaves as Fifer or as the static-pipeline baseline is
// set by Config.Mode.
type System struct {
	Cfg     Config
	Backing *mem.Backing
	Hier    *mem.Hierarchy
	PEs     []*PE
	Cycle   uint64

	arbiters []*queue.Arbiter
}

// NewSystem builds a system from cfg.
func NewSystem(cfg Config) *System {
	if cfg.PEs <= 0 {
		panic("core: config needs at least one PE")
	}
	if cfg.Hier.Clients != cfg.PEs {
		cfg.Hier.Clients = cfg.PEs
	}
	s := &System{
		Cfg:     cfg,
		Backing: mem.NewBacking(cfg.BackingBytes),
		Hier:    mem.NewHierarchy(cfg.Hier),
	}
	for i := 0; i < cfg.PEs; i++ {
		s.PEs = append(s.PEs, newPE(i, s))
	}
	return s
}

// PE returns processing element i.
func (s *System) PE(i int) *PE { return s.PEs[i] }

// InterPEQueue allocates a credited inter-PE queue: the buffer lives in the
// consumer PE's queue memory; producers get credit ports (Sec. 5.6).
func (s *System) InterPEQueue(consumer int, name string, capTokens, producers int) *queue.Arbiter {
	q := s.PEs[consumer].AllocQueue(name, capTokens)
	a := queue.NewArbiter(q, producers)
	s.arbiters = append(s.arbiters, a)
	return a
}

// Arbiters returns all inter-PE queue arbiters (for invariant checks).
func (s *System) Arbiters() []*queue.Arbiter { return s.arbiters }

// Program is the control-core view of an application: it set up the
// pipelines before Run and is consulted at quiescence points. Returning
// true means new work was injected (e.g. the next BFS round); false means
// the program is complete.
type Program interface {
	Quiesced(sys *System) bool
}

// ProgramFunc adapts a function to the Program interface.
type ProgramFunc func(sys *System) bool

// Quiesced implements Program.
func (f ProgramFunc) Quiesced(sys *System) bool { return f(sys) }

// Result summarizes a run.
type Result struct {
	Cycles        uint64
	Stacks        []CPIStack // per PE
	Total         CPIStack   // summed over PEs
	Firings       uint64     // total datapath firings
	Rounds        uint64     // times the program injected new work
	MeanResidence float64
	MeanReconfig  float64
	Reconfigs     uint64
}

// Run drives the system until the program reports completion. It returns an
// error if Cfg.MaxCycles elapse first (deadlock or runaway program).
func (s *System) Run(prog Program) (Result, error) {
	var res Result
	for {
		quiet := true
		for _, pe := range s.PEs {
			pe.Tick(s.Cycle)
		}
		if s.Cycle%64 == 0 {
			for _, pe := range s.PEs {
				pe.QMem.Sample()
			}
		}
		for _, pe := range s.PEs {
			if pe.Busy(s.Cycle) {
				quiet = false
				break
			}
		}
		s.Cycle++
		if quiet {
			if !prog.Quiesced(s) {
				break
			}
			res.Rounds++
		}
		if s.Cycle >= s.Cfg.MaxCycles {
			return res, fmt.Errorf("%w: MaxCycles=%d (deadlock or runaway program)", ErrMaxCycles, s.Cfg.MaxCycles)
		}
	}
	res.Cycles = s.Cycle
	var sumRes, sumRec, nAct, nRec uint64
	for _, pe := range s.PEs {
		res.Stacks = append(res.Stacks, pe.Stack)
		res.Total.Add(pe.Stack)
		for _, st := range pe.stages {
			res.Firings += st.Firings
		}
		sumRes += pe.SumResidence
		sumRec += pe.SumReconfig
		if pe.Activations > 1 {
			nAct += pe.Activations - 1
		}
		nRec += pe.Reconfigs
	}
	if nAct > 0 {
		res.MeanResidence = float64(sumRes) / float64(nAct)
	}
	if nRec > 0 {
		res.MeanReconfig = float64(sumRec) / float64(nRec)
	}
	res.Reconfigs = nRec
	return res, nil
}

// MeanQueueOccupancy returns the average sampled occupancy (tokens) across
// all queue-memory-resident queues — the decoupling actually in use, which
// Sec. 8.3 relates to residence times.
func (s *System) MeanQueueOccupancy() float64 {
	sum, n := 0.0, 0
	for _, pe := range s.PEs {
		for _, q := range pe.QMem.Queues() {
			sum += q.MeanOccupancy()
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// CheckInvariants verifies conservation properties after a run; it is used
// by integration tests. It returns an error describing the first violation.
func (s *System) CheckInvariants() error {
	for _, pe := range s.PEs {
		total := pe.Stack.Total()
		if total != s.Cycle {
			return fmt.Errorf("pe%d: CPI stack sums to %d, want %d cycles", pe.ID, total, s.Cycle)
		}
		if got := pe.QMem.Buffered(); got != 0 {
			return fmt.Errorf("pe%d: %d tokens still buffered after completion", pe.ID, got)
		}
		for _, d := range pe.DRMs {
			if d.Busy() {
				return fmt.Errorf("%s: still busy after completion", d.Name())
			}
		}
	}
	for _, a := range s.arbiters {
		if got, want := a.TotalCredits(), a.Queue().Cap(); got != want {
			return fmt.Errorf("arbiter %q: %d credits outstanding, want %d", a.Queue().Name(), got, want)
		}
	}
	return nil
}
