package core

import (
	"errors"
	"fmt"

	"fifer/internal/cgra"
	"fifer/internal/mem"
	"fifer/internal/trace"
)

// ErrBadShards reports an unusable Config.Shards value: negative, or more
// shards than PEs. Validate wraps it so callers (the fiferbench flag layer,
// tests) can detect the class with errors.Is.
var ErrBadShards = errors.New("core: invalid shard count")

// Mode selects between the two CGRA-based systems the paper evaluates.
type Mode int

const (
	// ModeFifer: dynamic temporal pipelining — stages time-multiplexed per
	// PE under scheduler control (Fig. 11b).
	ModeFifer Mode = iota
	// ModeStatic: static spatial pipeline — each stage pinned to one PE for
	// the whole run; no scheduler (Fig. 11a).
	ModeStatic
)

func (m Mode) String() string {
	if m == ModeStatic {
		return "static"
	}
	return "fifer"
}

// Policy selects the reconfiguration scheduling policy (Sec. 5.2).
type Policy int

const (
	// PolicyMostWork: on block, switch to the unblocked stage with the most
	// input work — the paper's policy.
	PolicyMostWork Policy = iota
	// PolicyRoundRobin: on block, switch to the next unblocked stage in
	// order — an ablation the paper reports works worse.
	PolicyRoundRobin
)

func (p Policy) String() string {
	if p == PolicyRoundRobin {
		return "round-robin"
	}
	return "most-work"
}

// Config holds all architectural parameters of a CGRA-based system
// (Table 2 plus the Fifer-specific mechanisms of Sec. 5).
type Config struct {
	PEs            int                 // number of processing elements (16)
	Fabric         cgra.FabricConfig   // per-PE reconfigurable array
	QueueMemBytes  int                 // per-PE queue SRAM (16 KB)
	DRMsPerPE      int                 // decoupled reference machines per PE (4)
	DRMOutstanding int                 // max in-flight accesses per DRM
	DRMIssueWidth  int                 // accesses launched per DRM per cycle
	Hier           mem.HierarchyConfig // cache hierarchy (Table 2)
	BackingBytes   int                 // simulated DRAM capacity

	Mode             Mode
	SchedPolicy      Policy
	DoubleBuffered   bool // double-buffered configuration cells (Sec. 5.1)
	ZeroCostReconfig bool // idealized free reconfiguration (Sec. 8.3 ablation)
	SIMDReplication  bool // replicate small datapaths to fill the fabric (Sec. 5.6)

	MaxCycles uint64 // safety limit; Run fails beyond this

	// Shards partitions the PEs into this many contiguous groups, each ticked
	// by its own goroutine under the deterministic epoch-barrier protocol of
	// shard.go (DESIGN.md §11). Results are bit-identical to the sequential
	// kernel for every surface — Result, traces, metrics, goldens, journal
	// bytes — which the shard-invariance differential suite pins. 0 or 1
	// selects the sequential kernel (the always-available oracle); values
	// above PEs are rejected by Validate with ErrBadShards.
	Shards int

	// NoFastForward disables the event-horizon fast-forward (horizon.go) and
	// makes Run tick every cycle naively. Fast-forward produces bit-identical
	// results — the differential suite holds every run surface (Result,
	// goldens, journal CRCs, metrics, traces) equal between the two loops —
	// so this exists as the test oracle and as an escape hatch, not a mode
	// anyone should need.
	NoFastForward bool

	// WatchdogCycles is the progress watchdog's window: if no component of
	// the system (datapath firings, queue traffic, memory accesses,
	// reconfiguration completions) makes progress for this many cycles, Run
	// fails fast with ErrDeadlock and a structured DeadlockReport instead of
	// burning the rest of the MaxCycles budget. 0 disables the watchdog.
	// The watchdog only observes monotonic counters; it never perturbs the
	// simulation, so results are identical with it on or off.
	WatchdogCycles uint64

	// AuditCycles is the live invariant audit's period: every AuditCycles
	// cycles Run validates credit conservation, queue occupancy bounds,
	// queue-SRAM byte accounting, and DRM inflight accounting, failing with
	// ErrInvariant on the first violation. 0 disables the audit. Like the
	// watchdog it is read-only and cannot change simulation results.
	AuditCycles uint64

	// Done, when non-nil, is the cooperative cancellation hook: Run polls
	// it at watchdog-checkpoint granularity (half the watchdog window, or
	// every cancelInterval cycles when the watchdog is disabled) and stops
	// with ErrCanceled — carrying the cycle count and a BlockedSummary
	// excerpt — once the channel is closed. The hook only ends the run
	// early; it never perturbs the cycles that did execute, so results are
	// bit-identical whether Done is nil or non-nil-but-never-closed, and a
	// nil Done costs a single predictable branch per checkpoint.
	Done <-chan struct{}

	// Tracer, when non-nil, receives a typed trace.Event at every
	// observable simulation event: stage switches, reconfiguration
	// begin/end, queue full/ready stall edges, DRM issues and responses,
	// inter-PE credit grants and returns, and watchdog checkpoints. The
	// tracer only observes value types the simulation already computes, so
	// results are bit-identical with it attached or nil; a nil Tracer costs
	// one predictable branch per potential event and zero allocations on
	// the hot path (pinned by a testing.AllocsPerRun benchmark).
	Tracer trace.Tracer

	// Metrics, when non-nil, receives one trace.MetricsRow per PE every
	// MetricsCycles cycles (DefaultMetricsCycles when zero) plus one final
	// partial-window sample at completion, so every PE's deltas sum to the
	// run's cycle count exactly. Like Tracer it is read-only.
	Metrics       trace.MetricsSink
	MetricsCycles uint64
}

// DefaultMetricsCycles is the metrics sample period used when Config.Metrics
// is set but MetricsCycles is zero.
const DefaultMetricsCycles = 4096

// DefaultConfig returns the paper's 16-PE Fifer system.
func DefaultConfig() Config {
	pes := 16
	return Config{
		PEs:             pes,
		Fabric:          cgra.DefaultFabric(),
		QueueMemBytes:   16 << 10,
		DRMsPerPE:       4,
		DRMOutstanding:  16,
		DRMIssueWidth:   4,
		Hier:            mem.DefaultPEHierarchy(pes),
		BackingBytes:    1 << 30,
		Mode:            ModeFifer,
		SchedPolicy:     PolicyMostWork,
		DoubleBuffered:  true,
		SIMDReplication: true,
		MaxCycles:       2_000_000_000,
		WatchdogCycles:  1_000_000,
		AuditCycles:     1024,
	}
}

// StaticConfig returns the baseline static-spatial-pipeline system: the same
// hardware without the scheduler (it retains DRMs, per Sec. 7.1).
func StaticConfig() Config {
	c := DefaultConfig()
	c.Mode = ModeStatic
	return c
}

// WithQueueScale returns a copy of c with the per-PE queue memory scaled by
// factor (Fig. 16's sweep: 0.25× to 4× of 16 KB).
func (c Config) WithQueueScale(factor float64) Config {
	c.QueueMemBytes = int(float64(c.QueueMemBytes) * factor)
	return c
}

// Validate reports the first structural problem that would make a system
// built from c misbehave in a hard-to-diagnose way. A zero Hier.Clients is
// not an error — NewSystemChecked fixes it up to PEs — but any other
// mismatch is rejected rather than silently overridden.
func (c *Config) Validate() error {
	switch {
	case c.PEs <= 0:
		return fmt.Errorf("core: config needs at least one PE (PEs=%d)", c.PEs)
	case c.MaxCycles == 0:
		return fmt.Errorf("core: config needs a positive MaxCycles cycle budget")
	case c.QueueMemBytes <= 0:
		return fmt.Errorf("core: config needs positive per-PE queue memory (QueueMemBytes=%d)", c.QueueMemBytes)
	case c.DRMsPerPE < 0:
		return fmt.Errorf("core: negative DRMsPerPE %d", c.DRMsPerPE)
	case c.DRMsPerPE > 0 && c.DRMOutstanding <= 0:
		return fmt.Errorf("core: config needs positive DRMOutstanding (got %d with %d DRMs/PE)",
			c.DRMOutstanding, c.DRMsPerPE)
	case c.BackingBytes <= 0:
		return fmt.Errorf("core: config needs a positive BackingBytes store (got %d)", c.BackingBytes)
	case c.Hier.Clients != 0 && c.Hier.Clients != c.PEs:
		return fmt.Errorf("core: Hier.Clients=%d does not match PEs=%d (leave it 0 to size automatically)",
			c.Hier.Clients, c.PEs)
	case c.Shards < 0:
		return fmt.Errorf("%w: Shards=%d is negative (0 or 1 = sequential kernel)", ErrBadShards, c.Shards)
	case c.Shards > c.PEs:
		return fmt.Errorf("%w: Shards=%d exceeds PEs=%d (each shard needs at least one PE)",
			ErrBadShards, c.Shards, c.PEs)
	}
	return nil
}
