package core

import (
	"fmt"
	"strings"
)

// Dump renders the live state of every PE — active stage, queue occupancies,
// DRM state — for deadlock diagnosis.
func (s *System) Dump() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cycle %d\n", s.Cycle)
	for _, pe := range s.PEs {
		act := "-"
		if st := pe.ActiveStage(); st != nil {
			act = st.Name()
		}
		fmt.Fprintf(&b, "pe%d active=%s reconfigUntil=%d stallUntil=%d pending=%d stack=%+v\n",
			pe.ID, act, pe.reconfigUntil, pe.stallUntil, pe.pending, pe.Stack)
		for _, st := range pe.stages {
			fmt.Fprintf(&b, "  stage %s work=%d ready=%v outBlocked=%v", st.Name(), st.InputWork(), st.Ready(), st.OutputsBlocked())
			if st.StateWork != nil {
				fmt.Fprintf(&b, " stateWork=%d", st.StateWork())
			}
			fmt.Fprintln(&b)
		}
		for _, q := range pe.QMem.Queues() {
			if q.Len() > 0 {
				fmt.Fprintf(&b, "  queue %s len=%d/%d\n", q.Name(), q.Len(), q.Cap())
			}
		}
		for _, d := range pe.DRMs {
			if d.Busy() {
				fmt.Fprintf(&b, "  drm %s mode=%v busy in=%d inflight=%d\n", d.Name(), d.Mode(), d.In().Len(), len(d.inflight))
			}
		}
	}
	return b.String()
}
