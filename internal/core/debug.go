package core

import (
	"fmt"
	"strings"

	"fifer/internal/stage"
)

// dumpExcerptLines bounds the state-dump excerpt embedded in error messages
// (deadlock reports, MaxCycles exhaustion, recovered corruption) so a
// 16-PE system's failure stays readable in a test log or bench report.
const dumpExcerptLines = 24

// portName names the queue behind a stage port, or "?" for anonymous ports.
func portName(p any) string { return stage.PortName(p) }

// truncateLines keeps the first n lines of s, annotating elision.
func truncateLines(s string, n int) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) <= n {
		return strings.Join(lines, "\n")
	}
	return strings.Join(lines[:n], "\n") + fmt.Sprintf("\n... (%d more lines elided)", len(lines)-n)
}

// BlockedSummary renders a compact diagnosis of why the system is not
// making progress: the wait-for edges (who is stuck on what) followed by a
// truncated state dump. It is embedded in the ErrMaxCycles and corruption
// error messages so even a budget-exhaustion failure is actionable without
// re-running the simulation.
func (s *System) BlockedSummary(maxLines int) string {
	var b strings.Builder
	edges := s.WaitFor()
	shown := len(edges)
	if shown > maxLines/2 {
		shown = maxLines / 2
	}
	for _, e := range edges[:shown] {
		fmt.Fprintf(&b, "wait-for: %s\n", e)
	}
	if elided := len(edges) - shown; elided > 0 {
		fmt.Fprintf(&b, "... (%d more wait-for edges elided)\n", elided)
	}
	b.WriteString(truncateLines(s.Dump(), maxLines-shown))
	return b.String()
}

// Dump renders the live state of every PE — active stage, queue occupancies,
// DRM state — for deadlock diagnosis.
func (s *System) Dump() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cycle %d\n", s.Cycle)
	for _, pe := range s.PEs {
		act := "-"
		if st := pe.ActiveStage(); st != nil {
			act = st.Name()
		}
		fmt.Fprintf(&b, "pe%d active=%s reconfigUntil=%d stallUntil=%d pending=%d stack=%+v\n",
			pe.ID, act, pe.reconfigUntil, pe.stallUntil, pe.pending, pe.Stack)
		for _, st := range pe.stages {
			fmt.Fprintf(&b, "  stage %s work=%d ready=%v outBlocked=%v", st.Name(), st.InputWork(), st.Ready(), st.OutputsBlocked())
			if st.StateWork != nil {
				fmt.Fprintf(&b, " stateWork=%d", st.StateWork())
			}
			fmt.Fprintln(&b)
		}
		for _, q := range pe.QMem.Queues() {
			if q.Len() > 0 {
				fmt.Fprintf(&b, "  queue %s len=%d/%d\n", q.Name(), q.Len(), q.Cap())
			}
		}
		for _, d := range pe.DRMs {
			if d.Busy() {
				fmt.Fprintf(&b, "  drm %s mode=%v busy in=%d inflight=%d\n", d.Name(), d.Mode(), d.In().Len(), d.inflight.Len())
			}
		}
	}
	return b.String()
}
