package core

import (
	"fifer/internal/queue"
	"fifer/internal/trace"
)

// Observability wiring (DESIGN.md §9). Everything here is read-only with
// respect to the simulation: hooks fire after state transitions and only
// copy values the machine already computed, so a traced run is cycle-for-
// cycle identical to an untraced one. The wiring happens once, at system
// (and queue) construction; the per-event cost with tracing off is a nil
// check at each emission site.

// wireTrace attaches the system tracer to a freshly built PE: queue
// full/ready stall edges on every queue the PE's queue memory will ever
// allocate (via the Mem alloc hook, since application queues are carved out
// during program build, after NewSystem) plus the DRM address queues, and
// the DRM issue/response event stream.
func (p *PE) wireTrace() {
	t := p.sys.tracer
	if t == nil {
		return
	}
	sys, id := p.sys, p.ID
	hook := func(q *queue.Queue) {
		q.SetEdgeHook(func(full bool) {
			k := trace.KindQueueReady
			if full {
				k = trace.KindQueueFull
			}
			t.Emit(trace.Event{Cycle: sys.Cycle, PE: id, Kind: k, Name: q.Name(), Arg: uint64(q.Len())})
		})
	}
	p.QMem.SetOnAlloc(hook)
	for _, d := range p.DRMs {
		hook(d.in)
		d.tracer, d.pe = t, id
	}
}

// trace emits one event on this PE's behalf; callers nil-check p.sys.tracer
// first so the disabled path costs one branch.
func (p *PE) trace(now uint64, k trace.Kind, name string, arg uint64) {
	p.sys.tracer.Emit(trace.Event{Cycle: now, PE: p.ID, Kind: k, Name: name, Arg: arg})
}

// sampleMetrics emits one MetricsRow per PE: CPI-stack deltas since the
// previous sample plus the instantaneous queue-memory occupancy and DRM
// inflight gauges. Exactly one bucket advances per PE per cycle, so each
// PE's deltas over a full window sum to the window length, and over a whole
// run to Result.Cycles — the invariant suite's anchor.
func (s *System) sampleMetrics() {
	for i, pe := range s.PEs {
		cur := pe.Stack
		prev := s.lastStacks[i]
		infl := 0
		for _, d := range pe.DRMs {
			infl += d.inflight.Len()
		}
		s.Cfg.Metrics.SampleRow(trace.MetricsRow{
			Cycle:       s.Cycle,
			PE:          i,
			Issued:      cur.Issued - prev.Issued,
			Stall:       cur.Stall - prev.Stall,
			Queue:       cur.Queue - prev.Queue,
			Reconfig:    cur.Reconfig - prev.Reconfig,
			Idle:        cur.Idle - prev.Idle,
			QueueTokens: pe.QMem.Buffered(),
			DRMInflight: infl,
		})
		s.lastStacks[i] = cur
	}
	s.lastSample = s.Cycle
}
