package core

import (
	"errors"
	"reflect"
	"testing"

	"fifer/internal/queue"
	"fifer/internal/stage"
)

// cancelSystem builds a single-PE pipeline whose program never completes:
// the sink keeps draining, the program keeps refilling, so only MaxCycles
// or cancellation can end the run.
func cancelSystem(cfg Config) (*System, *queue.Queue) {
	sys := NewSystem(cfg)
	pe := sys.PE(0)
	q1 := pe.AllocQueue("q1", 64)
	q2 := pe.AllocQueue("q2", 64)
	got := 0
	pe.AddStage(passStage("fwd", stage.LocalPort{Q: q1}, stage.LocalPort{Q: q2}))
	pe.AddStage(sinkStage("sink", stage.LocalPort{Q: q2}, &got))
	return sys, q1
}

func endlessProgram(q *queue.Queue) Program {
	return ProgramFunc(func(*System) bool {
		for j := 0; j < 50; j++ {
			q.Enq(queue.Data(uint64(j)))
		}
		return true
	})
}

// TestRunCanceledBeforeStart closes Done before Run: the run must stop
// before simulating a single cycle, with the structured report intact.
func TestRunCanceledBeforeStart(t *testing.T) {
	cfg := testConfig(1)
	done := make(chan struct{})
	close(done)
	cfg.Done = done
	sys, q := cancelSystem(cfg)
	_, err := sys.Run(endlessProgram(q))
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	var ce *CanceledError
	if !errors.As(err, &ce) {
		t.Fatalf("err chain %v carries no *CanceledError", err)
	}
	if ce.Cycle != 0 || sys.Cycle != 0 {
		t.Fatalf("pre-start cancellation simulated %d cycles (report says %d), want 0", sys.Cycle, ce.Cycle)
	}
}

// TestRunCanceledMidRun closes Done from a per-cycle hook at a chosen
// trigger cycle and checks Run stops within one checkpoint interval,
// carrying the stop cycle and a state excerpt.
func TestRunCanceledMidRun(t *testing.T) {
	const trigger = 1000
	for _, tc := range []struct {
		name     string
		watchdog uint64
		latency  uint64 // max cycles from trigger to observation
	}{
		{"watchdog-cadence", 2000, 1000},    // checkpoint every window/2
		{"watchdog-disabled", 0, 65536 + 1}, // fallback polling interval
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := testConfig(1)
			cfg.WatchdogCycles = tc.watchdog
			done := make(chan struct{})
			cfg.Done = done
			sys, q := cancelSystem(cfg)
			sys.OnCycle(func(_ *System, now uint64) {
				if now == trigger {
					close(done)
				}
			})
			_, err := sys.Run(endlessProgram(q))
			if !errors.Is(err, ErrCanceled) {
				t.Fatalf("err = %v, want ErrCanceled", err)
			}
			var ce *CanceledError
			if !errors.As(err, &ce) {
				t.Fatalf("err chain %v carries no *CanceledError", err)
			}
			if ce.Cycle < trigger || ce.Cycle > trigger+tc.latency {
				t.Fatalf("canceled at cycle %d, want within %d cycles of trigger %d",
					ce.Cycle, tc.latency, trigger)
			}
			if ce.Summary == "" {
				t.Fatal("CanceledError carries no state summary")
			}
		})
	}
}

// TestDoneUnusedDoesNotPerturb pins the zero-overhead claim's observable
// half: a run with Done nil and a run with Done set but never closed
// produce bit-identical results.
func TestDoneUnusedDoesNotPerturb(t *testing.T) {
	run := func(done <-chan struct{}) (Result, uint64) {
		cfg := testConfig(1)
		cfg.Done = done
		sys := NewSystem(cfg)
		pe := sys.PE(0)
		q1 := pe.AllocQueue("q1", 64)
		q2 := pe.AllocQueue("q2", 64)
		got := 0
		pe.AddStage(passStage("fwd", stage.LocalPort{Q: q1}, stage.LocalPort{Q: q2}))
		pe.AddStage(sinkStage("sink", stage.LocalPort{Q: q2}, &got))
		rounds := 0
		res, err := sys.Run(ProgramFunc(func(*System) bool {
			rounds++
			if rounds > 5 {
				return false
			}
			for j := 0; j < 50; j++ {
				q1.Enq(queue.Data(uint64(j)))
			}
			return true
		}))
		if err != nil {
			t.Fatal(err)
		}
		return res, sys.Cycle
	}
	resNil, cycNil := run(nil)
	resArmed, cycArmed := run(make(chan struct{}))
	if cycNil != cycArmed || !reflect.DeepEqual(resNil, resArmed) {
		t.Fatalf("armed-but-unused Done changed the run:\nnil:   %d cycles %+v\narmed: %d cycles %+v",
			cycNil, resNil, cycArmed, resArmed)
	}
}
