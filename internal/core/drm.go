package core

import (
	"fifer/internal/mem"
	"fifer/internal/queue"
	"fifer/internal/stage"
	"fifer/internal/trace"
)

// DRMMode selects a decoupled reference machine's behavior (Sec. 5.4).
type DRMMode int

const (
	// DRMIdle: unconfigured; the DRM does nothing.
	DRMIdle DRMMode = iota
	// DRMDereference: each input token is an address whose in-memory value
	// is placed in the output queue.
	DRMDereference
	// DRMScan: each input token *pair* is a [start, end) byte-address range
	// whose words are sequentially fetched and enqueued.
	DRMScan
	// DRMStride: each input token pair is (base, count); the DRM fetches
	// count words spaced by the configured stride — the arrays-of-structs
	// traversal mode the paper notes "could be easily added" (Sec. 5.4).
	DRMStride
)

func (m DRMMode) String() string {
	switch m {
	case DRMDereference:
		return "dereference"
	case DRMScan:
		return "scan"
	case DRMStride:
		return "stride"
	}
	return "idle"
}

// DRM is a decoupled reference machine: a small FSM that performs memory
// accesses on the PE's behalf so stages never stall on the misses those
// accesses incur. Accesses may complete out of order in the memory system
// but results are delivered to the output queue in order. DRMs are
// configured once, at initialization, and keep working regardless of which
// stage is currently scheduled on the PE (Sec. 5.4).
//
// Control tokens pass through transparently, in order with data, so
// iteration boundaries survive decoupling (Sec. 5.5).
type DRM struct {
	name  string
	mode  DRMMode
	in    *queue.Queue
	out   stage.OutPort
	port  *mem.Port
	max   int // max in-flight accesses
	width int // accesses issued (and completions delivered) per cycle

	// boundary, when set on a scanning DRM, emits a control token after
	// each completed range, delineating data-set boundaries downstream
	// (Sec. 5.5); it fires even for empty ranges so streams stay aligned.
	boundary bool

	inflight  inflightRing
	lastReady uint64
	respExtra uint64 // fault injection: extra latency on every response

	// Event-horizon bookkeeping (see horizon.go), rewritten by every Tick:
	// wake is the earliest future cycle this DRM could act; outBlocked marks
	// the one inert state with a per-cycle side effect (a ready head token
	// against a full output counts OutFull every cycle until space appears).
	wake       uint64
	outBlocked bool

	// tracer/pe are set by the owning PE's wireTrace; nil tracer (the
	// default) reduces every emission site to one branch.
	tracer trace.Tracer
	pe     int

	scanCur    mem.Addr // active scan cursor; scanEnd==0 means no active range
	scanEnd    mem.Addr
	stride     mem.Addr // byte stride for DRMStride mode
	strideLeft int      // remaining fetches in the active strided burst

	// Statistics.
	Accesses uint64 // memory accesses issued
	Emitted  uint64 // tokens delivered to the output queue
	OutFull  uint64 // cycles a completed token waited on a full output
}

type drmEntry struct {
	tok   queue.Token
	ready uint64
}

// inflightRing is the DRM's in-order reorder buffer as a power-of-two ring:
// completion pops the front in O(1) instead of the O(n) copy-shift a slice
// would need on every delivered token. It grows (it never needs to — NewDRM
// sizes it past the max+1 boundary-token bound the audit enforces — but
// growth is cheaper than a corruption class).
type inflightRing struct {
	buf  []drmEntry // len(buf) is a power of two
	head int
	n    int
}

func newInflightRing(capHint int) inflightRing {
	c := 4
	for c < capHint {
		c <<= 1
	}
	return inflightRing{buf: make([]drmEntry, c)}
}

func (r *inflightRing) Len() int         { return r.n }
func (r *inflightRing) front() *drmEntry { return &r.buf[r.head] }
func (r *inflightRing) at(i int) *drmEntry {
	return &r.buf[(r.head+i)&(len(r.buf)-1)]
}

func (r *inflightRing) push(e drmEntry) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = e
	r.n++
}

func (r *inflightRing) popFront() {
	r.buf[r.head] = drmEntry{}
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
}

func (r *inflightRing) grow() {
	nb := make([]drmEntry, len(r.buf)*2)
	for i := 0; i < r.n; i++ {
		nb[i] = r.buf[(r.head+i)&(len(r.buf)-1)]
	}
	r.buf, r.head = nb, 0
}

// NewDRM creates an unconfigured DRM. The input queue is allocated by the
// caller. issueWidth is the accesses the DRM can launch (and results it can
// deliver) per cycle — graph edge-list accesses are launched in parallel
// (Sec. 5.6).
func NewDRM(name string, in *queue.Queue, port *mem.Port, maxOutstanding, issueWidth int) *DRM {
	if maxOutstanding < 1 {
		maxOutstanding = 1
	}
	if issueWidth < 1 {
		issueWidth = 1
	}
	return &DRM{
		name: name, in: in, port: port, max: maxOutstanding, width: issueWidth,
		// +2: the audit allows max+1 entries (boundary tokens), and the ring
		// must never have to grow on the hot path.
		inflight: newInflightRing(maxOutstanding + 2),
	}
}

// Configure sets the DRM's mode and output; it is called once at program
// initialization.
func (d *DRM) Configure(mode DRMMode, out stage.OutPort) {
	d.mode = mode
	d.out = out
}

// SetBoundary makes a scanning DRM emit a control token after each range.
func (d *DRM) SetBoundary(on bool) { d.boundary = on }

// SetStride sets the byte step between fetches in DRMStride mode.
func (d *DRM) SetStride(bytes int) { d.stride = mem.Addr(bytes) }

// Name returns the DRM's diagnostic name.
func (d *DRM) Name() string { return d.name }

// Mode returns the configured mode.
func (d *DRM) Mode() DRMMode { return d.mode }

// In returns the DRM's address input queue (stages push into it).
func (d *DRM) In() *queue.Queue { return d.in }

// InPort returns the input queue wrapped as a stage output port.
func (d *DRM) InPort() stage.OutPort { return stage.LocalPort{Q: d.in} }

// Out returns the configured output port (nil before Configure).
func (d *DRM) Out() stage.OutPort { return d.out }

// Inflight returns the number of accesses currently in flight.
func (d *DRM) Inflight() int { return d.inflight.Len() }

// MaxOutstanding returns the in-flight access bound.
func (d *DRM) MaxOutstanding() int { return d.max }

// Busy reports whether the DRM has pending work: buffered addresses,
// in-flight accesses, or an active scan range.
func (d *DRM) Busy() bool {
	return d.mode != DRMIdle && (!d.in.Empty() || d.inflight.Len() > 0 || d.scanEnd != 0 || d.strideLeft > 0)
}

// Tick advances the DRM by one cycle: complete up to issue-width ready
// accesses if the output has space, then issue up to issue-width new ones.
// It also publishes the DRM's wake cycle for the event-horizon kernel
// (horizon.go): now+1 after any progress, the head entry's ready cycle when
// only time separates the DRM from delivering, and horizonNever when only an
// external change (new addresses, output space) can unblock it.
func (d *DRM) Tick(now uint64) {
	d.wake = horizonNever
	d.outBlocked = false
	if d.mode == DRMIdle {
		return
	}
	progressed := false
	// Completion (in order).
	for k := 0; k < d.width && d.inflight.Len() > 0 && d.inflight.front().ready <= now; k++ {
		tok := d.inflight.front().tok
		if !d.out.Push(tok) {
			d.OutFull++
			d.outBlocked = true
			break
		}
		d.inflight.popFront()
		d.Emitted++
		progressed = true
		if d.tracer != nil {
			d.trace(now, trace.KindDRMResponse, tok.Value)
		}
	}
	for k := 0; k < d.width && d.inflight.Len() < d.max; k++ {
		if !d.issue(now) {
			break
		}
		progressed = true
	}
	if progressed {
		// Acted this cycle; it may act again next cycle. (This also covers a
		// partial delivery that then hit a full output: the retry next cycle
		// is what recounts OutFull, so outBlocked must not batch it.)
		d.wake, d.outBlocked = now+1, false
		return
	}
	if d.outBlocked {
		return // wake stays horizonNever; advanceInert batches the OutFull count
	}
	if d.inflight.Len() > 0 {
		d.wake = d.inflight.front().ready
	}
}

// issue launches one access (or consumes one control token); it reports
// whether it made progress.
func (d *DRM) issue(now uint64) bool {
	switch d.mode {
	case DRMDereference:
		t, ok := d.in.Peek()
		if !ok {
			return false
		}
		d.in.Deq()
		if t.Ctrl {
			d.push(t, now)
			return true
		}
		v, ready := d.port.Load(now, mem.Addr(t.Value))
		d.Accesses++
		if d.tracer != nil {
			d.trace(now, trace.KindDRMIssue, t.Value)
		}
		d.push(queue.Data(v), ready)
		return true
	case DRMScan:
		if d.scanEnd == 0 {
			// Need a (start, end) pair, or a pass-through control token.
			t, ok := d.in.Peek()
			if !ok {
				return false
			}
			if t.Ctrl {
				d.in.Deq()
				d.push(t, now)
				return true
			}
			if d.in.Len() < 2 {
				return false
			}
			s, _ := d.in.Deq()
			e, _ := d.in.Deq()
			if e.Ctrl {
				// Typed so Run degrades this to a per-job ErrInvariant.
				panic(&queue.Corruption{Component: d.name, Detail: "control token inside scan range pair"})
			}
			if s.Value >= e.Value {
				if d.boundary {
					d.push(queue.Ctrl(0), now)
				}
				return true // empty range
			}
			d.scanCur, d.scanEnd = mem.Addr(s.Value), mem.Addr(e.Value)
		}
		v, ready := d.port.Load(now, d.scanCur)
		d.Accesses++
		if d.tracer != nil {
			d.trace(now, trace.KindDRMIssue, uint64(d.scanCur))
		}
		d.push(queue.Data(v), ready)
		d.scanCur += mem.WordBytes
		if d.scanCur >= d.scanEnd {
			d.scanCur, d.scanEnd = 0, 0
			if d.boundary {
				d.push(queue.Ctrl(0), now)
			}
		}
		return true
	case DRMStride:
		if d.strideLeft == 0 {
			t, ok := d.in.Peek()
			if !ok {
				return false
			}
			if t.Ctrl {
				d.in.Deq()
				d.push(t, now)
				return true
			}
			if d.in.Len() < 2 {
				return false
			}
			base, _ := d.in.Deq()
			count, _ := d.in.Deq()
			if count.Value == 0 {
				if d.boundary {
					d.push(queue.Ctrl(0), now)
				}
				return true
			}
			d.scanCur = mem.Addr(base.Value)
			d.strideLeft = int(count.Value)
		}
		v, ready := d.port.Load(now, d.scanCur)
		d.Accesses++
		if d.tracer != nil {
			d.trace(now, trace.KindDRMIssue, uint64(d.scanCur))
		}
		d.push(queue.Data(v), ready)
		d.scanCur += d.stride
		d.strideLeft--
		if d.strideLeft == 0 {
			d.scanCur = 0
			if d.boundary {
				d.push(queue.Ctrl(0), now)
			}
		}
		return true
	}
	return false
}

// trace emits one event on this DRM's behalf; callers nil-check d.tracer
// first so the disabled path costs one branch.
func (d *DRM) trace(now uint64, k trace.Kind, arg uint64) {
	d.tracer.Emit(trace.Event{Cycle: now, PE: d.pe, Kind: k, Name: d.name, Arg: arg})
}

func (d *DRM) push(t queue.Token, ready uint64) {
	ready += d.respExtra
	if ready < d.lastReady {
		ready = d.lastReady // in-order delivery
	}
	d.lastReady = ready
	d.inflight.push(drmEntry{tok: t, ready: ready})
}

// FaultDelayResponses is a fault-injection hook (internal/faults): it pushes
// the ready time of every in-flight access — and of all responses issued
// afterwards — out by extra cycles, modeling a memory controller that stops
// responding to this DRM. Detector: the progress watchdog, once the stalled
// responses starve the downstream stage and traffic ceases. It returns the
// number of in-flight accesses that were delayed.
func (d *DRM) FaultDelayResponses(extra uint64) int {
	for i := 0; i < d.inflight.Len(); i++ {
		d.inflight.at(i).ready += extra
	}
	d.lastReady += extra
	d.respExtra += extra
	return d.inflight.Len()
}
