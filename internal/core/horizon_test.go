package core

import (
	"errors"
	"reflect"
	"testing"

	"fifer/internal/mem"
	"fifer/internal/queue"
	"fifer/internal/stage"
	"fifer/internal/trace"
)

// The differential harness: build the same synthetic machine twice, run one
// with the event-horizon fast-forward (the default) and one with the naive
// loop (Config.NoFastForward), and require every observable surface to be
// bit-identical — Result, final cycle, trace events at their original
// cycles, metrics rows, sampled occupancy, and error values for runs that
// end in deadlock or budget exhaustion.

// horizonCase builds one synthetic system; mut edits the config before
// construction (both runs get the same edit, on top of the oracle flag).
type horizonCase struct {
	name  string
	mut   func(*Config)
	build func(t *testing.T, sys *System) Program
}

// runHorizonCase runs one build twice and returns both sides' artifacts.
func runHorizonCase(t *testing.T, hc horizonCase, oracle bool) (Result, error, *System, *trace.Collector) {
	t.Helper()
	cfg := testConfig(1)
	col := trace.NewCollector(1 << 16)
	cfg.Tracer = col
	cfg.Metrics = col
	cfg.MetricsCycles = 256
	if hc.mut != nil {
		hc.mut(&cfg)
	}
	cfg.NoFastForward = oracle
	sys := NewSystem(cfg)
	prog := hc.build(t, sys)
	res, err := sys.Run(prog)
	return res, err, sys, col
}

func checkHorizonCase(t *testing.T, hc horizonCase) {
	t.Helper()
	fastRes, fastErr, fastSys, fastCol := runHorizonCase(t, hc, false)
	slowRes, slowErr, slowSys, slowCol := runHorizonCase(t, hc, true)

	if !reflect.DeepEqual(fastRes, slowRes) {
		t.Errorf("Result differs\nfast:   %+v\noracle: %+v", fastRes, slowRes)
	}
	if (fastErr == nil) != (slowErr == nil) {
		t.Fatalf("error presence differs: fast=%v oracle=%v", fastErr, slowErr)
	}
	if fastErr != nil && fastErr.Error() != slowErr.Error() {
		t.Errorf("error differs\nfast:   %v\noracle: %v", fastErr, slowErr)
	}
	if fastSys.Cycle != slowSys.Cycle {
		t.Errorf("final cycle differs: fast=%d oracle=%d", fastSys.Cycle, slowSys.Cycle)
	}
	if got, want := fastSys.MeanQueueOccupancy(), slowSys.MeanQueueOccupancy(); got != want {
		t.Errorf("mean queue occupancy differs: fast=%v oracle=%v", got, want)
	}
	if !reflect.DeepEqual(fastCol.Events(), slowCol.Events()) {
		diffEvents(t, fastCol.Events(), slowCol.Events())
	}
	if !reflect.DeepEqual(fastCol.Rows(), slowCol.Rows()) {
		t.Errorf("metrics rows differ: fast has %d, oracle has %d", len(fastCol.Rows()), len(slowCol.Rows()))
	}
	for i := range fastSys.PEs {
		fpe, spe := fastSys.PEs[i], slowSys.PEs[i]
		if fpe.Stack != spe.Stack {
			t.Errorf("pe%d CPI stack differs: fast=%+v oracle=%+v", i, fpe.Stack, spe.Stack)
		}
		for j := range fpe.DRMs {
			fd, sd := fpe.DRMs[j], spe.DRMs[j]
			if fd.OutFull != sd.OutFull || fd.Accesses != sd.Accesses || fd.Emitted != sd.Emitted {
				t.Errorf("%s counters differ: fast={acc %d emit %d outfull %d} oracle={acc %d emit %d outfull %d}",
					fd.Name(), fd.Accesses, fd.Emitted, fd.OutFull, sd.Accesses, sd.Emitted, sd.OutFull)
			}
		}
	}
}

func diffEvents(t *testing.T, fast, slow []trace.Event) {
	t.Helper()
	if len(fast) != len(slow) {
		t.Errorf("event counts differ: fast=%d oracle=%d", len(fast), len(slow))
	}
	n := len(fast)
	if len(slow) < n {
		n = len(slow)
	}
	for i := 0; i < n; i++ {
		if fast[i] != slow[i] {
			t.Errorf("event %d differs:\nfast:   %+v\noracle: %+v", i, fast[i], slow[i])
			return
		}
	}
}

// drmLatencyCase is the memory-bound shape fast-forward targets: a DRM
// dereferencing cold addresses (long, known-future ready cycles) into a
// queue a sink drains. Between issue and delivery everything is inert.
func drmLatencyCase() horizonCase {
	return horizonCase{
		name: "drm-latency",
		build: func(t *testing.T, sys *System) Program {
			pe := sys.PE(0)
			arr := sys.Backing.AllocWords(1 << 16)
			addrQ := pe.DRM(0).In()
			out := pe.AllocQueue("out", 16)
			pe.DRM(0).Configure(DRMDereference, stage.LocalPort{Q: out})
			got := 0
			pe.AddStage(sinkStage("sink", stage.LocalPort{Q: out}, &got))
			next := 0
			refill := func() {
				// Spread addresses across pages so every access cold-misses.
				for j := 0; j < 8; j++ {
					addrQ.Enq(queue.Data(uint64(arr) + uint64((next*8+j)*4096)))
				}
				next++
			}
			refill()
			return ProgramFunc(func(*System) bool {
				if next >= 8 {
					return false
				}
				refill()
				return true
			})
		},
	}
}

// stallCase exercises coupled-load fabric freezes (Stack.Stall windows).
func stallCase() horizonCase {
	return horizonCase{
		name: "coupled-stall",
		build: func(t *testing.T, sys *System) Program {
			pe := sys.PE(0)
			arr := sys.Backing.AllocWords(1 << 16)
			q := pe.AllocQueue("q", 64)
			n := 0
			pe.AddStage(&stage.Stage{
				Kernel: stage.KernelFunc{KernelName: "loads", Fn: func(c *stage.Ctx) stage.Status {
					tok, ok := c.In[0].Pop()
					if !ok {
						return stage.NoInput
					}
					c.Load(arr + mem.Addr(tok.Value*4096))
					n++
					return stage.Fired
				}},
				Mapping: passDFG("loads"),
				In:      []stage.InPort{stage.LocalPort{Q: q}},
			})
			for i := 0; i < 32; i++ {
				q.Enq(queue.Data(uint64(i)))
			}
			return ProgramFunc(func(*System) bool { return false })
		},
	}
}

// reconfigCase forces constant stage switching, so windows are
// reconfiguration periods and sliding scheduler cooldowns.
func reconfigCase() horizonCase {
	return horizonCase{
		name: "reconfig",
		build: func(t *testing.T, sys *System) Program {
			pe := sys.PE(0)
			qa := pe.AllocQueue("qa", 4)
			qb := pe.AllocQueue("qb", 4)
			gotA, gotB := 0, 0
			pe.AddStage(sinkStage("a", stage.LocalPort{Q: qa}, &gotA))
			pe.AddStage(sinkStage("b", stage.LocalPort{Q: qb}, &gotB))
			prog := 0
			return ProgramFunc(func(*System) bool {
				prog++
				if prog > 32 {
					return false
				}
				qa.Enq(queue.Data(0))
				qb.Enq(queue.Data(0))
				return true
			})
		},
	}
}

// outFullCase parks a DRM on a full output queue that is drained very
// slowly, so the per-cycle OutFull charge must be batched exactly.
func outFullCase() horizonCase {
	return horizonCase{
		name: "drm-outfull",
		build: func(t *testing.T, sys *System) Program {
			pe := sys.PE(0)
			arr := sys.Backing.AllocSlice(make([]uint64, 256))
			out := pe.AllocQueue("out", 2)
			d := pe.DRM(0)
			d.Configure(DRMScan, stage.LocalPort{Q: out})
			d.In().Enq(queue.Data(uint64(arr)))
			d.In().Enq(queue.Data(uint64(arr) + 256*mem.WordBytes))
			// The sink only drains when poked by the control program, so the
			// DRM spends long stretches blocked on the full output.
			gate := pe.AllocQueue("gate", 1)
			got := 0
			pe.AddStage(&stage.Stage{
				Kernel: stage.KernelFunc{KernelName: "gated", Fn: func(c *stage.Ctx) stage.Status {
					if _, ok := c.In[1].Peek(); !ok {
						return stage.NoInput
					}
					if _, ok := c.In[0].Pop(); !ok {
						return stage.NoInput
					}
					c.In[1].Pop()
					got++
					return stage.Fired
				}},
				Mapping: passDFG("gated"),
				In:      []stage.InPort{stage.LocalPort{Q: out}, stage.LocalPort{Q: gate}},
			})
			return ProgramFunc(func(*System) bool {
				if got >= 256 {
					return false
				}
				gate.Enq(queue.Data(1))
				return true
			})
		},
	}
}

// TestFastForwardMatchesOracle is the core differential pin: for every
// synthetic shape, the fast-forward and naive loops must agree on every
// observable surface.
func TestFastForwardMatchesOracle(t *testing.T) {
	for _, hc := range []horizonCase{drmLatencyCase(), stallCase(), reconfigCase(), outFullCase()} {
		t.Run(hc.name, func(t *testing.T) { checkHorizonCase(t, hc) })
	}
}

// TestFastForwardTightObservation re-runs the differential cases with every
// observation cadence tightened (watchdog, audit, metrics) so windows are
// clamped at many boundaries and every check runs against skipped regions.
func TestFastForwardTightObservation(t *testing.T) {
	tight := func(cfg *Config) {
		cfg.WatchdogCycles = 128
		cfg.AuditCycles = 32
		cfg.MetricsCycles = 64
	}
	for _, hc := range []horizonCase{drmLatencyCase(), stallCase(), reconfigCase(), outFullCase()} {
		hc.mut = tight
		t.Run(hc.name, func(t *testing.T) { checkHorizonCase(t, hc) })
	}
}

// TestFastForwardDeadlockParity pins failure-path identity: a deadlocked
// machine must trip the watchdog at the same checkpoint cycle with the same
// structured report, fast-forwarded or not.
func TestFastForwardDeadlockParity(t *testing.T) {
	hc := horizonCase{
		name: "deadlock",
		mut: func(cfg *Config) {
			cfg.WatchdogCycles = 2048
		},
		build: func(t *testing.T, sys *System) Program {
			pe := sys.PE(0)
			q := pe.AllocQueue("q", 4)
			q.Enq(queue.Data(1))
			pe.AddStage(&stage.Stage{
				Kernel: stage.KernelFunc{KernelName: "stuck", Fn: func(*stage.Ctx) stage.Status {
					return stage.NoOutput
				}},
				Mapping:   passDFG("stuck"),
				In:        []stage.InPort{stage.LocalPort{Q: q}},
				StateWork: func() int { return 1 },
			})
			return ProgramFunc(func(*System) bool { return false })
		},
	}
	_, fastErr, _, _ := runHorizonCase(t, hc, false)
	_, slowErr, _, _ := runHorizonCase(t, hc, true)
	var fastDL, slowDL *DeadlockError
	if !errors.As(fastErr, &fastDL) || !errors.As(slowErr, &slowDL) {
		t.Fatalf("expected deadlocks, got fast=%v oracle=%v", fastErr, slowErr)
	}
	if !reflect.DeepEqual(fastDL.Report, slowDL.Report) {
		t.Errorf("deadlock reports differ\nfast:   %+v\noracle: %+v", fastDL.Report, slowDL.Report)
	}
	checkHorizonCase(t, hc)
}

// TestFastForwardMaxCyclesParity pins budget-exhaustion identity, including
// the BlockedSummary embedded in the error string.
func TestFastForwardMaxCyclesParity(t *testing.T) {
	hc := horizonCase{
		name: "maxcycles",
		mut: func(cfg *Config) {
			cfg.MaxCycles = 5000
			cfg.WatchdogCycles = 0 // let MaxCycles fire first
		},
		build: func(t *testing.T, sys *System) Program {
			pe := sys.PE(0)
			q := pe.AllocQueue("q", 4)
			q.Enq(queue.Data(1))
			pe.AddStage(&stage.Stage{
				Kernel: stage.KernelFunc{KernelName: "stuck", Fn: func(*stage.Ctx) stage.Status {
					return stage.NoOutput
				}},
				Mapping:   passDFG("stuck"),
				In:        []stage.InPort{stage.LocalPort{Q: q}},
				StateWork: func() int { return 1 },
			})
			return ProgramFunc(func(*System) bool { return false })
		},
	}
	_, fastErr, fastSys, _ := runHorizonCase(t, hc, false)
	_, slowErr, _, _ := runHorizonCase(t, hc, true)
	if !errors.Is(fastErr, ErrMaxCycles) || !errors.Is(slowErr, ErrMaxCycles) {
		t.Fatalf("expected ErrMaxCycles, got fast=%v oracle=%v", fastErr, slowErr)
	}
	if fastErr.Error() != slowErr.Error() {
		t.Errorf("error strings differ\nfast:   %v\noracle: %v", fastErr, slowErr)
	}
	if fastSys.Cycle != 5000 {
		t.Errorf("budget exhaustion at cycle %d, want 5000", fastSys.Cycle)
	}
	checkHorizonCase(t, hc)
}

// TestFastForwardCheckpointCycles pins the watchdog-checkpoint trace events
// — the cycle each lands on and its progress-signature Arg — to the naive
// loop's, cycle for cycle, even when every checkpoint falls inside a
// skipped region (the fifertrace summarizer counts exactly these events).
func TestFastForwardCheckpointCycles(t *testing.T) {
	hc := drmLatencyCase()
	hc.mut = func(cfg *Config) { cfg.WatchdogCycles = 256 }
	_, _, _, fastCol := runHorizonCase(t, hc, false)
	_, _, _, slowCol := runHorizonCase(t, hc, true)
	filter := func(evs []trace.Event) (out []trace.Event) {
		for _, e := range evs {
			if e.Kind == trace.KindCheckpoint {
				out = append(out, e)
			}
		}
		return out
	}
	fastCk, slowCk := filter(fastCol.Events()), filter(slowCol.Events())
	if len(fastCk) == 0 {
		t.Fatal("no checkpoint events captured; tighten the watchdog window")
	}
	if !reflect.DeepEqual(fastCk, slowCk) {
		t.Errorf("checkpoint events differ\nfast:   %+v\noracle: %+v", fastCk, slowCk)
	}
	for _, e := range fastCk {
		if e.Cycle%128 != 0 { // wdInterval = WatchdogCycles/2
			t.Errorf("checkpoint at cycle %d is off the 128-cycle checkpoint grid", e.Cycle)
		}
	}
}

// TestFastForwardActuallySkips guards against the fast path silently
// degrading to the naive loop: on the DRM-latency workload the skip
// machinery must cover a large share of the simulated cycles. It measures
// by construction — a run whose wall clock is dominated by inert cycles
// has far fewer Tick calls than cycles — using a counting kernel.
func TestFastForwardActuallySkips(t *testing.T) {
	ticks := 0
	hc := horizonCase{
		name: "skips",
		build: func(t *testing.T, sys *System) Program {
			pe := sys.PE(0)
			arr := sys.Backing.AllocWords(1 << 16)
			addrQ := pe.DRM(0).In()
			out := pe.AllocQueue("out", 16)
			pe.DRM(0).Configure(DRMDereference, stage.LocalPort{Q: out})
			count := 0
			pe.AddStage(&stage.Stage{
				Kernel: stage.KernelFunc{KernelName: "sink", Fn: func(c *stage.Ctx) stage.Status {
					ticks++
					if _, ok := c.In[0].Pop(); !ok {
						return stage.NoInput
					}
					count++
					return stage.Fired
				}},
				Mapping: passDFG("sink"),
				In:      []stage.InPort{stage.LocalPort{Q: out}},
			})
			for j := 0; j < 16; j++ {
				addrQ.Enq(queue.Data(uint64(arr) + uint64(j*4096)))
			}
			return ProgramFunc(func(*System) bool { return false })
		},
	}
	_, err, sys, _ := runHorizonCase(t, hc, false)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(ticks) >= sys.Cycle {
		t.Fatalf("kernel saw %d TryFire cycles over %d simulated cycles; fast-forward skipped nothing", ticks, sys.Cycle)
	}
	if sys.Cycle < 100 {
		t.Fatalf("workload too short (%d cycles) to prove skipping", sys.Cycle)
	}
}
