package core

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"fifer/internal/queue"
	"fifer/internal/stage"
)

// mulStage pops one token and pushes it twice — token multiplication, so a
// ring of mulStages inevitably fills its queues and deadlocks on credits.
func mulStage(name string, in stage.InPort, out stage.OutPort) *stage.Stage {
	return &stage.Stage{
		Kernel: stage.KernelFunc{KernelName: name, Fn: func(c *stage.Ctx) stage.Status {
			t, ok := c.In[0].Peek()
			if !ok {
				return stage.NoInput
			}
			if c.Out[0].Space() < 2 {
				return stage.NoOutput
			}
			c.In[0].Pop()
			c.Out[0].Push(t)
			c.Out[0].Push(t)
			return stage.Fired
		}},
		Mapping: passDFG(name),
		In:      []stage.InPort{in},
		Out:     []stage.OutPort{out},
	}
}

// TestWatchdogReportsCreditCycleDeadlock constructs the classic credited
// ring deadlock — two PEs multiplying tokens at each other until both
// queues are full and neither producer holds credits — and checks the
// watchdog reports it via ErrDeadlock within one window of the last
// progress, with a DeadlockReport that names the blocked queues.
func TestWatchdogReportsCreditCycleDeadlock(t *testing.T) {
	cfg := testConfig(2)
	cfg.WatchdogCycles = 2000
	sys := NewSystem(cfg)

	// ring0 lives on pe0 with two producers (port 0 seeds, port 1 is the
	// pe1 stage); ring1 lives on pe1 fed by the pe0 stage.
	ring0 := sys.InterPEQueue(0, "ring0", 16, 2)
	ring1 := sys.InterPEQueue(1, "ring1", 16, 1)
	sys.PE(0).AddStage(mulStage("mul0", stage.ArbiterPort{A: ring0}, stage.CreditOut{P: ring1.Port(0)}))
	sys.PE(1).AddStage(mulStage("mul1", stage.ArbiterPort{A: ring1}, stage.CreditOut{P: ring0.Port(1)}))
	if !ring0.Port(0).Send(queue.Data(1)) {
		t.Fatal("seed send failed")
	}

	_, err := sys.Run(ProgramFunc(func(*System) bool { return false }))
	if err == nil {
		t.Fatal("credited ring deadlock ran to completion")
	}
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want errors.Is(err, ErrDeadlock)", err)
	}
	if errors.Is(err, ErrMaxCycles) {
		t.Fatal("deadlock misreported as MaxCycles exhaustion")
	}
	if sys.Cycle >= cfg.MaxCycles/2 {
		t.Fatalf("watchdog tripped at cycle %d: not fast relative to MaxCycles=%d", sys.Cycle, cfg.MaxCycles)
	}

	var de *DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("err chain %v carries no *DeadlockError", err)
	}
	r := de.Report
	if r.Cycle-r.LastProgress > r.Window {
		t.Fatalf("reported %d cycles after last progress, want within window %d", r.Cycle-r.LastProgress, r.Window)
	}
	var named bool
	for _, e := range r.WaitFor {
		if strings.Contains(e.WaitsOn, "ring0") || strings.Contains(e.WaitsOn, "ring1") {
			named = true
		}
	}
	if !named {
		t.Fatalf("wait-for summary %v does not name a blocked ring queue", r.WaitFor)
	}
	if !strings.Contains(err.Error(), "wait-for") || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("error message lacks the report: %v", err)
	}
}

// TestMaxCyclesMessageCarriesBlockedSummary disables the watchdog and
// checks that even the budget-exhaustion path explains what was stuck.
func TestMaxCyclesMessageCarriesBlockedSummary(t *testing.T) {
	cfg := testConfig(1)
	cfg.WatchdogCycles = 0
	cfg.MaxCycles = 1500
	sys := NewSystem(cfg)
	pe := sys.PE(0)
	q := pe.AllocQueue("qstuck", 4)
	q.Enq(queue.Data(1))
	pe.AddStage(&stage.Stage{
		Kernel: stage.KernelFunc{KernelName: "stuck", Fn: func(*stage.Ctx) stage.Status {
			return stage.NoOutput
		}},
		Mapping:   passDFG("stuck"),
		In:        []stage.InPort{stage.LocalPort{Q: q}},
		StateWork: func() int { return 1 },
	})
	_, err := sys.Run(ProgramFunc(func(*System) bool { return false }))
	if !errors.Is(err, ErrMaxCycles) {
		t.Fatalf("err = %v, want ErrMaxCycles (watchdog disabled)", err)
	}
	msg := err.Error()
	for _, want := range []string{"wait-for", "stuck", "qstuck"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("ErrMaxCycles message lacks %q:\n%s", want, msg)
		}
	}
}

// TestRunRecoversQueueCorruption counterfeits a credit mid-run so the next
// credited enqueue overruns a full queue: the queue layer's typed panic
// must come back as a per-run ErrInvariant instead of crashing the process.
func TestRunRecoversQueueCorruption(t *testing.T) {
	cfg := testConfig(1)
	cfg.AuditCycles = 0 // let the panic path, not the audit, catch it
	sys := NewSystem(cfg)
	pe := sys.PE(0)
	src := pe.AllocQueue("src", 16)
	for i := 0; i < 10; i++ {
		src.Enq(queue.Data(uint64(i)))
	}
	arb := sys.InterPEQueue(0, "cq", 4, 1)
	pe.AddStage(passStage("send", stage.LocalPort{Q: src}, stage.CreditOut{P: arb.Port(0)}))
	sys.OnCycle(func(s *System, now uint64) {
		if now == 100 {
			arb.Port(0).FaultAdjustCredits(+1)
		}
	})
	_, err := sys.Run(ProgramFunc(func(*System) bool { return false }))
	if !errors.Is(err, ErrInvariant) {
		t.Fatalf("err = %v, want errors.Is(err, ErrInvariant)", err)
	}
	if !strings.Contains(err.Error(), "enqueue failed") || !strings.Contains(err.Error(), "cq") {
		t.Fatalf("recovered corruption does not name the culprit: %v", err)
	}
}

// TestAuditLiveCleanOnHealthySystem runs a healthy pipeline and audits
// every cycle: the audit must never fire, and the run's outcome must be
// identical with auditing on or off (the layer observes, never perturbs).
func TestAuditLiveCleanOnHealthySystem(t *testing.T) {
	run := func(audit uint64) (Result, uint64) {
		cfg := testConfig(1)
		cfg.AuditCycles = audit
		sys := NewSystem(cfg)
		pe := sys.PE(0)
		q1 := pe.AllocQueue("q1", 32)
		q2 := pe.AllocQueue("q2", 32)
		got := 0
		pe.AddStage(passStage("fwd", stage.LocalPort{Q: q1}, stage.LocalPort{Q: q2}))
		pe.AddStage(sinkStage("sink", stage.LocalPort{Q: q2}, &got))
		for i := 0; i < 30; i++ {
			q1.Enq(queue.Data(uint64(i)))
		}
		res, err := sys.Run(ProgramFunc(func(*System) bool { return false }))
		if err != nil {
			t.Fatalf("audit=%d: %v", audit, err)
		}
		return res, sys.Cycle
	}
	resOff, cycOff := run(0)
	resOn, cycOn := run(1)
	if cycOff != cycOn || !reflect.DeepEqual(resOff, resOn) {
		t.Fatalf("per-cycle audit perturbed the run: %d vs %d cycles", cycOff, cycOn)
	}
}

// TestNewSystemCheckedValidation covers the up-front config validation.
func TestNewSystemCheckedValidation(t *testing.T) {
	bad := map[string]func(*Config){
		"no PEs":           func(c *Config) { c.PEs = 0 },
		"no cycle budget":  func(c *Config) { c.MaxCycles = 0 },
		"no queue memory":  func(c *Config) { c.QueueMemBytes = 0 },
		"negative DRMs":    func(c *Config) { c.DRMsPerPE = -1 },
		"no DRM capacity":  func(c *Config) { c.DRMOutstanding = 0 },
		"no backing":       func(c *Config) { c.BackingBytes = 0 },
		"clients mismatch": func(c *Config) { c.Hier.Clients = c.PEs + 3 },
		"negative backing": func(c *Config) { c.BackingBytes = -5 },
	}
	for name, mutate := range bad {
		cfg := testConfig(2)
		mutate(&cfg)
		if _, err := NewSystemChecked(cfg); err == nil {
			t.Errorf("%s: NewSystemChecked accepted an invalid config", name)
		}
	}

	cfg := testConfig(2)
	cfg.Hier.Clients = 0 // sized automatically, not an error
	sys, err := NewSystemChecked(cfg)
	if err != nil {
		t.Fatalf("zero Clients rejected: %v", err)
	}
	if got := len(sys.Hier.L1s); got != 2 {
		t.Fatalf("zero Clients sized to %d L1s, want 2", got)
	}

	func() {
		defer func() {
			if recover() == nil {
				t.Error("NewSystem did not panic on an invalid config")
			}
		}()
		NewSystem(Config{})
	}()
}
