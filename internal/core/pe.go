package core

import (
	"fmt"

	"fifer/internal/mem"
	"fifer/internal/queue"
	"fifer/internal/stage"
	"fifer/internal/trace"
)

// PE is one processing element: a CGRA fabric with its private L1 cache,
// queue memory, DRMs, and — in Fifer mode — a scheduler that time-
// multiplexes resident stage configurations onto the fabric (Fig. 7).
type PE struct {
	ID   int
	sys  *System
	cfg  *Config
	Mem  *mem.Port
	QMem *queue.Mem
	DRMs []*DRM

	stages []*stage.Stage
	active int // index into stages; -1 before the first activation

	// Reconfiguration state.
	reconfigUntil uint64 // busy reconfiguring until this cycle
	pending       int    // stage to activate when reconfiguration completes
	stallUntil    uint64 // fabric frozen by a coupled-load miss until this cycle

	// Scheduler hysteresis: a stage that was activated and then blocked
	// without firing once is kept off the candidate list for a short
	// cooldown. Without it, two mutually blocked high-occupancy stages can
	// ping-pong forever while a low-occupancy stage that would release the
	// back-pressure (e.g. a credit-starved consumer) never gets the fabric.
	cooldownUntil []uint64
	firedSinceAct bool

	// Event-horizon bookkeeping (horizon.go), rewritten by every Tick:
	// wake is the earliest future cycle this PE (fabric or any DRM) could
	// act; inertBucket is the CPI bucket every cycle until then charges; and
	// slideCooldown marks the fruitless-activation state whose per-cycle
	// side effect (re-arming cooldownUntil[active]) advanceInert must replay.
	wake          uint64
	inertBucket   inertBucket
	slideCooldown bool

	// Sharded-kernel per-PE parking state (shard.go): caughtUp is the cycle
	// up to which this PE's deferred inert accounting has been applied;
	// shDirty marks an external arrival (credited token, credit return,
	// program injection) that obliges the PE to tick even though its
	// published wake predates the arrival; poll marks a PE hosting a stage
	// with an exotic port (stage.Exotic), whose readiness may depend on
	// program state outside the queue/credit fabric — such a PE cannot be
	// parked while stages fire anywhere; firedNow records whether this
	// tick's fabric fired a stage (the only place user code runs). All
	// unused by the sequential kernel.
	caughtUp uint64
	shDirty  bool
	poll     bool
	firedNow bool

	// Per-tick stage snapshot (scanStages): InputWork and readiness of every
	// resident stage, computed once per blocked cycle and shared by pick,
	// cooldownWake, and accountBlocked instead of each rescanning the queues.
	scanWork  []int
	scanReady []bool

	// Statistics.
	Stack        CPIStack
	SumResidence uint64 // total cycles between consecutive activations
	Activations  uint64
	SumReconfig  uint64 // total cycles spent in reconfiguration periods
	Reconfigs    uint64
	lastActivate uint64
	ctx          stage.Ctx
}

// inertBucket names the single CPIStack bucket a provably inert PE charges
// on every cycle of a fast-forward window. bucketNone marks a PE that acted
// this cycle (its wake is now+1, so no window can include it).
type inertBucket uint8

const (
	bucketNone inertBucket = iota
	bucketReconfig
	bucketStall
	bucketQueue
	bucketIdle
)

// schedCooldown is the exclusion window after a fruitless activation.
const schedCooldown = 64

// init populates a zero PE in place; NewSystemChecked lays all PEs out in
// one contiguous array so the per-cycle sweep walks sequential memory.
func (pe *PE) init(id int, sys *System) {
	cfg := &sys.Cfg
	pe.ID = id
	pe.sys = sys
	pe.cfg = cfg
	pe.Mem = sys.Hier.Port(id, sys.Backing)
	pe.QMem = queue.NewMem(fmt.Sprintf("pe%d", id), cfg.QueueMemBytes)
	pe.active = -1
	pe.pending = -1
	for i := 0; i < cfg.DRMsPerPE; i++ {
		// DRM address queues are small fixed buffers separate from the
		// 16 KB virtualized queue SRAM (Table 1 lists DRMs separately).
		in := queue.NewQueue(fmt.Sprintf("pe%d.drm%d.in", id, i), 16)
		pe.DRMs = append(pe.DRMs, NewDRM(fmt.Sprintf("pe%d.drm%d", id, i), in, pe.Mem, cfg.DRMOutstanding, cfg.DRMIssueWidth))
	}
	pe.wireTrace()
}

// AllocQueue carves a queue out of this PE's queue memory.
func (p *PE) AllocQueue(name string, capTokens int) *queue.Queue {
	return p.QMem.MustAlloc(fmt.Sprintf("pe%d.%s", p.ID, name), capTokens)
}

// DRM returns the i-th decoupled reference machine.
func (p *PE) DRM(i int) *DRM { return p.DRMs[i] }

// AddStage makes a stage resident on this PE. In static mode, at most one
// stage may be resident (the hardware has a single configuration and no
// scheduler).
func (p *PE) AddStage(s *stage.Stage) {
	if p.cfg.Mode == ModeStatic && len(p.stages) >= 1 {
		panic(fmt.Sprintf("pe%d: static pipeline allows one stage per PE; %q would be the second",
			p.ID, s.Name()))
	}
	if s.Mapping != nil && s.Mapping.ConfigAddr == 0 {
		// Configurations are stored in cacheable memory (Sec. 5.1); place
		// the encoded bitstream now so reconfiguration fetches have real
		// addresses and real contents.
		bs := s.Mapping.Encode()
		base := p.sys.Backing.Alloc(len(bs))
		s.Mapping.ConfigAddr = uint64(base)
		for i := 0; i+mem.WordBytes <= len(bs); i += mem.WordBytes {
			var w uint64
			for b := 0; b < mem.WordBytes; b++ {
				w |= uint64(bs[i+b]) << (8 * b)
			}
			p.sys.Backing.Store(base+mem.Addr(i), w)
		}
	}
	p.stages = append(p.stages, s)
	p.cooldownUntil = append(p.cooldownUntil, 0)
	p.scanWork = append(p.scanWork, 0)
	p.scanReady = append(p.scanReady, false)
}

// scanStages snapshots every resident stage's scheduler inputs for this
// tick. Queue state is frozen within a blocked cycle, so one pass serves
// every consumer.
func (p *PE) scanStages() {
	for i, s := range p.stages {
		w := s.InputWork()
		p.scanWork[i] = w
		p.scanReady[i] = w > 0 && !s.OutputsBlocked()
	}
}

// Stages returns the resident stages.
func (p *PE) Stages() []*stage.Stage { return p.stages }

// ActiveStage returns the currently configured stage, or nil.
func (p *PE) ActiveStage() *stage.Stage {
	if p.active < 0 || p.active >= len(p.stages) {
		return nil
	}
	return p.stages[p.active]
}

// Busy reports whether the PE has non-quiescent state: an unfinished
// reconfiguration, a frozen fabric, a busy DRM, or buffered tokens.
func (p *PE) Busy(now uint64) bool {
	if now < p.reconfigUntil || now < p.stallUntil || p.pending >= 0 {
		return true
	}
	for _, d := range p.DRMs {
		if d.Busy() {
			return true
		}
	}
	for _, s := range p.stages {
		if s.StateWork != nil && s.StateWork() > 0 {
			return true
		}
	}
	return p.QMem.Buffered() > 0
}

// Tick advances the PE by one cycle. Exactly one CPIStack bucket is
// incremented per call. It also publishes the PE's wake cycle — the minimum
// over the fabric's and every DRM's — for the event-horizon kernel.
func (p *PE) Tick(now uint64) {
	p.firedNow = false
	wake := horizonNever
	for _, d := range p.DRMs {
		d.Tick(now)
		if d.wake < wake {
			wake = d.wake
		}
	}
	fabricWake, bucket, slide := p.tickFabric(now)
	if fabricWake < wake {
		wake = fabricWake
	}
	p.wake, p.inertBucket, p.slideCooldown = wake, bucket, slide
}

// tickFabric runs one cycle of the fabric (everything in Tick except the
// DRMs) and returns the fabric's wake cycle, the CPI bucket an inert window
// starting next cycle would charge, and whether the blocked-without-firing
// cooldown keeps sliding. Action cycles return (now+1, bucketNone, false):
// conservatively, the next cycle must be simulated for real.
func (p *PE) tickFabric(now uint64) (uint64, inertBucket, bool) {
	if now < p.reconfigUntil {
		p.Stack.Reconfig++
		return p.reconfigUntil, bucketReconfig, false
	}
	if p.pending >= 0 {
		if p.sys.tracer != nil {
			p.trace(now, trace.KindReconfigEnd, p.stages[p.pending].Name(), uint64(p.pending))
		}
		p.activate(now, p.pending)
		p.pending = -1
	}
	if now < p.stallUntil {
		p.Stack.Stall++
		return p.stallUntil, bucketStall, false
	}
	if p.active < 0 {
		// Nothing ever activated: pick the first ready stage (free initial
		// configuration at program start, as in the paper's setup phase).
		p.scanStages()
		if idx := p.pick(now, -1); idx >= 0 {
			p.activate(now, idx)
		} else {
			return p.cooldownWake(now, -1), p.accountBlocked(stage.NoInput), false
		}
	}
	s := p.stages[p.active]
	fired := 0
	blocked := stage.Sleep
	// In/Out/Mem were hoisted into p.ctx at activation; only the per-cycle
	// fields are reset here.
	p.ctx.Now = now
	p.ctx.ExtraStall = 0
	p.ctx.FiredCtrl = false
	width := s.Width()
	for i := 0; i < width; i++ {
		st := s.Kernel.TryFire(&p.ctx)
		if st != stage.Fired {
			if i == 0 {
				blocked = st
			}
			break
		}
		fired++
		s.Firings++
		if p.ctx.FiredCtrl {
			break // control values are handled serially (Sec. 5.6)
		}
	}
	if fired > 0 {
		p.firedSinceAct = true
		p.firedNow = true
		p.Stack.Issued++
		if p.ctx.ExtraStall > 0 {
			p.stallUntil = now + 1 + p.ctx.ExtraStall
		}
		return now + 1, bucketNone, false
	}
	// Blocked. In Fifer mode, ask the scheduler for another stage.
	p.scanStages()
	slide := false
	if p.cfg.Mode == ModeFifer && len(p.stages) > 1 {
		if !p.firedSinceAct {
			// This configuration never fired: it looked ready but is
			// back-pressured in a way occupancies cannot see. Cool it down
			// so the scheduler explores other stages instead of ping-
			// ponging between mutually blocked ones.
			p.cooldownUntil[p.active] = now + schedCooldown
			slide = true
		}
		if idx := p.pick(now, p.active); idx >= 0 {
			p.beginReconfig(now, idx)
			p.Stack.Reconfig++
			return now + 1, bucketNone, false
		}
	}
	return p.cooldownWake(now, p.active), p.accountBlocked(blocked), slide
}

// cooldownWake returns the earliest future cycle at which pick(cycle, except)
// could newly succeed with today's queue state: the soonest cooldown expiry
// among stages that are ready but cooling. With none, only external token
// flow — some other component's action — can unblock this PE.
func (p *PE) cooldownWake(now uint64, except int) uint64 {
	w := horizonNever
	for i := range p.stages {
		if i == except || !p.scanReady[i] {
			continue
		}
		if cu := p.cooldownUntil[i]; now < cu && cu < w {
			w = cu
		}
	}
	return w
}

// pick implements the scheduling policy over stages other than `except`,
// returning -1 when no stage is ready.
func (p *PE) pick(now uint64, except int) int {
	best, bestWork := -1, 0
	for i := range p.stages {
		if i == except || now < p.cooldownUntil[i] || !p.scanReady[i] {
			continue
		}
		w := p.scanWork[i]
		switch p.cfg.SchedPolicy {
		case PolicyMostWork:
			if w > bestWork {
				best, bestWork = i, w
			}
		case PolicyRoundRobin:
			// First ready stage after `except`, cyclically.
			if best == -1 {
				best, bestWork = i, w
			}
			if except >= 0 && i > except {
				return i
			}
		}
	}
	return best
}

// beginReconfig starts the three-step reconfiguration process of Sec. 5.1:
// drain in-flight operations, load the new configuration from the L1 into
// the unused configuration slot (in parallel when double-buffered), then
// activate it (2-cycle dead time).
func (p *PE) beginReconfig(now uint64, next int) {
	var period uint64
	if !p.cfg.ZeroCostReconfig {
		drain := uint64(p.stages[p.active].Depth())
		load := p.configLoadCycles(now, p.stages[next])
		act := p.cfg.Fabric.ActivationCycles
		if p.cfg.DoubleBuffered {
			period = max64(drain, load) + act
		} else {
			period = drain + load + act
		}
	}
	outgoing := p.stages[p.active]
	_ = outgoing // residence recorded at activation of `next`
	p.reconfigUntil = now + period
	p.pending = next
	p.SumReconfig += period
	p.Reconfigs++
	if p.sys.tracer != nil {
		p.trace(now, trace.KindReconfigBegin, p.stages[next].Name(), period)
	}
}

// configLoadCycles models streaming the next stage's configuration data from
// the L1 cache into the chained configuration cells, 64 bytes per cycle
// (Sec. 5.1). Configuration lines are cacheable, so the first switch to a
// stage may miss to the LLC while steady-state switches hit in the L1.
func (p *PE) configLoadCycles(now uint64, s *stage.Stage) uint64 {
	if s.Mapping == nil {
		return 10 // fixed cost for unmapped (test) stages
	}
	base := mem.Addr(s.Mapping.ConfigAddr)
	nlines := (s.Mapping.ConfigBytes + mem.LineBytes - 1) / mem.LineBytes
	var last uint64 = now
	for i := 0; i < nlines; i++ {
		ready := p.Mem.LoadTiming(now+uint64(i), base+mem.Addr(i*mem.LineBytes))
		if ready > last {
			last = ready
		}
	}
	return last - now
}

func (p *PE) activate(now uint64, idx int) {
	if p.Activations > 0 {
		p.SumResidence += now - p.lastActivate
	}
	p.lastActivate = now
	p.Activations++
	p.active = idx
	p.firedSinceAct = false
	// Hoist the per-cycle Ctx rebuild: In/Out/Mem only change on activation
	// (stage ports are wired once, at program build).
	s := p.stages[idx]
	p.ctx.In, p.ctx.Out, p.ctx.Mem = s.In, s.Out, p.Mem
	if p.sys.tracer != nil {
		p.trace(now, trace.KindStageSwitch, s.Name(), uint64(idx))
	}
}

// accountBlocked attributes a non-firing cycle to the queue or idle bucket
// and returns the bucket it charged (the bucket an inert window would keep
// charging). A PE is "idle" only when completely inactive — no resident
// stage has any input work and no DRM is busy — i.e., it is waiting on
// other PEs. Any other blockage is a full/empty-queue stall.
func (p *PE) accountBlocked(st stage.Status) inertBucket {
	if st == stage.NoOutput {
		p.Stack.Queue++
		return bucketQueue
	}
	for i := range p.stages {
		if p.scanWork[i] > 0 {
			p.Stack.Queue++
			return bucketQueue
		}
	}
	for _, d := range p.DRMs {
		if d.Busy() {
			p.Stack.Queue++
			return bucketQueue
		}
	}
	p.Stack.Idle++
	return bucketIdle
}

// Reconfiguring reports whether the PE is inside a reconfiguration period
// at the given cycle.
func (p *PE) Reconfiguring(now uint64) bool {
	return now < p.reconfigUntil || p.pending >= 0
}

// FaultDelayReconfig is a fault-injection hook (internal/faults): it
// extends an in-progress reconfiguration by extra cycles, modeling a
// configuration load that never arrives. It reports whether a
// reconfiguration was in progress to delay.
func (p *PE) FaultDelayReconfig(now uint64, extra uint64) bool {
	if !p.Reconfiguring(now) {
		return false
	}
	if p.reconfigUntil < now {
		p.reconfigUntil = now
	}
	p.reconfigUntil += extra
	return true
}

// MeanResidence returns the average residence time of a configuration on
// this PE, in cycles (Table 5).
func (p *PE) MeanResidence() float64 {
	n := p.Activations
	if n <= 1 {
		return 0
	}
	return float64(p.SumResidence) / float64(n-1)
}

// MeanReconfigPeriod returns the average reconfiguration period (Table 5).
func (p *PE) MeanReconfigPeriod() float64 {
	if p.Reconfigs == 0 {
		return 0
	}
	return float64(p.SumReconfig) / float64(p.Reconfigs)
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
