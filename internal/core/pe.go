package core

import (
	"fmt"

	"fifer/internal/mem"
	"fifer/internal/queue"
	"fifer/internal/stage"
	"fifer/internal/trace"
)

// PE is one processing element: a CGRA fabric with its private L1 cache,
// queue memory, DRMs, and — in Fifer mode — a scheduler that time-
// multiplexes resident stage configurations onto the fabric (Fig. 7).
type PE struct {
	ID   int
	sys  *System
	cfg  *Config
	Mem  *mem.Port
	QMem *queue.Mem
	DRMs []*DRM

	stages []*stage.Stage
	active int // index into stages; -1 before the first activation

	// Reconfiguration state.
	reconfigUntil uint64 // busy reconfiguring until this cycle
	pending       int    // stage to activate when reconfiguration completes
	stallUntil    uint64 // fabric frozen by a coupled-load miss until this cycle

	// Scheduler hysteresis: a stage that was activated and then blocked
	// without firing once is kept off the candidate list for a short
	// cooldown. Without it, two mutually blocked high-occupancy stages can
	// ping-pong forever while a low-occupancy stage that would release the
	// back-pressure (e.g. a credit-starved consumer) never gets the fabric.
	cooldownUntil []uint64
	firedSinceAct bool

	// Statistics.
	Stack        CPIStack
	SumResidence uint64 // total cycles between consecutive activations
	Activations  uint64
	SumReconfig  uint64 // total cycles spent in reconfiguration periods
	Reconfigs    uint64
	lastActivate uint64
	ctx          stage.Ctx
}

// schedCooldown is the exclusion window after a fruitless activation.
const schedCooldown = 64

func newPE(id int, sys *System) *PE {
	cfg := &sys.Cfg
	pe := &PE{
		ID:      id,
		sys:     sys,
		cfg:     cfg,
		Mem:     sys.Hier.Port(id, sys.Backing),
		QMem:    queue.NewMem(fmt.Sprintf("pe%d", id), cfg.QueueMemBytes),
		active:  -1,
		pending: -1,
	}
	for i := 0; i < cfg.DRMsPerPE; i++ {
		// DRM address queues are small fixed buffers separate from the
		// 16 KB virtualized queue SRAM (Table 1 lists DRMs separately).
		in := queue.NewQueue(fmt.Sprintf("pe%d.drm%d.in", id, i), 16)
		pe.DRMs = append(pe.DRMs, NewDRM(fmt.Sprintf("pe%d.drm%d", id, i), in, pe.Mem, cfg.DRMOutstanding, cfg.DRMIssueWidth))
	}
	pe.wireTrace()
	return pe
}

// AllocQueue carves a queue out of this PE's queue memory.
func (p *PE) AllocQueue(name string, capTokens int) *queue.Queue {
	return p.QMem.MustAlloc(fmt.Sprintf("pe%d.%s", p.ID, name), capTokens)
}

// DRM returns the i-th decoupled reference machine.
func (p *PE) DRM(i int) *DRM { return p.DRMs[i] }

// AddStage makes a stage resident on this PE. In static mode, at most one
// stage may be resident (the hardware has a single configuration and no
// scheduler).
func (p *PE) AddStage(s *stage.Stage) {
	if p.cfg.Mode == ModeStatic && len(p.stages) >= 1 {
		panic(fmt.Sprintf("pe%d: static pipeline allows one stage per PE; %q would be the second",
			p.ID, s.Name()))
	}
	if s.Mapping != nil && s.Mapping.ConfigAddr == 0 {
		// Configurations are stored in cacheable memory (Sec. 5.1); place
		// the encoded bitstream now so reconfiguration fetches have real
		// addresses and real contents.
		bs := s.Mapping.Encode()
		base := p.sys.Backing.Alloc(len(bs))
		s.Mapping.ConfigAddr = uint64(base)
		for i := 0; i+mem.WordBytes <= len(bs); i += mem.WordBytes {
			var w uint64
			for b := 0; b < mem.WordBytes; b++ {
				w |= uint64(bs[i+b]) << (8 * b)
			}
			p.sys.Backing.Store(base+mem.Addr(i), w)
		}
	}
	p.stages = append(p.stages, s)
	p.cooldownUntil = append(p.cooldownUntil, 0)
}

// Stages returns the resident stages.
func (p *PE) Stages() []*stage.Stage { return p.stages }

// ActiveStage returns the currently configured stage, or nil.
func (p *PE) ActiveStage() *stage.Stage {
	if p.active < 0 || p.active >= len(p.stages) {
		return nil
	}
	return p.stages[p.active]
}

// Busy reports whether the PE has non-quiescent state: an unfinished
// reconfiguration, a frozen fabric, a busy DRM, or buffered tokens.
func (p *PE) Busy(now uint64) bool {
	if now < p.reconfigUntil || now < p.stallUntil || p.pending >= 0 {
		return true
	}
	for _, d := range p.DRMs {
		if d.Busy() {
			return true
		}
	}
	for _, s := range p.stages {
		if s.StateWork != nil && s.StateWork() > 0 {
			return true
		}
	}
	return p.QMem.Buffered() > 0
}

// Tick advances the PE by one cycle. Exactly one CPIStack bucket is
// incremented per call.
func (p *PE) Tick(now uint64) {
	for _, d := range p.DRMs {
		d.Tick(now)
	}
	if now < p.reconfigUntil {
		p.Stack.Reconfig++
		return
	}
	if p.pending >= 0 {
		if p.sys.tracer != nil {
			p.trace(now, trace.KindReconfigEnd, p.stages[p.pending].Name(), uint64(p.pending))
		}
		p.activate(now, p.pending)
		p.pending = -1
	}
	if now < p.stallUntil {
		p.Stack.Stall++
		return
	}
	if p.active < 0 {
		// Nothing ever activated: pick the first ready stage (free initial
		// configuration at program start, as in the paper's setup phase).
		if idx := p.pick(now, -1); idx >= 0 {
			p.activate(now, idx)
		} else {
			p.accountBlocked(stage.NoInput)
			return
		}
	}
	s := p.stages[p.active]
	fired := 0
	blocked := stage.Sleep
	p.ctx = stage.Ctx{Now: now, In: s.In, Out: s.Out, Mem: p.Mem}
	width := s.Width()
	for i := 0; i < width; i++ {
		st := s.Kernel.TryFire(&p.ctx)
		if st != stage.Fired {
			if i == 0 {
				blocked = st
			}
			break
		}
		fired++
		s.Firings++
		if p.ctx.FiredCtrl {
			break // control values are handled serially (Sec. 5.6)
		}
	}
	if fired > 0 {
		p.firedSinceAct = true
		p.Stack.Issued++
		if p.ctx.ExtraStall > 0 {
			p.stallUntil = now + 1 + p.ctx.ExtraStall
		}
		return
	}
	// Blocked. In Fifer mode, ask the scheduler for another stage.
	if p.cfg.Mode == ModeFifer && len(p.stages) > 1 {
		if !p.firedSinceAct {
			// This configuration never fired: it looked ready but is
			// back-pressured in a way occupancies cannot see. Cool it down
			// so the scheduler explores other stages instead of ping-
			// ponging between mutually blocked ones.
			p.cooldownUntil[p.active] = now + schedCooldown
		}
		if idx := p.pick(now, p.active); idx >= 0 {
			p.beginReconfig(now, idx)
			p.Stack.Reconfig++
			return
		}
	}
	p.accountBlocked(blocked)
}

// pick implements the scheduling policy over stages other than `except`,
// returning -1 when no stage is ready.
func (p *PE) pick(now uint64, except int) int {
	best, bestWork := -1, 0
	for i, s := range p.stages {
		if i == except || now < p.cooldownUntil[i] || !s.Ready() {
			continue
		}
		w := s.InputWork()
		switch p.cfg.SchedPolicy {
		case PolicyMostWork:
			if w > bestWork {
				best, bestWork = i, w
			}
		case PolicyRoundRobin:
			// First ready stage after `except`, cyclically.
			if best == -1 {
				best, bestWork = i, w
			}
			if except >= 0 && i > except {
				return i
			}
		}
	}
	return best
}

// beginReconfig starts the three-step reconfiguration process of Sec. 5.1:
// drain in-flight operations, load the new configuration from the L1 into
// the unused configuration slot (in parallel when double-buffered), then
// activate it (2-cycle dead time).
func (p *PE) beginReconfig(now uint64, next int) {
	var period uint64
	if !p.cfg.ZeroCostReconfig {
		drain := uint64(p.stages[p.active].Depth())
		load := p.configLoadCycles(now, p.stages[next])
		act := p.cfg.Fabric.ActivationCycles
		if p.cfg.DoubleBuffered {
			period = max64(drain, load) + act
		} else {
			period = drain + load + act
		}
	}
	outgoing := p.stages[p.active]
	_ = outgoing // residence recorded at activation of `next`
	p.reconfigUntil = now + period
	p.pending = next
	p.SumReconfig += period
	p.Reconfigs++
	if p.sys.tracer != nil {
		p.trace(now, trace.KindReconfigBegin, p.stages[next].Name(), period)
	}
}

// configLoadCycles models streaming the next stage's configuration data from
// the L1 cache into the chained configuration cells, 64 bytes per cycle
// (Sec. 5.1). Configuration lines are cacheable, so the first switch to a
// stage may miss to the LLC while steady-state switches hit in the L1.
func (p *PE) configLoadCycles(now uint64, s *stage.Stage) uint64 {
	if s.Mapping == nil {
		return 10 // fixed cost for unmapped (test) stages
	}
	base := mem.Addr(s.Mapping.ConfigAddr)
	nlines := (s.Mapping.ConfigBytes + mem.LineBytes - 1) / mem.LineBytes
	var last uint64 = now
	for i := 0; i < nlines; i++ {
		ready := p.Mem.LoadTiming(now+uint64(i), base+mem.Addr(i*mem.LineBytes))
		if ready > last {
			last = ready
		}
	}
	return last - now
}

func (p *PE) activate(now uint64, idx int) {
	if p.Activations > 0 {
		p.SumResidence += now - p.lastActivate
	}
	p.lastActivate = now
	p.Activations++
	p.active = idx
	p.firedSinceAct = false
	if p.sys.tracer != nil {
		p.trace(now, trace.KindStageSwitch, p.stages[idx].Name(), uint64(idx))
	}
}

// accountBlocked attributes a non-firing cycle to the queue or idle bucket.
// A PE is "idle" only when completely inactive — no resident stage has any
// input work and no DRM is busy — i.e., it is waiting on other PEs. Any
// other blockage is a full/empty-queue stall.
func (p *PE) accountBlocked(st stage.Status) {
	if st == stage.NoOutput {
		p.Stack.Queue++
		return
	}
	for _, s := range p.stages {
		if s.InputWork() > 0 {
			p.Stack.Queue++
			return
		}
	}
	for _, d := range p.DRMs {
		if d.Busy() {
			p.Stack.Queue++
			return
		}
	}
	p.Stack.Idle++
}

// Reconfiguring reports whether the PE is inside a reconfiguration period
// at the given cycle.
func (p *PE) Reconfiguring(now uint64) bool {
	return now < p.reconfigUntil || p.pending >= 0
}

// FaultDelayReconfig is a fault-injection hook (internal/faults): it
// extends an in-progress reconfiguration by extra cycles, modeling a
// configuration load that never arrives. It reports whether a
// reconfiguration was in progress to delay.
func (p *PE) FaultDelayReconfig(now uint64, extra uint64) bool {
	if !p.Reconfiguring(now) {
		return false
	}
	if p.reconfigUntil < now {
		p.reconfigUntil = now
	}
	p.reconfigUntil += extra
	return true
}

// MeanResidence returns the average residence time of a configuration on
// this PE, in cycles (Table 5).
func (p *PE) MeanResidence() float64 {
	n := p.Activations
	if n <= 1 {
		return 0
	}
	return float64(p.SumResidence) / float64(n-1)
}

// MeanReconfigPeriod returns the average reconfiguration period (Table 5).
func (p *PE) MeanReconfigPeriod() float64 {
	if p.Reconfigs == 0 {
		return 0
	}
	return float64(p.SumReconfig) / float64(p.Reconfigs)
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
