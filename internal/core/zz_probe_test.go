package core

import (
	"fmt"
	"reflect"
	"testing"
)

// Temporary review probe: widen the random-pipeline differential to many
// seeds, focusing on occupancy samples and metrics rows.
func TestProbeShardInvarianceManySeeds(t *testing.T) {
	for seed := int64(1); seed <= 150; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			wantRes, wantErr, wantSys, wantCol, wantSunk := runShardPipeline(t, seed, 1, false)
			if wantErr != nil {
				t.Fatalf("sequential kernel failed: %v", wantErr)
			}
			_ = wantSunk
			for _, shards := range []int{2, 3, 4} {
				res, err, sys, col, _ := runShardPipeline(t, seed, shards, false)
				if err != nil {
					t.Fatalf("shards%d: %v", shards, err)
				}
				if got, want := sys.MeanQueueOccupancy(), wantSys.MeanQueueOccupancy(); got != want {
					t.Errorf("shards%d: mean queue occupancy %v, sequential %v", shards, got, want)
				}
				if !reflect.DeepEqual(res, wantRes) {
					t.Errorf("shards%d: Result differs\nsharded:    %+v\nsequential: %+v", shards, res, wantRes)
				}
				if !reflect.DeepEqual(col.Rows(), wantCol.Rows()) {
					t.Errorf("shards%d: metrics rows differ", shards)
				}
				if !reflect.DeepEqual(col.Events(), wantCol.Events()) {
					t.Errorf("shards%d: events differ", shards)
				}
			}
		})
	}
}
