package core

import (
	"fmt"

	"fifer/internal/queue"
)

// AuditLive validates the invariants that must hold at every cycle of a
// healthy simulation (unlike CheckInvariants, which also asserts end-of-run
// quiescence). Run calls it every Cfg.AuditCycles cycles; fault-injection
// tests call it directly. It returns nil or an error wrapping ErrInvariant
// that names the failing invariant and component.
//
// The checks, in order:
//
//   - cpi-accounting: every PE's CPI stack sums to the elapsed cycles.
//   - queue-occupancy: no queue holds more tokens than its capacity, and
//     enqueue/dequeue counters reconcile with the buffered count.
//   - sram-accounting: per-PE queue SRAM usage equals the sum of allocated
//     queue footprints and fits the configured budget.
//   - credit-conservation: every arbiter's outstanding credits plus pinned
//     credits equal its queue capacity; no port holds negative credits; no
//     more credited senders are recorded than tokens buffered.
//   - drm-inflight: no DRM exceeds its outstanding-access bound.
func (s *System) AuditLive() error {
	for _, pe := range s.PEs {
		if total := pe.Stack.Total(); total != s.Cycle {
			return auditErr("cpi-accounting", "pe%d: CPI stack sums to %d, want %d cycles",
				pe.ID, total, s.Cycle)
		}
		used := pe.QMem.TotalBytes() - pe.QMem.FreeBytes()
		footprint := 0
		for _, q := range pe.QMem.Queues() {
			if err := auditQueue(q); err != nil {
				return err
			}
			footprint += q.Cap() * queue.TokenBytes
		}
		if footprint != used || used > pe.QMem.TotalBytes() {
			return auditErr("sram-accounting", "pe%d: queues occupy %d B but %d B are accounted (budget %d B)",
				pe.ID, footprint, used, pe.QMem.TotalBytes())
		}
		if inc, rescan, ok := pe.QMem.CheckBuffered(); !ok {
			return auditErr("queue-occupancy", "pe%d: incremental buffered count %d != rescan %d",
				pe.ID, inc, rescan)
		}
		for _, d := range pe.DRMs {
			if err := auditQueue(d.in); err != nil {
				return err
			}
			// A scan or stride that completes its range pushes the data
			// token and its boundary control token in one issue, so the
			// reorder buffer can briefly hold one entry beyond the
			// outstanding-access bound; anything past that is corruption.
			if got := d.inflight.Len(); got > d.max+1 {
				return auditErr("drm-inflight", "%s: %d entries in flight, bound is %d (+1 boundary slack)",
					d.Name(), got, d.max)
			}
		}
	}
	for _, a := range s.arbiters {
		q := a.Queue()
		if got, want := a.TotalCredits(), q.Cap(); got != want {
			return auditErr("credit-conservation", "arbiter %q: %d credits outstanding, want %d",
				q.Name(), got, want)
		}
		for i := 0; i < a.Ports(); i++ {
			if c := a.Port(i).Credits(); c < 0 {
				return auditErr("credit-conservation", "arbiter %q port %d: negative credit count %d",
					q.Name(), i, c)
			}
		}
		if credited, buffered := a.CreditedBuffered(), q.Len(); credited > buffered {
			return auditErr("credit-conservation", "arbiter %q: %d credited senders recorded but only %d tokens buffered (dropped grant?)",
				q.Name(), credited, buffered)
		}
	}
	return nil
}

// auditQueue checks one queue's occupancy bounds and flux accounting.
func auditQueue(q *queue.Queue) error {
	if q.Len() < 0 || q.Len() > q.Cap() {
		return auditErr("queue-occupancy", "queue %q: %d tokens buffered, capacity %d",
			q.Name(), q.Len(), q.Cap())
	}
	if q.Enqueued-q.Dequeued != uint64(q.Len()) {
		return auditErr("queue-occupancy", "queue %q: %d enqueued - %d dequeued != %d buffered",
			q.Name(), q.Enqueued, q.Dequeued, q.Len())
	}
	return nil
}

// auditErr wraps ErrInvariant with the invariant's name and detail.
func auditErr(invariant, format string, args ...any) error {
	return fmt.Errorf("%w: %s: %s", ErrInvariant, invariant, fmt.Sprintf(format, args...))
}
