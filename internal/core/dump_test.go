package core

import (
	"strings"
	"testing"

	"fifer/internal/queue"
	"fifer/internal/stage"
)

// TestDumpNamesBlockedState drives a deliberately wedged system — a stage
// that never fires over a full input queue, plus a DRM blocked on a full
// output — and asserts Dump() names each piece of stuck state: the blocked
// stage, its queue occupancies, and the busy DRM. This is the contract
// deadlock diagnosis rests on.
func TestDumpNamesBlockedState(t *testing.T) {
	cfg := testConfig(1)
	cfg.WatchdogCycles = 0
	cfg.AuditCycles = 0
	cfg.MaxCycles = 400
	sys := NewSystem(cfg)
	pe := sys.PE(0)

	qin := pe.AllocQueue("qin", 4)
	for i := 0; i < 4; i++ {
		qin.Enq(queue.Data(uint64(i)))
	}
	pe.AddStage(&stage.Stage{
		Kernel: stage.KernelFunc{KernelName: "wedged", Fn: func(*stage.Ctx) stage.Status {
			return stage.NoOutput
		}},
		Mapping:   passDFG("wedged"),
		In:        []stage.InPort{stage.LocalPort{Q: qin}},
		StateWork: func() int { return 2 },
	})

	// A DRM whose 1-slot output queue fills immediately: it stays busy with
	// addresses buffered and completions it cannot deliver.
	arr := sys.Backing.AllocSlice([]uint64{1, 2, 3, 4})
	dout := pe.AllocQueue("dout", 1)
	d := pe.DRM(0)
	d.Configure(DRMDereference, stage.LocalPort{Q: dout})
	for i := 0; i < 4; i++ {
		d.In().Enq(queue.Data(uint64(arr) + uint64(i*8)))
	}

	if _, err := sys.Run(ProgramFunc(func(*System) bool { return false })); err == nil {
		t.Fatal("wedged system ran to completion")
	}

	dump := sys.Dump()
	for _, want := range []string{
		"active=wedged",          // the blocked stage is the active one
		"stage wedged",           // per-stage line
		"stateWork=2",            // register-held work is visible
		"queue pe0.qin len=4/4",  // full input queue occupancy
		"queue pe0.dout len=1/1", // full DRM output queue
		"drm pe0.drm0",           // the busy DRM
		"busy",
	} {
		if !strings.Contains(dump, want) {
			t.Errorf("Dump() lacks %q:\n%s", want, dump)
		}
	}

	summary := sys.BlockedSummary(24)
	for _, want := range []string{"wait-for", "wedged", "pe0.dout"} {
		if !strings.Contains(summary, want) {
			t.Errorf("BlockedSummary lacks %q:\n%s", want, summary)
		}
	}
}
