package core

import (
	"strings"
	"testing"

	"fifer/internal/cgra"
	"fifer/internal/queue"
	"fifer/internal/stage"
)

// wideDFG maps to multiple replicated datapaths.
func wideDFG(name string) *cgra.Mapping {
	g := cgra.NewDFG(name)
	v := g.Deq(0)
	g.Enq(0, v)
	m, err := cgra.Place(g, DefaultConfig().Fabric, true)
	if err != nil {
		panic(err)
	}
	return m
}

func TestSIMDGroupsFiringsPerCycle(t *testing.T) {
	run := func(replicate bool) uint64 {
		cfg := testConfig(1)
		cfg.SIMDReplication = replicate
		sys := NewSystem(cfg)
		pe := sys.PE(0)
		q := pe.AllocQueue("q", 512)
		got := 0
		s := sinkStage("sink", stage.LocalPort{Q: q}, &got)
		if replicate {
			s.Mapping = wideDFG("sink")
		}
		pe.AddStage(s)
		for i := 0; i < 400; i++ {
			q.Enq(queue.Data(uint64(i)))
		}
		if _, err := sys.Run(ProgramFunc(func(*System) bool { return false })); err != nil {
			t.Fatal(err)
		}
		if got != 400 {
			t.Fatalf("consumed %d, want 400", got)
		}
		return sys.Cycle
	}
	wide := run(true)
	narrow := run(false)
	if wide*2 >= narrow {
		t.Fatalf("SIMD replication did not speed up draining: %d vs %d cycles", wide, narrow)
	}
}

func TestControlValuesHandledSerially(t *testing.T) {
	// A width-W stage consuming data tokens drains W per cycle, but control
	// tokens break the group (Sec. 5.6).
	run := func(ctrlEvery int) uint64 {
		sys := NewSystem(testConfig(1))
		pe := sys.PE(0)
		q := pe.AllocQueue("q", 512)
		got := 0
		s := &stage.Stage{
			Kernel: stage.KernelFunc{KernelName: "sink", Fn: func(c *stage.Ctx) stage.Status {
				tok, ok := c.In[0].Pop()
				if !ok {
					return stage.NoInput
				}
				if tok.Ctrl {
					c.FiredCtrl = true
				}
				got++
				return stage.Fired
			}},
			Mapping: wideDFG("sink"),
			In:      []stage.InPort{stage.LocalPort{Q: q}},
		}
		pe.AddStage(s)
		for i := 0; i < 400; i++ {
			if ctrlEvery > 0 && i%ctrlEvery == 0 {
				q.Enq(queue.Ctrl(uint64(i)))
			} else {
				q.Enq(queue.Data(uint64(i)))
			}
		}
		if _, err := sys.Run(ProgramFunc(func(*System) bool { return false })); err != nil {
			t.Fatal(err)
		}
		return sys.Cycle
	}
	dataOnly := run(0)
	ctrlHeavy := run(2)
	if ctrlHeavy <= dataOnly {
		t.Fatalf("control tokens did not serialize: %d vs %d cycles", ctrlHeavy, dataOnly)
	}
}

func TestSchedulerCooldownBreaksPingPong(t *testing.T) {
	// Two stages whose outputs are mutually full, plus a third that drains
	// them: without cooldown the most-work policy ping-pongs between the
	// first two forever (the PRD livelock); with it, the system completes.
	cfg := testConfig(1)
	cfg.MaxCycles = 2_000_000
	sys := NewSystem(cfg)
	pe := sys.PE(0)
	qa := pe.AllocQueue("qa", 128)
	qb := pe.AllocQueue("qb", 8)
	got := 0
	// Stage A: forwards qa -> qb (big backlog on qa, tiny qb).
	pe.AddStage(passStage("a", stage.LocalPort{Q: qa}, stage.LocalPort{Q: qb}))
	// Stage B: drains qb.
	pe.AddStage(sinkStage("b", stage.LocalPort{Q: qb}, &got))
	for i := 0; i < 128; i++ {
		qa.Enq(queue.Data(uint64(i)))
	}
	if _, err := sys.Run(ProgramFunc(func(*System) bool { return false })); err != nil {
		t.Fatal(err)
	}
	if got != 128 {
		t.Fatalf("drained %d, want 128", got)
	}
}

func TestDumpRendersState(t *testing.T) {
	sys := NewSystem(testConfig(1))
	pe := sys.PE(0)
	q := pe.AllocQueue("q", 8)
	got := 0
	pe.AddStage(sinkStage("sink", stage.LocalPort{Q: q}, &got))
	q.Enq(queue.Data(1))
	out := sys.Dump()
	if !strings.Contains(out, "pe0") || !strings.Contains(out, "sink") {
		t.Fatalf("dump missing content:\n%s", out)
	}
}

func TestRoundRobinPolicyStillCompletes(t *testing.T) {
	cfg := testConfig(1)
	cfg.SchedPolicy = PolicyRoundRobin
	sys := NewSystem(cfg)
	pe := sys.PE(0)
	qa := pe.AllocQueue("qa", 64)
	qb := pe.AllocQueue("qb", 64)
	gotA, gotB := 0, 0
	pe.AddStage(sinkStage("a", stage.LocalPort{Q: qa}, &gotA))
	pe.AddStage(sinkStage("b", stage.LocalPort{Q: qb}, &gotB))
	for i := 0; i < 50; i++ {
		qa.Enq(queue.Data(0))
		qb.Enq(queue.Data(0))
	}
	if _, err := sys.Run(ProgramFunc(func(*System) bool { return false })); err != nil {
		t.Fatal(err)
	}
	if gotA != 50 || gotB != 50 {
		t.Fatalf("round-robin lost tokens: %d/%d", gotA, gotB)
	}
}
