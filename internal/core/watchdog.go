package core

import (
	"fmt"
	"strings"
)

// progressSig is a snapshot of every monotonic activity counter in the
// system. Two equal snapshots taken at different cycles prove that nothing
// — no datapath firing, no queue enqueue or dequeue, no memory access, no
// reconfiguration completion — happened in between: the definition of a
// deadlocked machine. Program rounds are deliberately excluded so a control
// program that spins without injecting work is caught too.
type progressSig struct {
	firings     uint64 // datapath firings across all stages
	activations uint64 // completed (re)configurations
	queueFlux   uint64 // enqueues + dequeues across all queue-memory queues
	drmFlux     uint64 // DRM accesses, deliveries, and address-queue traffic
	memAccesses uint64 // L1 accesses (covers coupled loads and config fetches)
}

// progressSig computes the current snapshot. It only reads statistics
// counters the simulation already maintains, so taking a snapshot cannot
// perturb results.
func (s *System) progressSig() progressSig {
	var sig progressSig
	for _, pe := range s.PEs {
		sig.activations += pe.Activations
		for _, st := range pe.stages {
			sig.firings += st.Firings
		}
		for _, q := range pe.QMem.Queues() {
			sig.queueFlux += q.Enqueued + q.Dequeued
		}
		for _, d := range pe.DRMs {
			sig.drmFlux += d.Accesses + d.Emitted + d.in.Enqueued + d.in.Dequeued
		}
	}
	for _, l1 := range s.Hier.L1s {
		sig.memAccesses += l1.Accesses
	}
	return sig
}

// WaitEdge is one edge of the wait-for summary: Waiter is stuck until
// WaitsOn changes state, for Reason.
type WaitEdge struct {
	Waiter  string // e.g. "pe1/fetch" or "pe0.drm2"
	WaitsOn string // queue name, "memory", "reconfiguration", "fabric"
	Reason  string
}

func (e WaitEdge) String() string {
	return fmt.Sprintf("%s -> %s (%s)", e.Waiter, e.WaitsOn, e.Reason)
}

// DeadlockReport is the structured diagnosis attached to ErrDeadlock: where
// the watchdog tripped, what each blocked component is waiting on, and a
// truncated state dump. It makes a deadlock diagnosable from the error
// alone, without re-running under a debugger.
type DeadlockReport struct {
	Cycle        uint64 // cycle at which the watchdog tripped
	LastProgress uint64 // last checkpoint at which progress was observed
	Window       uint64 // configured WatchdogCycles
	WaitFor      []WaitEdge
	Dump         string // truncated Dump() excerpt
}

// DeadlockError carries a DeadlockReport; it wraps ErrDeadlock so callers
// detect it with errors.Is and retrieve the report with errors.As.
type DeadlockError struct {
	Report DeadlockReport
}

// Error renders the report: headline, wait-for edges, dump excerpt.
func (e *DeadlockError) Error() string {
	r := e.Report
	var b strings.Builder
	fmt.Fprintf(&b, "%v: no progress since cycle %d (window %d, tripped at cycle %d)",
		ErrDeadlock, r.LastProgress, r.Window, r.Cycle)
	for _, edge := range r.WaitFor {
		fmt.Fprintf(&b, "\n  wait-for: %s", edge)
	}
	if r.Dump != "" {
		fmt.Fprintf(&b, "\n%s", r.Dump)
	}
	return b.String()
}

// Unwrap makes errors.Is(err, ErrDeadlock) work through the report.
func (e *DeadlockError) Unwrap() error { return ErrDeadlock }

// deadlockError builds the error the watchdog returns.
func (s *System) deadlockError(lastProgress uint64) error {
	return &DeadlockError{Report: DeadlockReport{
		Cycle:        s.Cycle,
		LastProgress: lastProgress,
		Window:       s.Cfg.WatchdogCycles,
		WaitFor:      s.WaitFor(),
		Dump:         truncateLines(s.Dump(), dumpExcerptLines),
	}}
}

// WaitFor computes the wait-for summary: for every blocked component, which
// stage, queue, DRM, or mechanism it is waiting on. It reflects the current
// cycle's state and is meaningful whenever the system is stuck (watchdog
// trips, MaxCycles exhaustion); on a healthy system it reports transient
// back-pressure.
func (s *System) WaitFor() []WaitEdge {
	now := s.Cycle
	var edges []WaitEdge
	for _, pe := range s.PEs {
		peName := fmt.Sprintf("pe%d", pe.ID)
		if now < pe.reconfigUntil || pe.pending >= 0 {
			edges = append(edges, WaitEdge{
				Waiter:  peName,
				WaitsOn: "reconfiguration",
				Reason:  fmt.Sprintf("reconfiguring until cycle %d", pe.reconfigUntil),
			})
		}
		if now < pe.stallUntil {
			edges = append(edges, WaitEdge{
				Waiter:  peName,
				WaitsOn: "memory",
				Reason:  fmt.Sprintf("fabric frozen by a coupled miss until cycle %d", pe.stallUntil),
			})
		}
		for _, st := range pe.stages {
			if st.InputWork() == 0 {
				continue // starved stages show up via their producers' edges
			}
			waiter := peName + "/" + st.Name()
			if st.OutputsBlocked() {
				for _, out := range st.Out {
					if out.Space() == 0 {
						edges = append(edges, WaitEdge{
							Waiter:  waiter,
							WaitsOn: portName(out),
							Reason:  "output full (no space or credits)",
						})
					}
				}
				continue
			}
			// The stage has work and nominal output space yet is not
			// firing. A kernel's firing may need several output slots (a
			// multi-token push, a SIMD group), so the tightest output is
			// the most likely blocker; with no outputs at all, the kernel
			// itself is stuck.
			if len(st.Out) == 0 {
				edges = append(edges, WaitEdge{
					Waiter:  waiter,
					WaitsOn: "fabric",
					Reason:  fmt.Sprintf("%d tokens of input work but not firing", st.InputWork()),
				})
				continue
			}
			tight := st.Out[0]
			for _, out := range st.Out[1:] {
				if out.Space() < tight.Space() {
					tight = out
				}
			}
			edges = append(edges, WaitEdge{
				Waiter:  waiter,
				WaitsOn: portName(tight),
				Reason: fmt.Sprintf("not firing with %d tokens of input work; tightest output has %d slots/credits left",
					st.InputWork(), tight.Space()),
			})
		}
		for _, d := range pe.DRMs {
			if !d.Busy() {
				continue
			}
			switch {
			case d.out != nil && d.out.Space() == 0:
				edges = append(edges, WaitEdge{
					Waiter:  d.Name(),
					WaitsOn: portName(d.out),
					Reason:  "output full (no space or credits)",
				})
			case d.inflight.Len() > 0:
				edges = append(edges, WaitEdge{
					Waiter:  d.Name(),
					WaitsOn: "memory",
					Reason:  fmt.Sprintf("%d accesses in flight", d.inflight.Len()),
				})
			default:
				edges = append(edges, WaitEdge{
					Waiter:  d.Name(),
					WaitsOn: "input",
					Reason:  fmt.Sprintf("%d buffered addresses", d.in.Len()),
				})
			}
		}
	}
	return edges
}
