package ooo

import "fifer/internal/mem"

// Machine is a 1- or 4-core OOO system sharing an LLC and main memory, the
// paper's "Serial OoO" and "OoO baseline 4-core" comparison systems.
type Machine struct {
	Cfg     Config
	Backing *mem.Backing
	Hier    *mem.Hierarchy
	Cores   []*Core
}

// NewMachine builds an OOO machine with n cores over the Table 2
// core-memory hierarchy and a backing store of backingBytes.
func NewMachine(n int, backingBytes int) *Machine {
	return NewMachineLLCDiv(n, backingBytes, 1)
}

// NewMachineLLCDiv is NewMachine with the shared LLC shrunk by llcDiv, used
// to keep working-set-to-cache ratios faithful on scaled-down inputs.
func NewMachineLLCDiv(n, backingBytes, llcDiv int) *Machine {
	if llcDiv < 1 {
		llcDiv = 1
	}
	h := mem.DefaultCoreHierarchy(n)
	h.LLCBytes /= llcDiv
	m := &Machine{
		Cfg:     DefaultConfig(),
		Backing: mem.NewBacking(backingBytes),
		Hier:    mem.NewHierarchy(h),
	}
	for i := 0; i < n; i++ {
		m.Cores = append(m.Cores, NewCore(m.Cfg, m.Hier.Port(i, m.Backing)))
	}
	return m
}

// Barrier synchronizes all cores to the maximum cycle (end of a parallel
// round) and returns that cycle.
func (m *Machine) Barrier() uint64 {
	var max uint64
	for _, c := range m.Cores {
		if c.Cycle() > max {
			max = c.Cycle()
		}
	}
	for _, c := range m.Cores {
		c.SetCycle(max)
	}
	return max
}

// Cycles returns the machine's completion time: the max core cycle.
func (m *Machine) Cycles() uint64 {
	var max uint64
	for _, c := range m.Cores {
		if c.Cycle() > max {
			max = c.Cycle()
		}
	}
	return max
}

// Result summarizes an OOO run for the reporting layer.
type Result struct {
	Cycles      uint64
	Instrs      uint64
	Loads       uint64
	Mispredicts uint64
	Issued      uint64 // cycles attributable to issue bandwidth
}

// Summarize gathers statistics across cores.
func (m *Machine) Summarize() Result {
	var r Result
	r.Cycles = m.Cycles()
	for _, c := range m.Cores {
		r.Instrs += c.Instrs
		r.Loads += c.Loads
		r.Mispredicts += c.Mispredicts
		r.Issued += c.IssuedCycles()
	}
	return r
}
