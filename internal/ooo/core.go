// Package ooo implements the out-of-order-core baselines: a trace-driven
// interval timing model of a Skylake-like 6-wide OOO core (Table 2),
// substituted for the paper's Pin-based simulator (see DESIGN.md §5). The
// model captures the first-order effects the paper's comparison relies on:
// wide but serialized instruction issue, ROB-limited memory-level
// parallelism, dependent-load serialization through the cache hierarchy,
// MSHR-limited outstanding misses, and branch-misprediction flushes.
//
// Applications drive a Core directly (there is no stored trace): each
// dynamic instruction is reported through Op/Load/Store/Branch as the
// reference implementation executes.
package ooo

import "fifer/internal/mem"

// Config parameterizes the core model.
type Config struct {
	IssueWidth       int    // instructions dispatched per cycle (6)
	ROB              int    // reorder-buffer entries (224, Skylake)
	MSHRs            int    // outstanding L1 misses (10)
	MispredictFlush  uint64 // cycles from resolve to redirect (~14)
	PredictorEntries int    // 2-bit counters in the toy branch predictor
}

// DefaultConfig returns the Table 2 Skylake-like core.
func DefaultConfig() Config {
	return Config{IssueWidth: 6, ROB: 224, MSHRs: 10, MispredictFlush: 14, PredictorEntries: 4096}
}

// Dep is a dataflow handle: the cycle at which a value becomes available.
// Zero means "ready from the start". Apps thread Deps from producer loads
// into dependent loads/branches to express indirection chains.
type Dep uint64

// Core is one out-of-order core's timing state.
type Core struct {
	cfg  Config
	port *mem.Port

	cycle uint64 // dispatch front: cycle of the instruction being dispatched
	slot  int    // dispatch slots used in the current cycle

	rob   []uint64 // completion times of in-flight instructions, FIFO
	robHd int
	robSz int

	mshr   []uint64 // completion times of outstanding misses, FIFO
	mshrHd int
	mshrSz int

	pred []uint8 // 2-bit saturating counters

	// Statistics.
	Instrs      uint64
	Loads       uint64
	Stores      uint64
	Branches    uint64
	Mispredicts uint64
	L1MissLoads uint64
}

// NewCore creates a core using the given memory port for loads/stores.
func NewCore(cfg Config, port *mem.Port) *Core {
	return &Core{
		cfg:  cfg,
		port: port,
		rob:  make([]uint64, cfg.ROB),
		mshr: make([]uint64, cfg.MSHRs),
		pred: make([]uint8, cfg.PredictorEntries),
	}
}

// Cycle returns the core's current cycle (the dispatch front).
func (c *Core) Cycle() uint64 { return c.cycle }

// Backing returns the functional store behind the core's memory port.
func (c *Core) Backing() *mem.Backing { return c.port.Backing() }

// SetCycle advances the core's clock (used for barriers in the multicore
// model: all cores resume at the max cycle).
func (c *Core) SetCycle(n uint64) {
	if n > c.cycle {
		c.cycle = n
		c.slot = 0
	}
}

// dispatch admits one instruction: consumes a dispatch slot, waits for a ROB
// entry, and records the instruction's completion time.
func (c *Core) dispatch(complete uint64) {
	c.Instrs++
	c.slot++
	if c.slot >= c.cfg.IssueWidth {
		c.slot = 0
		c.cycle++
	}
	// ROB full: dispatch stalls until the oldest instruction retires.
	if c.robSz == c.cfg.ROB {
		oldest := c.rob[c.robHd]
		c.robHd = (c.robHd + 1) % c.cfg.ROB
		c.robSz--
		if oldest > c.cycle {
			c.cycle = oldest
			c.slot = 0
		}
	}
	// In-order retirement: completion times must be monotone at the tail to
	// model the retire pointer; we clamp to the previous tail.
	if c.robSz > 0 {
		prev := c.rob[(c.robHd+c.robSz-1)%c.cfg.ROB]
		if complete < prev {
			complete = prev
		}
	}
	c.rob[(c.robHd+c.robSz)%c.cfg.ROB] = complete
	c.robSz++
}

// Op reports n independent single-cycle ALU instructions.
func (c *Core) Op(n int) {
	for i := 0; i < n; i++ {
		c.dispatch(c.cycle + 1)
	}
}

// Load reports a load of addr whose address operand is ready at dep.
// It returns the cycle the loaded value is available.
func (c *Core) Load(addr mem.Addr, dep Dep) Dep {
	c.Loads++
	issue := c.cycle
	if uint64(dep) > issue {
		issue = uint64(dep)
	}
	l1lat := c.port.L1().Latency()
	_, ready := c.port.Load(issue, addr)
	if ready > issue+l1lat {
		// Miss: occupy an MSHR; if all are busy, the miss waits for the
		// oldest outstanding one.
		c.L1MissLoads++
		if c.mshrSz == c.cfg.MSHRs {
			oldest := c.mshr[c.mshrHd]
			c.mshrHd = (c.mshrHd + 1) % c.cfg.MSHRs
			c.mshrSz--
			if oldest > issue {
				delay := oldest - issue
				ready += delay
			}
		}
		c.mshr[(c.mshrHd+c.mshrSz)%c.cfg.MSHRs] = ready
		c.mshrSz++
	}
	c.dispatch(ready)
	return Dep(ready)
}

// Store reports a store to addr (fire-and-forget through the write buffer).
func (c *Core) Store(addr mem.Addr) {
	c.Stores++
	c.port.Store(c.cycle, addr, c.port.Backing().Load(addr)) // timing only; value already written functionally
	c.dispatch(c.cycle + 1)
}

// StoreValue performs a functional store plus timing.
func (c *Core) StoreValue(addr mem.Addr, v uint64) {
	c.Stores++
	c.port.Store(c.cycle, addr, v)
	c.dispatch(c.cycle + 1)
}

// Branch reports a conditional branch at static site `site` whose condition
// resolves at dep. A 2-bit predictor decides whether it mispredicts; on a
// mispredict, dispatch restarts after the branch resolves plus the flush
// penalty.
func (c *Core) Branch(site uint64, taken bool, dep Dep) {
	c.Branches++
	resolve := c.cycle + 1
	if uint64(dep) > resolve {
		resolve = uint64(dep)
	}
	c.dispatch(resolve)
	idx := site % uint64(len(c.pred))
	ctr := c.pred[idx]
	predictTaken := ctr >= 2
	if predictTaken != taken {
		c.Mispredicts++
		redirect := resolve + c.cfg.MispredictFlush
		if redirect > c.cycle {
			c.cycle = redirect
			c.slot = 0
		}
	}
	if taken && ctr < 3 {
		c.pred[idx] = ctr + 1
	} else if !taken && ctr > 0 {
		c.pred[idx] = ctr - 1
	}
}

// IssuedCycles returns the cycles attributable to pure instruction issue
// (instructions / width) — the "issued" bucket of the Fig. 14 CPI stack.
func (c *Core) IssuedCycles() uint64 {
	return c.Instrs / uint64(c.cfg.IssueWidth)
}
