package ooo

import (
	"testing"

	"fifer/internal/mem"
)

// stream drives n independent loads with stride through a core.
func stream(c *Core, base mem.Addr, n int, stride int) {
	for i := 0; i < n; i++ {
		c.Load(base+mem.Addr(i*stride), 0)
		c.Op(2)
	}
}

func TestMulticoreScalesOnIndependentWork(t *testing.T) {
	work := 1 << 16
	m1 := NewMachine(1, 64<<20)
	base1 := m1.Backing.Alloc(work * 64)
	stream(m1.Cores[0], base1, work, 64)
	serial := m1.Cycles()

	m4 := NewMachine(4, 64<<20)
	for i, c := range m4.Cores {
		base := m4.Backing.Alloc(work / 4 * 64)
		_ = i
		stream(c, base, work/4, 64)
	}
	par := m4.Cycles()
	if par*2 >= serial {
		t.Fatalf("4-core %d cycles not at least 2x faster than 1-core %d", par, serial)
	}
}

func TestDependentLoadsSerialize(t *testing.T) {
	m := NewMachine(1, 64<<20)
	c := m.Cores[0]
	base := m.Backing.Alloc(1 << 20)
	// Independent misses overlap.
	for i := 0; i < 256; i++ {
		c.Load(base+mem.Addr(i*4096), 0)
	}
	indep := m.Cycles()

	m2 := NewMachine(1, 64<<20)
	c2 := m2.Cores[0]
	base2 := m2.Backing.Alloc(1 << 20)
	dep := Dep(0)
	for i := 0; i < 256; i++ {
		dep = c2.Load(base2+mem.Addr(i*4096), dep)
	}
	chained := m2.Cycles()
	if chained < indep*2 {
		t.Fatalf("dependent chain (%d cycles) should be much slower than independent loads (%d)", chained, indep)
	}
}

func TestROBLimitsMLP(t *testing.T) {
	// A tiny ROB should hurt independent-miss throughput.
	big := DefaultConfig()
	small := DefaultConfig()
	small.ROB = 16
	run := func(cfg Config) uint64 {
		h := mem.NewHierarchy(mem.DefaultCoreHierarchy(1))
		b := mem.NewBacking(64 << 20)
		c := NewCore(cfg, h.Port(0, b))
		base := b.Alloc(16 << 20)
		for i := 0; i < 4096; i++ {
			c.Load(base+mem.Addr(i*4096), 0)
			c.Op(4)
		}
		return c.Cycle()
	}
	if run(small) <= run(big) {
		t.Fatal("smaller ROB should not be faster")
	}
}

func TestBranchMispredictsCost(t *testing.T) {
	run := func(pattern func(i int) bool) uint64 {
		m := NewMachine(1, 1<<20)
		c := m.Cores[0]
		for i := 0; i < 4096; i++ {
			c.Op(1)
			c.Branch(1, pattern(i), Dep(c.Cycle()+20))
		}
		return m.Cycles()
	}
	predictable := run(func(int) bool { return true })
	random := run(func(i int) bool { return i*2654435761%97 < 48 })
	if random <= predictable {
		t.Fatal("unpredictable branches should cost more than predictable ones")
	}
}

func TestBarrierAndSummarize(t *testing.T) {
	m := NewMachine(2, 1<<20)
	m.Cores[0].Op(600)
	m.Cores[1].Op(60)
	c0 := m.Cores[0].Cycle()
	if got := m.Barrier(); got != c0 {
		t.Fatalf("barrier = %d, want max %d", got, c0)
	}
	if m.Cores[1].Cycle() != c0 {
		t.Fatal("lagging core not advanced")
	}
	s := m.Summarize()
	if s.Instrs != 660 || s.Cycles != c0 {
		t.Fatalf("summary wrong: %+v", s)
	}
}

func TestStoreValueFunctional(t *testing.T) {
	m := NewMachine(1, 1<<20)
	a := m.Backing.AllocWords(1)
	m.Cores[0].StoreValue(a, 99)
	if m.Backing.Load(a) != 99 {
		t.Fatal("store value not applied")
	}
}

func TestLLCDivMachine(t *testing.T) {
	m := NewMachineLLCDiv(1, 1<<20, 4)
	if m.Hier.Config.LLCBytes != (2<<20)/4 {
		t.Fatalf("LLC = %d", m.Hier.Config.LLCBytes)
	}
}
