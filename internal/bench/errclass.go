package bench

import (
	"errors"
	"fmt"

	"fifer/internal/core"
)

// ErrJobTimeout reports that one job exceeded the sweep's per-job
// wall-clock deadline (Options.JobTimeout). The deadline is enforced
// through the core cancellation hook — the simulation goroutine is stopped
// cooperatively, never abandoned — so a timed-out job still surfaces its
// stop cycle and blocked-state excerpt under this error.
var ErrJobTimeout = errors.New("bench: job exceeded its wall-clock deadline")

// Error classes. Every job error maps onto exactly one class; the class is
// what the journal persists, what degraded tables print, and what Resume
// consults to decide replay-vs-reschedule.
const (
	ClassOK          = "ok"
	ClassCanceled    = "canceled"         // sweep canceled (Options.Cancel); rescheduled on resume
	ClassTimeout     = "timeout"          // per-job deadline; rescheduled on resume
	ClassPanic       = "panic"            // recovered panic (*PanicError)
	ClassCycleBudget = "cycle-budget"     // ErrCycleBudget: simulation budget exhausted
	ClassDeadlock    = "deadlock"         // watchdog tripped (core.ErrDeadlock)
	ClassInvariant   = "invariant"        // live audit / queue corruption (core.ErrInvariant)
	ClassMismatch    = "journal-mismatch" // resumed journal disagrees with the job list
	ClassError       = "error"            // any other failure
)

// ErrorClass maps a job error onto its journal/report class.
func ErrorClass(err error) string {
	var pe *PanicError
	var re *ReplayedError
	switch {
	case err == nil:
		return ClassOK
	case errors.As(err, &re):
		return re.Class
	case errors.Is(err, ErrJobTimeout):
		return ClassTimeout
	case errors.Is(err, core.ErrCanceled):
		return ClassCanceled
	case errors.As(err, &pe):
		return ClassPanic
	case errors.Is(err, ErrCycleBudget):
		return ClassCycleBudget
	case errors.Is(err, core.ErrDeadlock):
		return ClassDeadlock
	case errors.Is(err, core.ErrInvariant):
		return ClassInvariant
	default:
		return ClassError
	}
}

// transientError reports whether err is worth retrying: recovered panics
// (often allocation pressure or a corrupted one-off state) and exhausted
// cycle budgets (retried with a doubled budget). Timeouts and cancellation
// are deliberate stops, and deadlock/invariant failures are deterministic
// simulator verdicts — retrying those would reproduce them exactly.
func transientError(err error) bool {
	var pe *PanicError
	return errors.As(err, &pe) || errors.Is(err, ErrCycleBudget)
}

// abortError returns the first unclassified error among results, or nil.
// Classified failures — simulation verdicts (panic, deadlock, invariant,
// cycle budget) and deliberate stops (canceled, timeout) — degrade tables
// cell by cell; an unclassified error means the job list itself is wrong
// (unknown app or input), which degraded rendering cannot report usefully,
// so drivers abort on it.
func abortError(results []JobResult) error {
	for _, r := range results {
		if r.Err != nil && ErrorClass(r.Err) == ClassError {
			return r.Err
		}
	}
	return nil
}

// ReplayedError stands in for a failure that happened in a previous,
// journaled run: the journal persists the class and rendered message, not
// the original error chain, so a resumed sweep reports the failure without
// re-executing the job. ErrorClass returns the original class unchanged.
type ReplayedError struct {
	Class string // original ErrorClass
	Msg   string // original err.Error(), as journaled
}

// Error renders the journaled failure, marked as replayed.
func (e *ReplayedError) Error() string {
	return fmt.Sprintf("bench: replayed from journal (%s): %s", e.Class, e.Msg)
}
