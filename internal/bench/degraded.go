package bench

import "fmt"

// Degraded-mode rendering: a partial sweep (canceled, or with failed jobs)
// still produces every table. Cells whose simulations are missing print an
// annotated placeholder carrying the error class instead of aborting table
// generation, and aggregates computed from a strict subset of their inputs
// are marked so a reader never mistakes a partial gmean for a complete one.

// degradedCell renders one table cell: the value when its inputs are
// complete, "value*" when the aggregate lost some inputs to errClass, and
// a "!class" placeholder when nothing usable remains.
func degradedCell(v float64, errClass string) string {
	switch {
	case errClass == "":
		return fmt.Sprintf("%.2f", v)
	case v == 0:
		return "!" + errClass
	default:
		return fmt.Sprintf("%.2f*", v)
	}
}
