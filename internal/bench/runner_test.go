package bench

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"fifer/internal/apps"
)

// stubJobs builds n distinguishable jobs for stubbed-runner tests.
func stubJobs(n int) []Job {
	jobs := make([]Job, n)
	for i := range jobs {
		jobs[i] = Job{App: "BFS", Input: fmt.Sprintf("in%d", i), Kind: apps.FiferPipe}
	}
	return jobs
}

// TestRunnerSubmissionOrder makes later-submitted jobs finish first and
// checks results still come back index-aligned with the job slice.
func TestRunnerSubmissionOrder(t *testing.T) {
	const n = 16
	r := Runner{
		Workers: 4,
		run: func(j Job, _ Options) (apps.Outcome, error) {
			var i int
			fmt.Sscanf(j.Input, "in%d", &i)
			time.Sleep(time.Duration(n-i) * time.Millisecond) // invert completion order
			return apps.Outcome{Cycles: uint64(i) + 1}, nil
		},
	}
	results := r.Run(Options{}, stubJobs(n))
	if len(results) != n {
		t.Fatalf("got %d results, want %d", len(results), n)
	}
	for i, res := range results {
		if res.Job.Input != fmt.Sprintf("in%d", i) {
			t.Fatalf("result %d holds job %q: results reordered", i, res.Job.Input)
		}
		if res.Outcome.Cycles != uint64(i)+1 {
			t.Fatalf("result %d has Cycles=%d, want %d", i, res.Outcome.Cycles, i+1)
		}
	}
}

// TestRunnerWorkerBound checks concurrency never exceeds Workers.
func TestRunnerWorkerBound(t *testing.T) {
	const workers = 3
	var inFlight, peak atomic.Int64
	r := Runner{
		Workers: workers,
		run: func(Job, Options) (apps.Outcome, error) {
			cur := inFlight.Add(1)
			for {
				p := peak.Load()
				if cur <= p || peak.CompareAndSwap(p, cur) {
					break
				}
			}
			time.Sleep(2 * time.Millisecond)
			inFlight.Add(-1)
			return apps.Outcome{}, nil
		},
	}
	r.Run(Options{}, stubJobs(24))
	if got := peak.Load(); got > workers {
		t.Fatalf("peak concurrency %d exceeds Workers=%d", got, workers)
	}
}

// TestRunnerErrorIsolation checks one failing job neither aborts nor
// reorders the rest of the batch.
func TestRunnerErrorIsolation(t *testing.T) {
	boom := errors.New("boom")
	r := Runner{
		Workers: 4,
		run: func(j Job, _ Options) (apps.Outcome, error) {
			if j.Input == "in5" {
				return apps.Outcome{}, boom
			}
			return apps.Outcome{Cycles: 7}, nil
		},
	}
	results := r.Run(Options{}, stubJobs(10))
	for i, res := range results {
		if i == 5 {
			if !errors.Is(res.Err, boom) {
				t.Fatalf("job 5: err = %v, want boom", res.Err)
			}
			continue
		}
		if res.Err != nil || res.Outcome.Cycles != 7 {
			t.Fatalf("job %d: err=%v cycles=%d; failure leaked into healthy jobs", i, res.Err, res.Outcome.Cycles)
		}
	}
	if bad := firstError(results); bad == nil || bad.Job.Input != "in5" {
		t.Fatalf("firstError = %+v, want job in5", bad)
	}
}

// TestRunnerProgress checks the callback is serialized and counts every
// completion exactly once.
func TestRunnerProgress(t *testing.T) {
	const n = 12
	var calls int
	seen := map[string]bool{}
	r := Runner{
		Workers: 4,
		run: func(Job, Options) (apps.Outcome, error) {
			return apps.Outcome{}, nil
		},
		// Progress runs under the runner's mutex, so plain ints/maps are
		// safe here; the race detector verifies that claim.
		Progress: func(done, total int, res JobResult) {
			calls++
			if done != calls {
				t.Errorf("done=%d on call %d: progress not monotone", done, calls)
			}
			if total != n {
				t.Errorf("total=%d, want %d", total, n)
			}
			if seen[res.Job.Input] {
				t.Errorf("job %s reported twice", res.Job.Input)
			}
			seen[res.Job.Input] = true
		},
	}
	r.Run(Options{}, stubJobs(n))
	if calls != n {
		t.Fatalf("progress called %d times, want %d", calls, n)
	}
}

// TestRunnerDefaultWorkers checks Workers<=0 still runs everything.
func TestRunnerDefaultWorkers(t *testing.T) {
	r := Runner{run: func(Job, Options) (apps.Outcome, error) {
		return apps.Outcome{Cycles: 1}, nil
	}}
	results := r.Run(Options{}, stubJobs(5))
	for i, res := range results {
		if res.Outcome.Cycles != 1 {
			t.Fatalf("job %d did not run", i)
		}
	}
}

// TestOptionsRunnerSerialDefault checks Options defaults to one worker so
// library callers keep serial behavior unless they opt in.
func TestOptionsRunnerSerialDefault(t *testing.T) {
	if w := (Options{}).runner("test").Workers; w != 1 {
		t.Fatalf("default worker count = %d, want 1", w)
	}
	if w := (Options{Jobs: 6}).runner("test").Workers; w != 6 {
		t.Fatalf("Jobs=6 worker count = %d, want 6", w)
	}
}
