package bench

import (
	"fmt"
	"io"

	"fifer/internal/core"
	"fifer/internal/energy"
	"fifer/internal/graph"
	"fifer/internal/sparse"
	"fifer/internal/stats"
)

// PrintTable1 renders the per-PE area breakdown (Table 1).
func PrintTable1(w io.Writer) {
	fmt.Fprintln(w, "Table 1: implementation costs for major components of a Fifer PE (45 nm, 2 GHz)")
	tbl := stats.NewTable("item", "area (mm^2)")
	tbl.Add("Reconfigurable fabric, 16x5 func. units", fmt.Sprintf("%.2f", energy.AreaFabricMM2))
	tbl.Add("4x double-precision FMA units", fmt.Sprintf("%.2f", energy.AreaFMAMM2))
	tbl.Add("16 KB queue SRAM", fmt.Sprintf("%.3f", energy.AreaQueueSRAMMM2))
	tbl.Add("4x decoupled reference machines (DRMs)", fmt.Sprintf("%.4f", energy.AreaDRMsMM2))
	tbl.Add("32 KB data cache", fmt.Sprintf("%.2f", energy.AreaDCacheMM2))
	tbl.Add("Total area (per PE)", fmt.Sprintf("%.2f", energy.AreaPEMM2))
	fmt.Fprint(w, tbl)
	fmt.Fprintf(w, "\nEach PE is %.1f%% of the area of an OOO core at the same node (paper: 4.6%%).\n",
		100*energy.AreaPEMM2/energy.AreaOOOCoreMM2)
}

// PrintTable2 renders the system configuration (Table 2).
func PrintTable2(w io.Writer) {
	cfg := core.DefaultConfig()
	fmt.Fprintln(w, "Table 2: configuration parameters of the evaluated system")
	tbl := stats.NewTable("component", "configuration")
	tbl.Add("PEs", fmt.Sprintf("%d PEs, 2 GHz, %dx%d func. unit mesh, 32 KB L1 (8-way, 4-cycle)",
		cfg.PEs, cfg.Fabric.Rows, cfg.Fabric.Cols))
	tbl.Add("Fifer", fmt.Sprintf("up to 16 queues per PE, virtualized on a %d KB buffer", cfg.QueueMemBytes>>10))
	tbl.Add("Cores", "1 or 4 cores, 2 GHz, Skylake-like: 6-wide OOO, 32 KB L1, 256 KB L2 (12-cycle)")
	tbl.Add("LLC", fmt.Sprintf("%d KB/PE or 2 MB/core, 16-way, 40-cycle latency", cfg.Hier.LLCBytes/cfg.PEs>>10))
	tbl.Add("Main mem", fmt.Sprintf("%d-cycle latency, 256 GB/s high-bandwidth memory", cfg.Hier.MemLatency))
	fmt.Fprint(w, tbl)
}

// Table3Row is one input graph's characteristics: the paper's published
// dataset stats next to the generated synthetic stand-in's.
type Table3Row struct {
	Graph, Domain, Dataset string
	PaperV, PaperE         int
	PaperDeg               float64
	GenV, GenE             int
	GenDeg                 float64
}

// Table3 generates every Table 3 input at the chosen scale and collects
// its characteristics; PrintTable3 renders the collected rows.
func Table3(opt Options) []Table3Row {
	rows := make([]Table3Row, 0, len(graph.Inputs))
	for _, in := range graph.Inputs {
		pv, pe, pd, domain := graph.PaperStats(in)
		g := graph.Generate(in, graph.Scale(opt.Scale), opt.Seed)
		rows = append(rows, Table3Row{
			Graph: string(in), Domain: domain, Dataset: graph.DatasetName(in),
			PaperV: pv, PaperE: pe, PaperDeg: pd,
			GenV: g.NumVertices(), GenE: g.NumEdges(), GenDeg: g.AvgDegree(),
		})
	}
	return rows
}

// PrintTable3 renders the input-graph characteristics (Table 3): paper
// datasets alongside the generated stand-ins at the chosen scale.
func PrintTable3(w io.Writer, opt Options) {
	fmt.Fprintln(w, "Table 3: input graphs (paper dataset -> generated synthetic stand-in)")
	tbl := stats.NewTable("graph", "domain", "paper V", "paper E", "paper deg", "gen V", "gen E", "gen deg")
	for _, r := range Table3(opt) {
		tbl.Add(r.Graph, r.Domain+" ("+r.Dataset+")", r.PaperV, r.PaperE, fmt.Sprintf("%.1f", r.PaperDeg),
			r.GenV, r.GenE, fmt.Sprintf("%.1f", r.GenDeg))
	}
	fmt.Fprint(w, tbl)
}

// Table4Row is one input matrix's characteristics.
type Table4Row struct {
	Matrix, Domain string
	PaperN         int
	PaperNNZ       float64
	GenN           int
	GenNNZ         float64
}

// Table4 generates every Table 4 matrix and collects its characteristics;
// PrintTable4 renders the collected rows.
func Table4(opt Options) []Table4Row {
	rows := make([]Table4Row, 0, len(sparse.Inputs))
	for _, in := range sparse.Inputs {
		pn, pd, domain := sparse.PaperStats(in)
		m := sparse.Generate(in, opt.Scale, opt.Seed)
		rows = append(rows, Table4Row{
			Matrix: string(in), Domain: domain, PaperN: pn, PaperNNZ: pd,
			GenN: m.NumRows, GenNNZ: m.AvgNNZPerRow(),
		})
	}
	return rows
}

// PrintTable4 renders the input-matrix characteristics (Table 4).
func PrintTable4(w io.Writer, opt Options) {
	fmt.Fprintln(w, "Table 4: input matrices (paper dataset -> generated synthetic stand-in)")
	tbl := stats.NewTable("matrix", "domain", "paper n", "paper nnz/row", "gen n", "gen nnz/row")
	for _, r := range Table4(opt) {
		tbl.Add(r.Matrix, r.Domain, r.PaperN, fmt.Sprintf("%.1f", r.PaperNNZ),
			r.GenN, fmt.Sprintf("%.1f", r.GenNNZ))
	}
	fmt.Fprint(w, tbl)
}
