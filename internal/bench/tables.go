package bench

import (
	"fmt"
	"io"

	"fifer/internal/core"
	"fifer/internal/energy"
	"fifer/internal/graph"
	"fifer/internal/sparse"
	"fifer/internal/stats"
)

// PrintTable1 renders the per-PE area breakdown (Table 1).
func PrintTable1(w io.Writer) {
	fmt.Fprintln(w, "Table 1: implementation costs for major components of a Fifer PE (45 nm, 2 GHz)")
	tbl := stats.NewTable("item", "area (mm^2)")
	tbl.Add("Reconfigurable fabric, 16x5 func. units", fmt.Sprintf("%.2f", energy.AreaFabricMM2))
	tbl.Add("4x double-precision FMA units", fmt.Sprintf("%.2f", energy.AreaFMAMM2))
	tbl.Add("16 KB queue SRAM", fmt.Sprintf("%.3f", energy.AreaQueueSRAMMM2))
	tbl.Add("4x decoupled reference machines (DRMs)", fmt.Sprintf("%.4f", energy.AreaDRMsMM2))
	tbl.Add("32 KB data cache", fmt.Sprintf("%.2f", energy.AreaDCacheMM2))
	tbl.Add("Total area (per PE)", fmt.Sprintf("%.2f", energy.AreaPEMM2))
	fmt.Fprint(w, tbl)
	fmt.Fprintf(w, "\nEach PE is %.1f%% of the area of an OOO core at the same node (paper: 4.6%%).\n",
		100*energy.AreaPEMM2/energy.AreaOOOCoreMM2)
}

// PrintTable2 renders the system configuration (Table 2).
func PrintTable2(w io.Writer) {
	cfg := core.DefaultConfig()
	fmt.Fprintln(w, "Table 2: configuration parameters of the evaluated system")
	tbl := stats.NewTable("component", "configuration")
	tbl.Add("PEs", fmt.Sprintf("%d PEs, 2 GHz, %dx%d func. unit mesh, 32 KB L1 (8-way, 4-cycle)",
		cfg.PEs, cfg.Fabric.Rows, cfg.Fabric.Cols))
	tbl.Add("Fifer", fmt.Sprintf("up to 16 queues per PE, virtualized on a %d KB buffer", cfg.QueueMemBytes>>10))
	tbl.Add("Cores", "1 or 4 cores, 2 GHz, Skylake-like: 6-wide OOO, 32 KB L1, 256 KB L2 (12-cycle)")
	tbl.Add("LLC", fmt.Sprintf("%d KB/PE or 2 MB/core, 16-way, 40-cycle latency", cfg.Hier.LLCBytes/cfg.PEs>>10))
	tbl.Add("Main mem", fmt.Sprintf("%d-cycle latency, 256 GB/s high-bandwidth memory", cfg.Hier.MemLatency))
	fmt.Fprint(w, tbl)
}

// PrintTable3 renders the input-graph characteristics (Table 3): paper
// datasets alongside the generated stand-ins at the chosen scale.
func PrintTable3(w io.Writer, opt Options) {
	fmt.Fprintln(w, "Table 3: input graphs (paper dataset -> generated synthetic stand-in)")
	tbl := stats.NewTable("graph", "domain", "paper V", "paper E", "paper deg", "gen V", "gen E", "gen deg")
	for _, in := range graph.Inputs {
		pv, pe, pd, domain := graph.PaperStats(in)
		g := graph.Generate(in, graph.Scale(opt.Scale), opt.Seed)
		tbl.Add(string(in), domain+" ("+graph.DatasetName(in)+")", pv, pe, fmt.Sprintf("%.1f", pd),
			g.NumVertices(), g.NumEdges(), fmt.Sprintf("%.1f", g.AvgDegree()))
	}
	fmt.Fprint(w, tbl)
}

// PrintTable4 renders the input-matrix characteristics (Table 4).
func PrintTable4(w io.Writer, opt Options) {
	fmt.Fprintln(w, "Table 4: input matrices (paper dataset -> generated synthetic stand-in)")
	tbl := stats.NewTable("matrix", "domain", "paper n", "paper nnz/row", "gen n", "gen nnz/row")
	for _, in := range sparse.Inputs {
		pn, pd, domain := sparse.PaperStats(in)
		m := sparse.Generate(in, opt.Scale, opt.Seed)
		tbl.Add(string(in), domain, pn, fmt.Sprintf("%.1f", pd),
			m.NumRows, fmt.Sprintf("%.1f", m.AvgNNZPerRow()))
	}
	fmt.Fprint(w, tbl)
}
