package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"sync"

	"fifer/internal/apps"
)

// The journal is an append-only JSONL file that makes a sweep crash-safe:
// every finished job — successful or not — is flushed as one self-checking
// record before the sweep moves on, so an interruption (SIGINT, OOM kill,
// power loss) loses at most the jobs that were in flight. ResumeJournal
// reads the records back, verifies them, and lets the Runner replay
// completed jobs instead of re-simulating them; because simulations are
// deterministic and outcomes round-trip JSON losslessly, a resumed sweep's
// tables are byte-identical to an uninterrupted run's.
//
// File layout: line 1 is a header binding the journal to its options
// (version, scale, seed, app subset); every further line is one Record.
// Each line carries a CRC32 of itself (computed with the CRC field zeroed),
// so torn writes and bit rot are detected rather than silently replayed. A
// truncated final line — the signature of a crash mid-write — is tolerated
// and discarded; a checksum mismatch on a complete line is a hard error.

// journalVersion is bumped whenever the record encoding changes
// incompatibly; ResumeJournal refuses journals from other versions.
const journalVersion = 1

// journalHeader is the first line of every journal.
type journalHeader struct {
	Journal string   `json:"journal"` // format tag, always "fifer-bench"
	Version int      `json:"version"`
	Scale   int      `json:"scale"`
	Seed    uint64   `json:"seed"`
	Apps    []string `json:"apps,omitempty"`
	CRC     uint32   `json:"crc"`
}

// Record is one journaled job completion. Sweep+Index key the record to a
// position in a driver's job list; App/Input/Kind/Merged fingerprint the
// job itself so a resumed run with a different job list fails loudly
// instead of attributing results to the wrong simulation.
type Record struct {
	Sweep   string        `json:"sweep"`
	Index   int           `json:"index"`
	App     string        `json:"app"`
	Input   string        `json:"input"`
	Kind    int           `json:"kind"`
	Merged  bool          `json:"merged,omitempty"`
	Attempt int           `json:"attempt"`
	Class   string        `json:"class"`
	Err     string        `json:"err,omitempty"`
	Outcome *apps.Outcome `json:"outcome,omitempty"`
	CRC     uint32        `json:"crc"`
}

type journalKey struct {
	sweep string
	index int
}

// Journal is the crash-safe result log a Runner writes to (and, after
// ResumeJournal, replays from). All methods are safe for concurrent use and
// safe on a nil receiver (a nil *Journal disables journaling), so the
// Runner calls unconditionally. Write failures do not poison results:
// the first one is latched and reported by Err/Close, and the sweep
// continues un-journaled.
type Journal struct {
	mu       sync.Mutex
	f        *os.File
	path     string
	err      error
	replay   map[journalKey]Record
	replayed int // durable records loaded by ResumeJournal
}

// CreateJournal starts a fresh journal at path (truncating any existing
// file) and writes the header that binds it to opt's workload identity.
func CreateJournal(path string, opt Options) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("bench: creating journal: %w", err)
	}
	j := &Journal{f: f, path: path}
	line, err := sealLine(headerFor(opt))
	if err == nil {
		_, err = f.Write(line)
	}
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("bench: writing journal header: %w", err)
	}
	return j, nil
}

// ResumeJournal reads an existing journal back, verifies the header against
// opt and every complete record against its checksum, and returns a Journal
// that (a) replays the verified records through any Runner using it and
// (b) appends new records after the verified prefix. A truncated final line
// is discarded as a crash artifact; any other corruption is an error.
func ResumeJournal(path string, opt Options) (*Journal, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("bench: resuming journal: %w", err)
	}
	lines := bytes.SplitAfter(data, []byte("\n"))
	// A final element without a trailing newline is a torn write from a
	// crash: drop it and everything after the last intact record.
	valid := len(data)
	if n := len(lines); n > 0 && len(lines[n-1]) > 0 {
		torn := lines[n-1]
		valid -= len(torn)
		lines = lines[:n-1]
	} else if n > 0 {
		// A file ending in \n splits into a final empty element; it is not
		// a record.
		lines = lines[:n-1]
	}
	if len(lines) == 0 || len(bytes.TrimSpace(lines[0])) == 0 {
		return nil, fmt.Errorf("bench: journal %s has no intact header (crashed before the first record?)", path)
	}
	var hdr journalHeader
	if err := verifyLine(lines[0], &hdr); err != nil {
		return nil, fmt.Errorf("bench: journal %s header: %w", path, err)
	}
	want := headerFor(opt)
	if hdr.Journal != want.Journal || hdr.Version != want.Version {
		return nil, fmt.Errorf("bench: journal %s is %s v%d, want %s v%d",
			path, hdr.Journal, hdr.Version, want.Journal, want.Version)
	}
	if hdr.Scale != want.Scale || hdr.Seed != want.Seed || !sameApps(hdr.Apps, want.Apps) {
		return nil, fmt.Errorf("bench: journal %s was written for scale=%d seed=%d apps=%v; current options are scale=%d seed=%d apps=%v",
			path, hdr.Scale, hdr.Seed, hdr.Apps, want.Scale, want.Seed, want.Apps)
	}
	j := &Journal{path: path, replay: map[journalKey]Record{}}
	for i, line := range lines[1:] {
		var rec Record
		if err := verifyLine(line, &rec); err != nil {
			return nil, fmt.Errorf("bench: journal %s record %d: %w", path, i+1, err)
		}
		// Last record wins: a retried or re-run job appends a newer record
		// for the same key, superseding the older one.
		j.replay[journalKey{rec.Sweep, rec.Index}] = rec
	}
	for _, rec := range j.replay {
		if durableClass(rec.Class) {
			j.replayed++
		}
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("bench: reopening journal for append: %w", err)
	}
	if valid < len(data) {
		// Cut the torn tail off before appending, or the next record would
		// be glued onto garbage.
		if err := f.Truncate(int64(valid)); err != nil {
			f.Close()
			return nil, fmt.Errorf("bench: truncating torn journal tail: %w", err)
		}
		if _, err := f.Seek(int64(valid), 0); err != nil {
			f.Close()
			return nil, fmt.Errorf("bench: seeking past journal prefix: %w", err)
		}
	}
	j.f = f
	return j, nil
}

// Path returns the journal's file path.
func (j *Journal) Path() string {
	if j == nil {
		return ""
	}
	return j.path
}

// Replayed returns how many distinct jobs ResumeJournal loaded durable
// records for — the work a resumed sweep will not redo.
func (j *Journal) Replayed() int {
	if j == nil {
		return 0
	}
	return j.replayed
}

// Err returns the first record-write failure, if any. Journaling errors
// never abort a sweep; callers that need durability check here (and Close)
// before trusting the journal for a future resume.
func (j *Journal) Err() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Close flushes and closes the journal file, returning the first error
// encountered over the journal's lifetime.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f != nil {
		if err := j.f.Close(); err != nil && j.err == nil {
			j.err = err
		}
		j.f = nil
	}
	return j.err
}

// record appends one finished job. Each record is a single Write of one
// line, so a crash can tear at most the final line — exactly what
// ResumeJournal tolerates.
func (j *Journal) record(sweep string, index int, res JobResult) {
	if j == nil {
		return
	}
	rec := Record{
		Sweep:   sweep,
		Index:   index,
		App:     res.Job.App,
		Input:   res.Job.Input,
		Kind:    int(res.Job.Kind),
		Merged:  res.Job.Merged,
		Attempt: res.Attempts,
		Class:   ErrorClass(res.Err),
	}
	if res.Err != nil {
		rec.Err = res.Err.Error()
	} else {
		out := res.Outcome
		rec.Outcome = &out
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return
	}
	line, err := sealLine(&rec)
	if err == nil {
		_, err = j.f.Write(line)
	}
	if err != nil && j.err == nil {
		j.err = fmt.Errorf("bench: journal write failed (sweep continues un-journaled): %w", err)
	}
}

// replayResult returns the journaled result for (sweep, index) if a durable
// record exists. Non-durable classes (canceled, timeout) report !ok so the
// Runner reschedules the job. A durable record whose job fingerprint does
// not match the job now at that index yields an explicit mismatch error —
// never a silently misattributed outcome.
func (j *Journal) replayResult(sweep string, index int, job Job) (JobResult, bool) {
	if j == nil {
		return JobResult{}, false
	}
	j.mu.Lock()
	rec, ok := j.replay[journalKey{sweep, index}]
	j.mu.Unlock()
	if !ok || !durableClass(rec.Class) {
		return JobResult{}, false
	}
	res := JobResult{Job: job, Replayed: true, Attempts: rec.Attempt}
	if rec.App != job.App || rec.Input != job.Input || rec.Kind != int(job.Kind) || rec.Merged != job.Merged {
		res.Err = &ReplayedError{Class: ClassMismatch, Msg: fmt.Sprintf(
			"%s record %d is for %s/%s kind=%d merged=%v, but the sweep scheduled %s/%s kind=%d merged=%v here — was the journal written with different options?",
			sweep, index, rec.App, rec.Input, rec.Kind, rec.Merged,
			job.App, job.Input, int(job.Kind), job.Merged)}
		return res, true
	}
	if rec.Class == ClassOK {
		if rec.Outcome == nil {
			res.Err = &ReplayedError{Class: ClassMismatch, Msg: "ok record with no outcome"}
			return res, true
		}
		res.Outcome = *rec.Outcome
		return res, true
	}
	res.Err = &ReplayedError{Class: rec.Class, Msg: rec.Err}
	return res, true
}

// durableClass reports whether a journaled class settles the job for good.
// Cancellation and timeouts describe the sweep that was interrupted, not
// the simulation itself, so those jobs run again on resume.
func durableClass(class string) bool {
	switch class {
	case ClassCanceled, ClassTimeout, ClassMismatch, "":
		return false
	}
	return true
}

// headerFor builds the header binding a journal to opt. Only fields that
// change what the jobs compute belong here: scheduling knobs (Jobs,
// timeouts, retries) may differ between the interrupted and resumed run.
func headerFor(opt Options) *journalHeader {
	return &journalHeader{Journal: "fifer-bench", Version: journalVersion, Scale: opt.Scale, Seed: opt.Seed, Apps: opt.Apps}
}

func sameApps(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// sealLine marshals v with its CRC field zeroed, computes the checksum,
// and re-marshals with the CRC set — one JSON line ready to append.
func sealLine(v any) ([]byte, error) {
	setCRC(v, 0)
	plain, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	setCRC(v, crc32.ChecksumIEEE(plain))
	sealed, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	return append(sealed, '\n'), nil
}

// verifyLine unmarshals one journal line into v and checks its CRC by
// re-marshaling with the CRC field zeroed — reproducing the exact bytes the
// checksum was computed over.
func verifyLine(line []byte, v any) error {
	if err := json.Unmarshal(line, v); err != nil {
		return fmt.Errorf("corrupt record (not valid JSON): %w", err)
	}
	want := getCRC(v)
	setCRC(v, 0)
	plain, err := json.Marshal(v)
	if err != nil {
		return err
	}
	if got := crc32.ChecksumIEEE(plain); got != want {
		return fmt.Errorf("checksum mismatch (stored %08x, computed %08x): journal corrupted", want, got)
	}
	setCRC(v, want)
	return nil
}

// setCRC and getCRC access the CRC field of the two sealed types.
func setCRC(v any, crc uint32) {
	switch r := v.(type) {
	case *journalHeader:
		r.CRC = crc
	case *Record:
		r.CRC = crc
	}
}

func getCRC(v any) uint32 {
	switch r := v.(type) {
	case *journalHeader:
		return r.CRC
	case *Record:
		return r.CRC
	}
	return 0
}
