package bench

import (
	"reflect"
	"testing"

	"fifer/internal/apps"
)

// TestParallelMatchesSerial is the determinism guarantee's pin: for every
// app at scale 0, the same (input, system, seed) run serially and through
// the parallel Runner must produce bit-identical apps.Outcome structs.
// Any hidden shared state (a package-level RNG, a memoized generated
// input) the concurrency audit missed shows up here — either as a
// DeepEqual mismatch or as a report under `go test -race`.
func TestParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("full determinism sweep")
	}
	opt := Options{Scale: 0, Seed: 1}
	var jobs []Job
	for _, app := range AppNames {
		input := InputsOf(app)[0]
		for _, kind := range apps.Kinds {
			jobs = append(jobs, Job{App: app, Input: input, Kind: kind})
		}
	}
	serial := Runner{Workers: 1}.Run(opt, jobs)
	parallel := Runner{Workers: 8}.Run(opt, jobs)
	if len(serial) != len(jobs) || len(parallel) != len(jobs) {
		t.Fatalf("result counts: serial=%d parallel=%d, want %d", len(serial), len(parallel), len(jobs))
	}
	for i, j := range jobs {
		if serial[i].Err != nil {
			t.Fatalf("serial %s/%s %v: %v", j.App, j.Input, j.Kind, serial[i].Err)
		}
		if parallel[i].Err != nil {
			t.Fatalf("parallel %s/%s %v: %v", j.App, j.Input, j.Kind, parallel[i].Err)
		}
		if !reflect.DeepEqual(serial[i].Outcome, parallel[i].Outcome) {
			t.Errorf("%s/%s %v: parallel outcome differs from serial\nserial:   %+v\nparallel: %+v",
				j.App, j.Input, j.Kind, serial[i].Outcome, parallel[i].Outcome)
		}
	}
}

// TestRepeatedRunsIdentical re-runs one simulation twice back to back in
// the same process: a cheaper canary for state leaking between runs.
func TestRepeatedRunsIdentical(t *testing.T) {
	opt := Options{Scale: 0, Seed: 1}
	a, err := RunOne("CC", "Hu", apps.FiferPipe, false, opt, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunOne("CC", "Hu", apps.FiferPipe, false, opt, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same run twice differs:\nfirst:  %+v\nsecond: %+v", a, b)
	}
}
