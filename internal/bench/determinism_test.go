package bench

import (
	"reflect"
	"runtime"
	"strings"
	"testing"

	"fifer/internal/apps"
)

// TestParallelMatchesSerial is the determinism guarantee's pin: for every
// app at scale 0, the same (input, system, seed) run serially and through
// the parallel Runner must produce bit-identical apps.Outcome structs.
// Any hidden shared state (a package-level RNG, a memoized generated
// input) the concurrency audit missed shows up here — either as a
// DeepEqual mismatch or as a report under `go test -race`.
func TestParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("full determinism sweep")
	}
	opt := Options{Scale: 0, Seed: 1}
	var jobs []Job
	for _, app := range AppNames {
		input := InputsOf(app)[0]
		for _, kind := range apps.Kinds {
			jobs = append(jobs, Job{App: app, Input: input, Kind: kind})
		}
	}
	serial := Runner{Workers: 1}.Run(opt, jobs)
	parallel := Runner{Workers: 8}.Run(opt, jobs)
	if len(serial) != len(jobs) || len(parallel) != len(jobs) {
		t.Fatalf("result counts: serial=%d parallel=%d, want %d", len(serial), len(parallel), len(jobs))
	}
	for i, j := range jobs {
		if serial[i].Err != nil {
			t.Fatalf("serial %s/%s %v: %v", j.App, j.Input, j.Kind, serial[i].Err)
		}
		if parallel[i].Err != nil {
			t.Fatalf("parallel %s/%s %v: %v", j.App, j.Input, j.Kind, parallel[i].Err)
		}
		if !reflect.DeepEqual(serial[i].Outcome, parallel[i].Outcome) {
			t.Errorf("%s/%s %v: parallel outcome differs from serial\nserial:   %+v\nparallel: %+v",
				j.App, j.Input, j.Kind, serial[i].Outcome, parallel[i].Outcome)
		}
	}
}

// TestTracingDoesNotPerturb is the differential half of the observability
// contract (DESIGN.md §9): attaching a TraceSink must not change a single
// bit of any outcome, at any worker count. Every app at scale 0 is run
// untraced, traced at -j 1, and traced at -j NumCPU; all three result sets
// must DeepEqual, and both traced sweeps must actually have captured events
// (so the test cannot pass vacuously with tracing silently off).
func TestTracingDoesNotPerturb(t *testing.T) {
	if testing.Short() {
		t.Skip("full differential sweep")
	}
	var jobs []Job
	for _, app := range AppNames {
		input := InputsOf(app)[0]
		jobs = append(jobs, Job{App: app, Input: input, Kind: apps.FiferPipe})
		jobs = append(jobs, Job{App: app, Input: input, Kind: apps.StaticPipe})
	}
	base := Options{Scale: 0, Seed: 1}
	plain := Runner{Workers: 1}.Run(base, jobs)

	run := func(workers int) ([]JobResult, *TraceSink) {
		opt := base
		// Small rings on purpose: overflow (drop-oldest) must be just as
		// invisible to the simulation as comfortable headroom.
		opt.Trace = &TraceSink{SampleCycles: 512, BufEvents: 1 << 12}
		return Runner{Workers: workers}.Run(opt, jobs), opt.Trace
	}
	serialTraced, sinkSerial := run(1)
	parallelTraced, sinkParallel := run(runtime.NumCPU())

	for i, j := range jobs {
		for _, r := range []JobResult{plain[i], serialTraced[i], parallelTraced[i]} {
			if r.Err != nil {
				t.Fatalf("%s: %v", j.key(), r.Err)
			}
		}
		if !reflect.DeepEqual(plain[i].Outcome, serialTraced[i].Outcome) {
			t.Errorf("%s: traced serial outcome differs from untraced", j.key())
		}
		if !reflect.DeepEqual(plain[i].Outcome, parallelTraced[i].Outcome) {
			t.Errorf("%s: traced parallel outcome differs from untraced", j.key())
		}
	}
	for _, sink := range []*TraceSink{sinkSerial, sinkParallel} {
		traced := sink.Jobs()
		if len(traced) != len(jobs) {
			t.Fatalf("sink captured %d job(s), want %d", len(traced), len(jobs))
		}
		for _, tj := range traced {
			if tj.Collector.Len() == 0 {
				t.Errorf("%s: traced run captured no events", tj.Key)
			}
		}
	}
}

// TestGoldenFig13WithTracing re-renders the Fig. 13 golden with a TraceSink
// attached: the formatter output must match the committed golden byte for
// byte, proving tracing cannot leak into the paper's regenerated numbers.
func TestGoldenFig13WithTracing(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	opt := goldenOpt("BFS", "SpMM")
	opt.Trace = &TraceSink{SampleCycles: 1024, BufEvents: 1 << 14}
	d, err := Fig13(opt)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	d.Print(&b)
	checkGolden(t, "fig13", b.String())
	if len(opt.Trace.Jobs()) == 0 {
		t.Fatal("sweep with TraceSink captured nothing")
	}
}

// TestRepeatedRunsIdentical re-runs one simulation twice back to back in
// the same process: a cheaper canary for state leaking between runs.
func TestRepeatedRunsIdentical(t *testing.T) {
	opt := Options{Scale: 0, Seed: 1}
	a, err := RunOne("CC", "Hu", apps.FiferPipe, false, opt, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunOne("CC", "Hu", apps.FiferPipe, false, opt, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same run twice differs:\nfirst:  %+v\nsecond: %+v", a, b)
	}
}
