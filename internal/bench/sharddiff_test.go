package bench

import (
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"strings"
	"testing"
)

// This file is the harness-level half of the shard-invariance contract
// (DESIGN.md §11): every simulation surface the harness exports — outcomes,
// trace events, metrics rows, goldens, journals — must be byte-identical
// whether the core runs the sequential kernel (Shards ≤ 1) or the sharded
// kernel at any shard count. The core-level property tests live in
// internal/core/shard_test.go; these pin the same equivalence through the
// full application stack, composed with job-level parallelism (-j) and with
// the fast-forward differential suite in ffdiff_test.go.

// TestShardInvarianceApps runs every app at shard counts 2 and 4 against a
// sequential baseline, untraced and traced, serially and with parallel
// jobs: outcomes, event streams, and metrics rows must all be DeepEqual.
// Shard-count invariance composed over {traced} × {workers} is the
// strongest harness-level statement that the epoch-barrier protocol applies
// every cross-shard exchange in the sequential kernel's canonical order.
func TestShardInvarianceApps(t *testing.T) {
	if testing.Short() {
		t.Skip("full differential sweep")
	}
	jobs := ffJobs()
	base := Options{Scale: 0, Seed: 1}

	run := func(shards int, traced bool, workers int) ([]JobResult, *TraceSink) {
		opt := base
		opt.Shards = shards
		if traced {
			opt.Trace = &TraceSink{SampleCycles: 512, BufEvents: 1 << 14}
		}
		return Runner{Workers: workers}.Run(opt, jobs), opt.Trace
	}

	// One sequential baseline per tracing mode; the fast-forward suite
	// already pins that -j does not change sequential results.
	type baseline struct {
		results []JobResult
		sink    *TraceSink
	}
	seq := map[bool]baseline{}
	for _, traced := range []bool{false, true} {
		res, sink := run(1, traced, 1)
		seq[traced] = baseline{res, sink}
	}

	for _, tc := range []struct {
		name    string
		shards  int
		traced  bool
		workers int
	}{
		{"shards2-untraced-j1", 2, false, 1},
		{"shards2-untraced-jN", 2, false, runtime.NumCPU()},
		{"shards2-traced-j1", 2, true, 1},
		{"shards2-traced-jN", 2, true, runtime.NumCPU()},
		{"shards4-untraced-j1", 4, false, 1},
		{"shards4-untraced-jN", 4, false, runtime.NumCPU()},
		{"shards4-traced-j1", 4, true, 1},
		{"shards4-traced-jN", 4, true, runtime.NumCPU()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			sharded, shardedSink := run(tc.shards, tc.traced, tc.workers)
			want := seq[tc.traced]
			for i, j := range jobs {
				if sharded[i].Err != nil {
					t.Fatalf("%s sharded: %v", j.key(), sharded[i].Err)
				}
				if want.results[i].Err != nil {
					t.Fatalf("%s sequential: %v", j.key(), want.results[i].Err)
				}
				if !reflect.DeepEqual(sharded[i].Outcome, want.results[i].Outcome) {
					t.Errorf("%s: sharded outcome differs from sequential kernel\nsharded:    %+v\nsequential: %+v",
						j.key(), sharded[i].Outcome, want.results[i].Outcome)
				}
			}
			if !tc.traced {
				return
			}
			sj, wj := shardedSink.Jobs(), want.sink.Jobs()
			if len(sj) == 0 || len(sj) != len(wj) {
				t.Fatalf("traced job counts: sharded=%d sequential=%d", len(sj), len(wj))
			}
			for i := range sj {
				if sj[i].Key != wj[i].Key {
					t.Fatalf("traced job keys diverge: %q vs %q", sj[i].Key, wj[i].Key)
				}
				if sj[i].Collector.Len() == 0 {
					t.Errorf("%s: traced run captured no events", sj[i].Key)
				}
				if !reflect.DeepEqual(sj[i].Collector.Events(), wj[i].Collector.Events()) {
					t.Errorf("%s: sharded event stream differs from sequential kernel", sj[i].Key)
				}
				if !reflect.DeepEqual(sj[i].Collector.Rows(), wj[i].Collector.Rows()) {
					t.Errorf("%s: sharded metrics rows differ from sequential kernel", sj[i].Key)
				}
			}
		})
	}
}

// TestGoldenFig13Sharded re-renders the Fig. 13 golden on the sharded
// kernel: the committed golden was produced by the sequential kernel, so a
// byte-for-byte match proves the kernels agree on every number the paper
// reports.
func TestGoldenFig13Sharded(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	opt := goldenOpt("BFS", "SpMM")
	opt.Shards = 4
	d, err := Fig13(opt)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	d.Print(&b)
	checkGolden(t, "fig13", b.String())
}

// TestShardJournalBytesIdentical journals the same sweep on both kernels:
// the two journal files must be byte-identical, CRCs included. Journal
// records carry no wall-clock fields, so any divergence means the sharded
// kernel changed a simulated result.
func TestShardJournalBytesIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	dir := t.TempDir()
	journaled := func(name string, shards int) []byte {
		opt := goldenOpt("BFS", "SpMM")
		opt.Shards = shards
		path := filepath.Join(dir, name)
		j, err := CreateJournal(path, opt)
		if err != nil {
			t.Fatal(err)
		}
		opt.Journal = j
		if _, err := Fig13(opt); err != nil {
			t.Fatal(err)
		}
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	sharded := journaled("sharded.jsonl", 4)
	sequential := journaled("sequential.jsonl", 1)
	if string(sharded) != string(sequential) {
		t.Errorf("journal bytes diverge between sharded (%d B) and sequential (%d B) kernels",
			len(sharded), len(sequential))
	}
	if len(sharded) == 0 {
		t.Fatal("journal files are empty")
	}
}
