package bench

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fifer/internal/apps"
	"fifer/internal/core"
)

func journalPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "journal.jsonl")
}

func okResult(job Job, cycles uint64, attempts int) JobResult {
	return JobResult{Job: job, Outcome: apps.Outcome{Cycles: cycles, Verified: true}, Attempts: attempts}
}

// TestJournalRoundTrip writes ok and failed records, resumes, and checks
// both replay with their outcome/class intact.
func TestJournalRoundTrip(t *testing.T) {
	path := journalPath(t)
	opt := Options{Scale: 0, Seed: 1, Apps: []string{"BFS"}}
	j, err := CreateJournal(path, opt)
	if err != nil {
		t.Fatal(err)
	}
	good := Job{App: "BFS", Input: "Rn", Kind: apps.FiferPipe}
	bad := Job{App: "BFS", Input: "Rd", Kind: apps.StaticPipe}
	j.record("fig13", 0, okResult(good, 12345, 2))
	j.record("fig13", 1, JobResult{Job: bad, Err: fmt.Errorf("sim: %w", core.ErrDeadlock), Attempts: 1})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := ResumeJournal(path, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Replayed() != 2 {
		t.Fatalf("Replayed() = %d, want 2", r.Replayed())
	}
	res, ok := r.replayResult("fig13", 0, good)
	if !ok || res.Err != nil {
		t.Fatalf("ok record did not replay: %+v %v", res, ok)
	}
	if !res.Replayed || res.Attempts != 2 || res.Outcome.Cycles != 12345 || !res.Outcome.Verified {
		t.Fatalf("replayed result mangled: %+v", res)
	}
	res, ok = r.replayResult("fig13", 1, bad)
	if !ok || res.Err == nil {
		t.Fatalf("failed record did not replay as failure: %+v %v", res, ok)
	}
	if got := ErrorClass(res.Err); got != ClassDeadlock {
		t.Fatalf("replayed class = %q, want %q", got, ClassDeadlock)
	}
	// Another sweep's index 0 is a different key entirely.
	if _, ok := r.replayResult("fig16", 0, good); ok {
		t.Fatal("record leaked across sweep labels")
	}
}

// TestJournalNonDurableRescheduled checks canceled/timed-out records do not
// replay: the interrupted jobs run again on resume.
func TestJournalNonDurableRescheduled(t *testing.T) {
	path := journalPath(t)
	opt := Options{}
	j, err := CreateJournal(path, opt)
	if err != nil {
		t.Fatal(err)
	}
	job := Job{App: "BFS", Input: "Rn", Kind: apps.FiferPipe}
	j.record("fig13", 0, JobResult{Job: job, Err: fmt.Errorf("stop: %w", core.ErrCanceled)})
	j.record("fig13", 1, JobResult{Job: job, Err: fmt.Errorf("late: %w (%v): %w", ErrJobTimeout, 0, core.ErrCanceled), Attempts: 1})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := ResumeJournal(path, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Replayed() != 0 {
		t.Fatalf("Replayed() = %d, want 0 (canceled and timeout are not durable)", r.Replayed())
	}
	for idx := 0; idx < 2; idx++ {
		if _, ok := r.replayResult("fig13", idx, job); ok {
			t.Fatalf("non-durable record %d replayed", idx)
		}
	}
}

// TestJournalLastRecordWins checks a re-run job's newer record supersedes
// the older one at the same (sweep, index).
func TestJournalLastRecordWins(t *testing.T) {
	path := journalPath(t)
	opt := Options{}
	job := Job{App: "BFS", Input: "Rn", Kind: apps.FiferPipe}
	j, err := CreateJournal(path, opt)
	if err != nil {
		t.Fatal(err)
	}
	j.record("fig13", 0, JobResult{Job: job, Err: fmt.Errorf("sim: %w", core.ErrDeadlock), Attempts: 1})
	j.record("fig13", 0, okResult(job, 777, 2))
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := ResumeJournal(path, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	res, ok := r.replayResult("fig13", 0, job)
	if !ok || res.Err != nil || res.Outcome.Cycles != 777 {
		t.Fatalf("newest record did not win: %+v %v %v", res, ok, res.Err)
	}
}

// TestJournalTornTailTolerated appends a torn (newline-less) fragment —
// the signature of a crash mid-write — and checks resume discards it,
// keeps the intact records, and appends cleanly afterwards.
func TestJournalTornTailTolerated(t *testing.T) {
	path := journalPath(t)
	opt := Options{}
	job := Job{App: "BFS", Input: "Rn", Kind: apps.FiferPipe}
	j, err := CreateJournal(path, opt)
	if err != nil {
		t.Fatal(err)
	}
	j.record("fig13", 0, okResult(job, 1, 1))
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"sweep":"fig13","index":1,"app":"BF`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	r, err := ResumeJournal(path, opt)
	if err != nil {
		t.Fatalf("torn tail not tolerated: %v", err)
	}
	if r.Replayed() != 1 {
		t.Fatalf("Replayed() = %d, want 1 (the intact record)", r.Replayed())
	}
	// The torn bytes must be gone so the next append yields a valid file.
	r.record("fig13", 1, okResult(job, 2, 1))
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	r2, err := ResumeJournal(path, opt)
	if err != nil {
		t.Fatalf("journal invalid after append past torn tail: %v", err)
	}
	defer r2.Close()
	if r2.Replayed() != 2 {
		t.Fatalf("Replayed() = %d after append, want 2", r2.Replayed())
	}
}

// TestJournalCorruptionHardError flips bytes inside a complete record and
// checks resume refuses the journal instead of replaying silently wrong
// results.
func TestJournalCorruptionHardError(t *testing.T) {
	path := journalPath(t)
	opt := Options{}
	j, err := CreateJournal(path, opt)
	if err != nil {
		t.Fatal(err)
	}
	j.record("fig13", 0, okResult(Job{App: "BFS", Input: "Rn", Kind: apps.FiferPipe}, 42, 1))
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Same length, still valid JSON, but not the bytes the CRC covers.
	tampered := strings.Replace(string(data), `"app":"BFS"`, `"app":"XFS"`, 1)
	if tampered == string(data) {
		t.Fatal("tamper target not found")
	}
	if err := os.WriteFile(path, []byte(tampered), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ResumeJournal(path, opt); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("corrupted record accepted (err = %v), want checksum error", err)
	}
}

// TestJournalHeaderMismatch checks a journal refuses to resume under
// options that would compute different results.
func TestJournalHeaderMismatch(t *testing.T) {
	path := journalPath(t)
	j, err := CreateJournal(path, Options{Scale: 0, Seed: 1, Apps: []string{"BFS"}})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	for name, opt := range map[string]Options{
		"different seed":  {Scale: 0, Seed: 2, Apps: []string{"BFS"}},
		"different scale": {Scale: 1, Seed: 1, Apps: []string{"BFS"}},
		"different apps":  {Scale: 0, Seed: 1, Apps: []string{"CC"}},
	} {
		if _, err := ResumeJournal(path, opt); err == nil {
			t.Errorf("%s: resumed against a mismatched journal", name)
		}
	}
	// Identical options (including scheduling knobs that may differ) resume.
	if r, err := ResumeJournal(path, Options{Scale: 0, Seed: 1, Apps: []string{"BFS"}, Jobs: 99, Retries: 3}); err != nil {
		t.Errorf("matching options refused: %v", err)
	} else {
		r.Close()
	}
}

// TestJournalFingerprintMismatch checks a durable record whose job identity
// disagrees with the job now scheduled at its index surfaces as an explicit
// journal-mismatch error, never a misattributed outcome.
func TestJournalFingerprintMismatch(t *testing.T) {
	path := journalPath(t)
	opt := Options{}
	j, err := CreateJournal(path, opt)
	if err != nil {
		t.Fatal(err)
	}
	j.record("fig13", 0, okResult(Job{App: "BFS", Input: "Rn", Kind: apps.FiferPipe}, 42, 1))
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := ResumeJournal(path, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	res, ok := r.replayResult("fig13", 0, Job{App: "BFS", Input: "Rd", Kind: apps.FiferPipe})
	if !ok || res.Err == nil {
		t.Fatalf("mismatched record silently ignored: %+v %v", res, ok)
	}
	if got := ErrorClass(res.Err); got != ClassMismatch {
		t.Fatalf("class = %q, want %q", got, ClassMismatch)
	}
	if res.Outcome.Cycles != 0 {
		t.Fatal("mismatched replay leaked the journaled outcome")
	}
}

// TestJournalNoHeader checks empty and header-torn files fail loudly.
func TestJournalNoHeader(t *testing.T) {
	for name, content := range map[string]string{
		"empty file":  "",
		"torn header": `{"journal":"fifer-ben`,
	} {
		path := journalPath(t)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := ResumeJournal(path, Options{}); err == nil {
			t.Errorf("%s: resumed without an intact header", name)
		}
	}
	if _, err := ResumeJournal(filepath.Join(t.TempDir(), "absent.jsonl"), Options{}); err == nil {
		t.Error("resumed a journal that does not exist")
	}
}

// TestJournalNilReceiver checks a nil *Journal (journaling off) is inert on
// every method the Runner calls unconditionally.
func TestJournalNilReceiver(t *testing.T) {
	var j *Journal
	j.record("fig13", 0, okResult(Job{App: "BFS"}, 1, 1))
	if _, ok := j.replayResult("fig13", 0, Job{App: "BFS"}); ok {
		t.Fatal("nil journal replayed a result")
	}
	if j.Replayed() != 0 || j.Path() != "" || j.Err() != nil || j.Close() != nil {
		t.Fatal("nil journal is not inert")
	}
	if !errors.Is(j.Err(), nil) {
		t.Fatal("nil journal reports an error")
	}
}
