package bench

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"fifer/internal/apps"
	"fifer/internal/core"
)

// TestRunnerEmptyBatch checks the explicit empty-batch path: a non-nil
// empty result, no progress calls, nothing journaled.
func TestRunnerEmptyBatch(t *testing.T) {
	path := journalPath(t)
	j, err := CreateJournal(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	r := Runner{
		Workers:  4,
		Progress: func(done, total int, res JobResult) { calls++ },
		run: func(Job, Options) (apps.Outcome, error) {
			t.Error("empty batch ran a job")
			return apps.Outcome{}, nil
		},
	}
	for _, jobs := range [][]Job{nil, {}} {
		results := r.Run(Options{Journal: j}, jobs)
		if results == nil || len(results) != 0 {
			t.Fatalf("empty batch returned %#v, want empty non-nil slice", results)
		}
	}
	if calls != 0 {
		t.Fatalf("progress called %d times on empty batches", calls)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	r2, err := ResumeJournal(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if r2.Replayed() != 0 {
		t.Fatal("empty batch journaled records")
	}
}

// TestPanicErrorRoundTrip checks a recovered panic carries the job identity
// and unwraps to the original error chain.
func TestPanicErrorRoundTrip(t *testing.T) {
	sentinel := errors.New("boom-root")
	r := Runner{Workers: 1, run: func(Job, Options) (apps.Outcome, error) {
		panic(fmt.Errorf("kernel blew up: %w", sentinel))
	}}
	job := Job{App: "BFS", Input: "Rd", Kind: apps.StaticPipe, Merged: true}
	res := r.Run(Options{}, []Job{job})[0]

	var pe *PanicError
	if !errors.As(res.Err, &pe) {
		t.Fatalf("err %v does not expose *PanicError", res.Err)
	}
	if pe.App != job.App || pe.Input != job.Input || pe.Kind != job.Kind || !pe.Merged {
		t.Fatalf("panic lost its job identity: %+v", pe)
	}
	if !errors.Is(res.Err, sentinel) {
		t.Fatalf("err %v does not unwrap to the panicked error", res.Err)
	}
	if got := ErrorClass(res.Err); got != ClassPanic {
		t.Fatalf("class = %q, want %q", got, ClassPanic)
	}
	for _, want := range []string{"BFS/Rd", "merged", "goroutine"} {
		if !strings.Contains(pe.Error(), want) {
			t.Fatalf("panic message lacks %q:\n%s", want, pe.Error())
		}
	}
	// Non-error panic values unwrap to nothing but still classify.
	if err := (&PanicError{Value: 42}).Unwrap(); err != nil {
		t.Fatalf("non-error panic value unwrapped to %v", err)
	}
}

// TestRetryTransient checks a panicking job is re-run up to Options.Retries
// times and a late success clears the error.
func TestRetryTransient(t *testing.T) {
	attempts := 0
	r := Runner{Workers: 1, RetryBase: time.Millisecond, RetryCap: 2 * time.Millisecond,
		run: func(Job, Options) (apps.Outcome, error) {
			attempts++
			if attempts < 3 {
				panic("flaky")
			}
			return apps.Outcome{Cycles: 9}, nil
		}}
	res := r.Run(Options{Retries: 3}, []Job{{App: "BFS", Input: "Rn"}})[0]
	if res.Err != nil {
		t.Fatalf("retried job failed: %v", res.Err)
	}
	if res.Attempts != 3 || attempts != 3 {
		t.Fatalf("attempts = %d (runner) / %d (observed), want 3", res.Attempts, attempts)
	}
	if res.Outcome.Cycles != 9 {
		t.Fatal("late success lost its outcome")
	}
}

// TestRetryOnlyTransient checks deterministic failures are not retried:
// re-running a deadlock or a bad config reproduces it exactly.
func TestRetryOnlyTransient(t *testing.T) {
	for name, err := range map[string]error{
		"deadlock":  fmt.Errorf("sim: %w", core.ErrDeadlock),
		"invariant": fmt.Errorf("sim: %w", core.ErrInvariant),
		"plain":     errors.New("unknown app"),
	} {
		attempts := 0
		r := Runner{Workers: 1, RetryBase: time.Millisecond,
			run: func(Job, Options) (apps.Outcome, error) { attempts++; return apps.Outcome{}, err }}
		res := r.Run(Options{Retries: 5}, []Job{{App: "BFS"}})[0]
		if attempts != 1 || res.Attempts != 1 {
			t.Errorf("%s: ran %d times, want 1", name, attempts)
		}
		if !errors.Is(res.Err, err) {
			t.Errorf("%s: error replaced: %v", name, res.Err)
		}
	}
}

// TestRetryBudgetDoubling checks a cycle-budget failure retries with a
// doubled budget instead of burning the same cycles to the same wall.
func TestRetryBudgetDoubling(t *testing.T) {
	var budgets []uint64
	r := Runner{Workers: 1, RetryBase: time.Millisecond, RetryCap: 2 * time.Millisecond,
		run: func(_ Job, o Options) (apps.Outcome, error) {
			budgets = append(budgets, o.MaxCycles)
			return apps.Outcome{}, fmt.Errorf("sim: %w", ErrCycleBudget)
		}}
	res := r.Run(Options{Retries: 2}, []Job{{App: "BFS"}})[0]
	want := []uint64{0, 2 * HarnessMaxCycles, 4 * HarnessMaxCycles}
	if len(budgets) != len(want) {
		t.Fatalf("budgets = %v, want %v", budgets, want)
	}
	for i := range want {
		if budgets[i] != want[i] {
			t.Fatalf("budgets = %v, want %v", budgets, want)
		}
	}
	if res.Attempts != 3 || ErrorClass(res.Err) != ClassCycleBudget {
		t.Fatalf("final result = attempts %d class %q, want 3 %q", res.Attempts, ErrorClass(res.Err), ClassCycleBudget)
	}
}

// TestJobTimeout checks the per-job deadline stops a job through the
// cooperative hook and classifies it as timeout, not canceled.
func TestJobTimeout(t *testing.T) {
	r := Runner{Workers: 1, run: func(_ Job, o Options) (apps.Outcome, error) {
		// Stand-in for a core simulation honoring Config.Done.
		select {
		case <-o.Cancel:
			return apps.Outcome{}, fmt.Errorf("stopped at checkpoint: %w", core.ErrCanceled)
		case <-time.After(30 * time.Second):
			return apps.Outcome{Cycles: 1}, nil
		}
	}}
	start := time.Now()
	res := r.Run(Options{JobTimeout: 20 * time.Millisecond}, []Job{{App: "BFS", Input: "Rn"}})[0]
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("deadline did not bound the job (took %v)", elapsed)
	}
	if !errors.Is(res.Err, ErrJobTimeout) || !errors.Is(res.Err, core.ErrCanceled) {
		t.Fatalf("err = %v, want ErrJobTimeout wrapping core.ErrCanceled", res.Err)
	}
	if got := ErrorClass(res.Err); got != ClassTimeout {
		t.Fatalf("class = %q, want %q", got, ClassTimeout)
	}
	if res.Attempts != 1 {
		t.Fatalf("timed-out job reports %d attempts, want 1 (timeouts are not retried)", res.Attempts)
	}
}

// TestSweepCancelBeatsTimeout checks a sweep-wide cancel during a job with
// an armed (but unexpired) deadline classifies as canceled, not timeout.
func TestSweepCancelBeatsTimeout(t *testing.T) {
	cancel := make(chan struct{})
	time.AfterFunc(10*time.Millisecond, func() { close(cancel) })
	r := Runner{Workers: 1, run: func(_ Job, o Options) (apps.Outcome, error) {
		select {
		case <-o.Cancel:
			return apps.Outcome{}, fmt.Errorf("stopped at checkpoint: %w", core.ErrCanceled)
		case <-time.After(30 * time.Second):
			return apps.Outcome{Cycles: 1}, nil
		}
	}}
	res := r.Run(Options{JobTimeout: time.Hour, Cancel: cancel}, []Job{{App: "BFS", Input: "Rn"}})[0]
	if got := ErrorClass(res.Err); got != ClassCanceled {
		t.Fatalf("class = %q (err %v), want %q", got, res.Err, ClassCanceled)
	}
}

// TestProgressContractUnderCancel pins the ProgressFunc contract while a
// sweep is canceled mid-flight: done is monotone 1..total, total is
// constant, and every job is reported exactly once — including the jobs
// skipped after the cancel.
func TestProgressContractUnderCancel(t *testing.T) {
	const n = 12
	jobs := make([]Job, n)
	for i := range jobs {
		jobs[i] = Job{App: "BFS", Input: fmt.Sprintf("in%d", i), Kind: apps.FiferPipe}
	}
	cancel := make(chan struct{})
	var once sync.Once
	seen := map[string]int{}
	lastDone := 0
	var classes []string
	r := Runner{
		Workers: 2,
		Progress: func(done, total int, res JobResult) {
			if total != n {
				t.Errorf("total = %d, want %d", total, n)
			}
			if done != lastDone+1 {
				t.Errorf("done jumped %d -> %d, want monotone steps of 1", lastDone, done)
			}
			lastDone = done
			seen[res.Job.Input]++
			classes = append(classes, ErrorClass(res.Err))
			if done == 3 {
				once.Do(func() { close(cancel) })
			}
		},
		run: func(Job, Options) (apps.Outcome, error) {
			time.Sleep(5 * time.Millisecond)
			return apps.Outcome{Cycles: 1}, nil
		},
	}
	results := r.Run(Options{Cancel: cancel}, jobs)

	if lastDone != n {
		t.Fatalf("done reached %d, want %d (every job reported)", lastDone, n)
	}
	for i := range jobs {
		if seen[jobs[i].Input] != 1 {
			t.Fatalf("job %s reported %d times, want exactly once", jobs[i].Input, seen[jobs[i].Input])
		}
	}
	var ok, skipped int
	for i, res := range results {
		switch ErrorClass(res.Err) {
		case ClassOK:
			ok++
		case ClassCanceled:
			skipped++
			if res.Attempts != 0 {
				t.Fatalf("skipped job %d reports %d attempts, want 0", i, res.Attempts)
			}
		default:
			t.Fatalf("job %d has unexpected class %q (%v)", i, ErrorClass(res.Err), res.Err)
		}
	}
	if ok < 3 || skipped == 0 {
		t.Fatalf("ok = %d skipped = %d; cancel at done=3 should leave both kinds", ok, skipped)
	}
}
