package bench

import (
	"fmt"
	"io"

	"fifer/internal/apps"
	"fifer/internal/energy"
	"fifer/internal/stats"
)

// Fig14, Fig15, and Table 5 reuse the Fig. 13 sweep's outcomes: the cycle
// and energy breakdowns render from the collected results without running
// any simulations of their own, so they inherit Fig13's parallel execution
// (Options.Jobs) and its determinism guarantee for free.

// CPIBreakdown is one system's Fig. 14 bar: fractions of core/PE cycles.
type CPIBreakdown struct {
	Issued, Stall, Queue, Reconfig, Idle float64
	// NormCycles is total cycles normalized to the static pipeline's.
	NormCycles float64
}

// Fig14App aggregates one application's four bars, averaged across inputs
// and normalized to the static pipeline (the paper's presentation).
func (d *Fig13Data) Fig14App(app string) map[apps.SystemKind]CPIBreakdown {
	acc := map[apps.SystemKind]*CPIBreakdown{}
	n := map[apps.SystemKind]int{}
	for _, c := range d.Cells {
		if c.App != app {
			continue
		}
		staticCycles := float64(c.Outcomes[apps.StaticPipe].Cycles)
		for _, kind := range apps.Kinds {
			out, ok := c.Outcomes[kind]
			if !ok {
				continue // degraded sweep: this run is missing
			}
			b := acc[kind]
			if b == nil {
				b = &CPIBreakdown{}
				acc[kind] = b
			}
			var issued, stall, queue, reconfig, idle float64
			switch kind {
			case apps.SerialOOO, apps.MulticoreOOO:
				cores := out.Counts.Cores
				budget := float64(out.Cycles) * float64(cores)
				issued = float64(out.OOOIssued) / budget
				idle = float64(out.OOOIdle) / budget
				stall = 1 - issued - idle
			default:
				issued, stall, queue, reconfig, idle = out.Pipe.Total.Fractions()
			}
			b.Issued += issued
			b.Stall += stall
			b.Queue += queue
			b.Reconfig += reconfig
			b.Idle += idle
			if staticCycles > 0 {
				b.NormCycles += float64(out.Cycles) / staticCycles
			}
			n[kind]++
		}
	}
	out := map[apps.SystemKind]CPIBreakdown{}
	for kind, b := range acc {
		k := float64(n[kind])
		out[kind] = CPIBreakdown{
			Issued: b.Issued / k, Stall: b.Stall / k, Queue: b.Queue / k,
			Reconfig: b.Reconfig / k, Idle: b.Idle / k, NormCycles: b.NormCycles / k,
		}
	}
	return out
}

// PrintFig14 renders the cycle-breakdown stacks (Fig. 14), normalized to
// the static pipeline.
func (d *Fig13Data) PrintFig14(w io.Writer, opt Options) {
	fmt.Fprintln(w, "Figure 14: cycle breakdown, normalized to the static pipeline (averaged across inputs)")
	tbl := stats.NewTable("app", "system", "norm-cycles", "issued", "stalls", "queue-full/empty", "reconfig", "idle")
	for _, app := range opt.selected() {
		bars := d.Fig14App(app)
		for _, kind := range apps.Kinds {
			b, ok := bars[kind]
			if !ok {
				tbl.Add(app, kind.String(), "!missing", "!missing", "!missing", "!missing", "!missing", "!missing")
				continue
			}
			tbl.Add(app, kind.String(),
				fmt.Sprintf("%.2f", b.NormCycles),
				fmt.Sprintf("%.2f", b.Issued*b.NormCycles),
				fmt.Sprintf("%.2f", b.Stall*b.NormCycles),
				fmt.Sprintf("%.2f", b.Queue*b.NormCycles),
				fmt.Sprintf("%.2f", b.Reconfig*b.NormCycles),
				fmt.Sprintf("%.2f", b.Idle*b.NormCycles))
		}
	}
	fmt.Fprint(w, tbl)
}

// PrintFig15 renders the energy breakdowns (Fig. 15), normalized to the
// static pipeline and averaged across inputs.
func (d *Fig13Data) PrintFig15(w io.Writer, opt Options) {
	fmt.Fprintln(w, "Figure 15: energy breakdown, normalized to the static pipeline (averaged across inputs)")
	tbl := stats.NewTable("app", "system", "norm-energy", "memory", "caches", "compute", "leakage")
	type agg struct {
		b Breakdowns
		n int
	}
	for _, app := range opt.selected() {
		sums := map[apps.SystemKind]*agg{}
		var staticTotal float64
		var cnt int
		for _, c := range d.Cells {
			if c.App != app {
				continue
			}
			if so, ok := c.Outcomes[apps.StaticPipe]; ok {
				staticTotal += energy.Model(so.Counts).Total()
				cnt++
			}
			for _, kind := range apps.Kinds {
				out, ok := c.Outcomes[kind]
				if !ok {
					continue // degraded sweep: this run is missing
				}
				e := energy.Model(out.Counts)
				a := sums[kind]
				if a == nil {
					a = &agg{}
					sums[kind] = a
				}
				a.b.Memory += e.Memory
				a.b.Caches += e.Caches
				a.b.Compute += e.Compute
				a.b.Leakage += e.Leakage
				a.n++
			}
		}
		if cnt == 0 || staticTotal == 0 {
			continue
		}
		norm := staticTotal / float64(cnt)
		for _, kind := range apps.Kinds {
			a := sums[kind]
			if a == nil || a.n == 0 {
				tbl.Add(app, kind.String(), "!missing", "!missing", "!missing", "!missing", "!missing")
				continue
			}
			k := float64(a.n) * norm
			tbl.Add(app, kind.String(),
				fmt.Sprintf("%.2f", (a.b.Memory+a.b.Caches+a.b.Compute+a.b.Leakage)/k),
				fmt.Sprintf("%.2f", a.b.Memory/k),
				fmt.Sprintf("%.2f", a.b.Caches/k),
				fmt.Sprintf("%.2f", a.b.Compute/k),
				fmt.Sprintf("%.2f", a.b.Leakage/k))
		}
	}
	fmt.Fprint(w, tbl)
	fmt.Fprintln(w, "\nHeadline (paper, Sec. 8.2): static pipeline gmean 12x better energy than 4-core OOO;")
	fmt.Fprintln(w, "Fifer 1.5x better than static and 19x better than the 4-core OOO system.")
	fmt.Fprintf(w, "Measured: static vs 4-core OOO %.1fx; Fifer vs static %.2fx; Fifer vs 4-core OOO %.1fx\n",
		d.EnergyRatio(apps.MulticoreOOO, apps.StaticPipe),
		d.EnergyRatio(apps.StaticPipe, apps.FiferPipe),
		d.EnergyRatio(apps.MulticoreOOO, apps.FiferPipe))
}

// Breakdowns accumulates energy components.
type Breakdowns struct {
	Memory, Caches, Compute, Leakage float64
}

// EnergyRatio returns the gmean across cells of base's total energy divided
// by over's (how much less energy `over` uses).
func (d *Fig13Data) EnergyRatio(base, over apps.SystemKind) float64 {
	var xs []float64
	for _, c := range d.Cells {
		b := energy.Model(c.Outcomes[base].Counts).Total()
		o := energy.Model(c.Outcomes[over].Counts).Total()
		if b > 0 && o > 0 {
			xs = append(xs, b/o)
		}
	}
	return stats.GMean(xs)
}

// PrintTable5 renders the residence/reconfiguration statistics (Table 5)
// from the Fifer runs.
func (d *Fig13Data) PrintTable5(w io.Writer, opt Options) {
	fmt.Fprintln(w, "Table 5: average residence time and reconfiguration period (cycles)")
	tbl := stats.NewTable("app", "avg residence", "avg reconfig period", "paper residence", "paper reconfig")
	paper := map[string][2]float64{
		"BFS": {140, 12.5}, "CC": {279, 13.9}, "PRD": {927, 20.4},
		"Radii": {564, 27.7}, "SpMM": {30, 12.6}, "Silo": {1490, 60.1},
	}
	var allRes, allRec []float64
	for _, app := range opt.selected() {
		var res, rec []float64
		for _, c := range d.Cells {
			if c.App != app {
				continue
			}
			out := c.Outcomes[apps.FiferPipe]
			if out.Pipe.Reconfigs > 0 {
				res = append(res, out.Pipe.MeanResidence)
				rec = append(rec, out.Pipe.MeanReconfig)
			}
		}
		p := paper[app]
		tbl.Add(app, fmt.Sprintf("%.0f", stats.Mean(res)), fmt.Sprintf("%.1f", stats.Mean(rec)),
			fmt.Sprintf("%.0f", p[0]), fmt.Sprintf("%.1f", p[1]))
		allRes = append(allRes, res...)
		allRec = append(allRec, rec...)
	}
	tbl.Add("Mean", fmt.Sprintf("%.0f", stats.Mean(allRes)), fmt.Sprintf("%.1f", stats.Mean(allRec)), "448", "19.7")
	fmt.Fprint(w, tbl)
}
