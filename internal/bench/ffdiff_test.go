package bench

import (
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"strings"
	"testing"

	"fifer/internal/apps"
)

// This file is the harness-level half of the fast-forward equivalence
// contract (DESIGN.md §10): every simulation surface the harness exports —
// outcomes, trace events, metrics rows, goldens, journals — must be
// byte-identical whether the core runs the naive per-cycle loop
// (Options.NoFastForward, the oracle) or the event-horizon fast-forward
// that is on by default. The core-level differential suite lives in
// internal/core/horizon_test.go; these tests pin the same equivalence
// through the full application stack.

// ffJobs is the standard differential job list: every app's first input on
// both pipelined CGRA systems.
func ffJobs() []Job {
	var jobs []Job
	for _, app := range AppNames {
		input := InputsOf(app)[0]
		jobs = append(jobs, Job{App: app, Input: input, Kind: apps.FiferPipe})
		jobs = append(jobs, Job{App: app, Input: input, Kind: apps.StaticPipe})
	}
	return jobs
}

// TestFastForwardMatchesOracleApps runs every app against the oracle:
// fast-forward and naive-loop sweeps must produce DeepEqual outcomes, with
// tracing off and on and at -j 1 and -j NumCPU. With tracing on, the two
// modes must also capture identical event streams and metrics rows — the
// strongest harness-level statement that fast-forward skips only cycles in
// which nothing observable happens.
func TestFastForwardMatchesOracleApps(t *testing.T) {
	if testing.Short() {
		t.Skip("full differential sweep")
	}
	jobs := ffJobs()
	base := Options{Scale: 0, Seed: 1}

	run := func(oracle, traced bool, workers int) ([]JobResult, *TraceSink) {
		opt := base
		opt.NoFastForward = oracle
		if traced {
			opt.Trace = &TraceSink{SampleCycles: 512, BufEvents: 1 << 14}
		}
		return Runner{Workers: workers}.Run(opt, jobs), opt.Trace
	}

	for _, tc := range []struct {
		name    string
		traced  bool
		workers int
	}{
		{"untraced-j1", false, 1},
		{"untraced-jN", false, runtime.NumCPU()},
		{"traced-j1", true, 1},
		{"traced-jN", true, runtime.NumCPU()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			fast, fastSink := run(false, tc.traced, tc.workers)
			oracle, oracleSink := run(true, tc.traced, tc.workers)
			for i, j := range jobs {
				if fast[i].Err != nil {
					t.Fatalf("%s fast-forward: %v", j.key(), fast[i].Err)
				}
				if oracle[i].Err != nil {
					t.Fatalf("%s oracle: %v", j.key(), oracle[i].Err)
				}
				if !reflect.DeepEqual(fast[i].Outcome, oracle[i].Outcome) {
					t.Errorf("%s: fast-forward outcome differs from naive loop\nfast:   %+v\noracle: %+v",
						j.key(), fast[i].Outcome, oracle[i].Outcome)
				}
			}
			if !tc.traced {
				return
			}
			fj, oj := fastSink.Jobs(), oracleSink.Jobs()
			if len(fj) == 0 || len(fj) != len(oj) {
				t.Fatalf("traced job counts: fast=%d oracle=%d", len(fj), len(oj))
			}
			for i := range fj {
				if fj[i].Key != oj[i].Key {
					t.Fatalf("traced job keys diverge: %q vs %q", fj[i].Key, oj[i].Key)
				}
				if fj[i].Collector.Len() == 0 {
					t.Errorf("%s: traced run captured no events", fj[i].Key)
				}
				if !reflect.DeepEqual(fj[i].Collector.Events(), oj[i].Collector.Events()) {
					t.Errorf("%s: fast-forward event stream differs from naive loop", fj[i].Key)
				}
				if !reflect.DeepEqual(fj[i].Collector.Rows(), oj[i].Collector.Rows()) {
					t.Errorf("%s: fast-forward metrics rows differ from naive loop", fj[i].Key)
				}
			}
		})
	}
}

// TestGoldenFig13WithOracle re-renders the Fig. 13 golden with the naive
// per-cycle loop: the committed golden was produced under fast-forward, so a
// byte-for-byte match proves the two execution modes agree on every number
// the paper reports.
func TestGoldenFig13WithOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	opt := goldenOpt("BFS", "SpMM")
	opt.NoFastForward = true
	d, err := Fig13(opt)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	d.Print(&b)
	checkGolden(t, "fig13", b.String())
}

// TestFastForwardJournalBytesIdentical journals the same sweep once under
// fast-forward and once under the oracle: the two journal files must be
// byte-identical, CRCs included. Journal records carry no wall-clock fields,
// so any divergence means fast-forward changed a simulated result.
func TestFastForwardJournalBytesIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	dir := t.TempDir()
	journaled := func(name string, oracle bool) []byte {
		opt := goldenOpt("BFS", "SpMM")
		opt.NoFastForward = oracle
		path := filepath.Join(dir, name)
		j, err := CreateJournal(path, opt)
		if err != nil {
			t.Fatal(err)
		}
		opt.Journal = j
		if _, err := Fig13(opt); err != nil {
			t.Fatal(err)
		}
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	fast := journaled("fast.jsonl", false)
	oracle := journaled("oracle.jsonl", true)
	if string(fast) != string(oracle) {
		t.Errorf("journal bytes diverge between fast-forward (%d B) and oracle (%d B)", len(fast), len(oracle))
	}
	if len(fast) == 0 {
		t.Fatal("journal files are empty")
	}
}
