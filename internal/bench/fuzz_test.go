package bench

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"fifer/internal/apps"
)

// fuzzJournalBytes builds a realistic journal — header plus a few sealed
// records, including an error record and a superseding retry — to seed the
// corpus with inputs that exercise the verified-replay path, not just the
// reject-everything path.
func fuzzJournalBytes(tb testing.TB, opt Options) []byte {
	tb.Helper()
	dir := tb.TempDir()
	path := filepath.Join(dir, "seed.jsonl")
	j, err := CreateJournal(path, opt)
	if err != nil {
		tb.Fatal(err)
	}
	ok := JobResult{
		Job:      Job{App: "BFS", Input: "Hu", Kind: apps.FiferPipe},
		Outcome:  apps.Outcome{Kind: apps.FiferPipe, Cycles: 12345, Verified: true},
		Attempts: 1,
	}
	j.record("fig13", 0, ok)
	j.record("fig13", 1, JobResult{
		Job:      Job{App: "CC", Input: "Hu", Kind: apps.StaticPipe},
		Err:      ErrCycleBudget,
		Attempts: 2,
	})
	j.record("fig13", 1, ok) // retry superseding the failure
	if err := j.Close(); err != nil {
		tb.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		tb.Fatal(err)
	}
	return data
}

// FuzzResumeJournal feeds arbitrary bytes to the crash-recovery path. The
// contract under test: ResumeJournal either returns a working journal or a
// classified error — it must never panic, whatever is on disk. The seed
// corpus covers the crash signatures the format is designed around: a valid
// journal, truncations at every interesting boundary, a torn (newline-less)
// final line, flipped bits inside a sealed record, and assorted non-journal
// junk.
func FuzzResumeJournal(f *testing.F) {
	opt := Options{Scale: 0, Seed: 1}
	valid := fuzzJournalBytes(f, opt)

	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("\n"))
	f.Add([]byte("not a journal at all"))
	f.Add([]byte(`{"journal":"fifer-bench","version":99,"crc":0}` + "\n"))
	// Truncations: mid-header, exactly after the header, mid-record.
	f.Add(valid[:len(valid)/4])
	if i := bytes.IndexByte(valid, '\n'); i >= 0 {
		f.Add(valid[:i+1])
		f.Add(valid[:i+1+(len(valid)-i-1)/2])
	}
	// Torn final line: chop the trailing newline plus a few bytes.
	f.Add(valid[:len(valid)-3])
	// Bit flips in the header and in a record body.
	for _, pos := range []int{10, len(valid) / 2, len(valid) - 10} {
		mut := append([]byte(nil), valid...)
		mut[pos] ^= 0x40
		f.Add(mut)
	}
	// A valid journal with trailing garbage (no final newline → torn).
	f.Add(append(append([]byte(nil), valid...), []byte(`{"sweep":"fig13","ind`)...))

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.jsonl")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		j, err := ResumeJournal(path, opt)
		if err != nil {
			return // classified rejection is a correct outcome
		}
		// A journal that resumed must be usable: replay lookups cannot
		// panic, appending works, and Close reports any latched error.
		for idx := 0; idx < 4; idx++ {
			j.replayResult("fig13", idx, Job{App: "BFS", Input: "Hu", Kind: apps.FiferPipe})
		}
		j.record("fig13", 9, JobResult{
			Job:      Job{App: "BFS", Input: "Hu", Kind: apps.FiferPipe},
			Outcome:  apps.Outcome{Kind: apps.FiferPipe, Cycles: 1},
			Attempts: 1,
		})
		if err := j.Close(); err != nil {
			t.Fatalf("journal resumed cleanly but Close failed: %v", err)
		}
		// The file we just appended to must itself resume: recovery output
		// is always recoverable input.
		j2, err := ResumeJournal(path, opt)
		if err != nil {
			t.Fatalf("journal written by recovery does not resume: %v", err)
		}
		j2.Close()
	})
}
