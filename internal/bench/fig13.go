package bench

import (
	"fmt"
	"io"

	"fifer/internal/apps"
	"fifer/internal/stats"
)

// Fig13Cell holds the four systems' outcomes for one (app, input). In a
// degraded sweep (canceled, failed jobs) the missing systems are absent
// from Outcomes and carry their error class in Errs instead.
type Fig13Cell struct {
	App, Input string
	Outcomes   map[apps.SystemKind]apps.Outcome
	// Errs maps each failed system to its error class (ErrorClass); nil
	// when every system completed.
	Errs map[apps.SystemKind]string
}

// Failed returns the error class of kind's run, or "" if it succeeded.
func (c Fig13Cell) Failed(kind apps.SystemKind) string { return c.Errs[kind] }

// Speedup returns kind's speedup normalized to the 4-core OOO baseline
// (Fig. 13's normalization); 0 when either run is missing.
func (c Fig13Cell) Speedup(kind apps.SystemKind) float64 {
	base := c.Outcomes[apps.MulticoreOOO].Cycles
	own := c.Outcomes[kind].Cycles
	if own == 0 {
		return 0
	}
	return float64(base) / float64(own)
}

// Fig13Data is the full per-input performance sweep.
type Fig13Data struct {
	Cells []Fig13Cell
}

// Failed counts the sweep's failed or missing simulations.
func (d *Fig13Data) Failed() int {
	n := 0
	for _, c := range d.Cells {
		n += len(c.Errs)
	}
	return n
}

// Fig13 runs every application on every input on all four systems. The
// full job list is enumerated up front and executed on opt's worker pool
// (opt.Jobs workers); cells are assembled from the collected results, in
// the same (app, input, system) order a serial sweep produces. Failed or
// canceled jobs degrade their cells (see Fig13Cell.Errs) instead of
// aborting the sweep, so a partial run still renders every table.
func Fig13(opt Options) (*Fig13Data, error) {
	var jobs []Job
	for _, app := range opt.selected() {
		for _, input := range InputsOf(app) {
			for _, kind := range apps.Kinds {
				jobs = append(jobs, Job{App: app, Input: input, Kind: kind})
			}
		}
	}
	results := opt.runner("fig13").Run(opt, jobs)
	if err := abortError(results); err != nil {
		return nil, err
	}
	data := &Fig13Data{}
	for i := 0; i < len(results); i += len(apps.Kinds) {
		cell := Fig13Cell{
			App:      results[i].Job.App,
			Input:    results[i].Job.Input,
			Outcomes: map[apps.SystemKind]apps.Outcome{},
		}
		for _, res := range results[i : i+len(apps.Kinds)] {
			if res.Err != nil {
				if cell.Errs == nil {
					cell.Errs = map[apps.SystemKind]string{}
				}
				cell.Errs[res.Job.Kind] = ErrorClass(res.Err)
				continue
			}
			cell.Outcomes[res.Job.Kind] = res.Outcome
		}
		data.Cells = append(data.Cells, cell)
	}
	return data, nil
}

// GMeanSpeedup returns the geometric-mean speedup of `over` relative to
// `base` across cells of one app ("" = all apps). Cells missing either
// run are skipped.
func (d *Fig13Data) GMeanSpeedup(app string, over, base apps.SystemKind) float64 {
	var xs []float64
	for _, c := range d.Cells {
		if app != "" && c.App != app {
			continue
		}
		b := c.Outcomes[base].Cycles
		o := c.Outcomes[over].Cycles
		if o > 0 && b > 0 {
			xs = append(xs, float64(b)/float64(o))
		}
	}
	return stats.GMean(xs)
}

// MaxSpeedup returns the maximum speedup of `over` vs `base` and the cell
// where it occurs.
func (d *Fig13Data) MaxSpeedup(over, base apps.SystemKind) (float64, string) {
	best, where := 0.0, ""
	for _, c := range d.Cells {
		b := c.Outcomes[base].Cycles
		o := c.Outcomes[over].Cycles
		if o == 0 || b == 0 {
			continue
		}
		if s := float64(b) / float64(o); s > best {
			best, where = s, c.App+"/"+c.Input
		}
	}
	return best, where
}

// Print renders the Fig. 13 speedup tables plus the paper's headline
// comparisons from Sec. 8.1/8.2. Missing cells print "!class" placeholders
// and the headline gmeans are computed over the surviving cells.
func (d *Fig13Data) Print(w io.Writer) {
	fmt.Fprintln(w, "Figure 13: per-input speedup, normalized to the 4-core OOO baseline")
	app := ""
	var tbl *stats.Table
	flush := func() {
		if tbl != nil {
			fmt.Fprintf(w, "\n(%s)\n%s", app, tbl)
		}
	}
	for _, c := range d.Cells {
		if c.App != app {
			flush()
			app = c.App
			tbl = stats.NewTable("input", "serial-ooo", "4-core-ooo", "static-16pe", "fifer-16pe", "fifer/static")
		}
		cell := func(kind apps.SystemKind) string {
			if cls := c.Failed(kind); cls != "" {
				return "!" + cls
			}
			if cls := c.Failed(apps.MulticoreOOO); cls != "" {
				return "!no-baseline"
			}
			return fmt.Sprintf("%.2f", c.Speedup(kind))
		}
		fsCell := ""
		switch {
		case c.Failed(apps.StaticPipe) != "":
			fsCell = "!" + c.Failed(apps.StaticPipe)
		case c.Failed(apps.FiferPipe) != "":
			fsCell = "!" + c.Failed(apps.FiferPipe)
		default:
			fs := 0.0
			if s := c.Outcomes[apps.StaticPipe].Cycles; s > 0 {
				fs = float64(s) / float64(c.Outcomes[apps.FiferPipe].Cycles)
			}
			fsCell = fmt.Sprintf("%.2f", fs)
		}
		tbl.Add(c.Input,
			cell(apps.SerialOOO),
			cell(apps.MulticoreOOO),
			cell(apps.StaticPipe),
			cell(apps.FiferPipe),
			fsCell)
	}
	flush()

	if n := d.Failed(); n > 0 {
		fmt.Fprintf(w, "\nDEGRADED: %d simulation(s) missing; affected cells show !error-class and gmeans cover surviving cells only.\n", n)
	}
	fmt.Fprintln(w, "\nHeadline comparisons (paper, Sec. 8.1-8.2):")
	maxFS, where := d.MaxSpeedup(apps.FiferPipe, apps.StaticPipe)
	fmt.Fprintf(w, "  Fifer vs static pipeline:  gmean %.2fx (paper: 2.8x), max %.2fx at %s (paper: 5.5x at CC/Rd)\n",
		d.GMeanSpeedup("", apps.FiferPipe, apps.StaticPipe), maxFS, where)
	fmt.Fprintf(w, "  Fifer vs 4-core OOO:       gmean %.2fx (paper: >17x)\n",
		d.GMeanSpeedup("", apps.FiferPipe, apps.MulticoreOOO))
	fmt.Fprintf(w, "  Static vs serial OOO:      gmean %.2fx (paper: 25x)\n",
		d.GMeanSpeedup("", apps.StaticPipe, apps.SerialOOO))
	fmt.Fprintf(w, "  Fifer vs serial OOO:       gmean %.2fx (paper: 72x)\n",
		d.GMeanSpeedup("", apps.FiferPipe, apps.SerialOOO))
}
