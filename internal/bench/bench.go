// Package bench regenerates every table and figure from the paper's
// evaluation section (Sec. 8). Each experiment has a driver that runs the
// required (application × input × system) combinations and a formatter that
// prints the same rows or series the paper reports. DESIGN.md's experiment
// index maps each driver back to its table/figure.
package bench

import (
	"errors"
	"fmt"
	"time"

	"fifer/internal/apps"
	"fifer/internal/apps/bfs"
	"fifer/internal/apps/cc"
	"fifer/internal/apps/prd"
	"fifer/internal/apps/radii"
	"fifer/internal/apps/silo"
	"fifer/internal/apps/spmm"
	"fifer/internal/core"
	"fifer/internal/graph"
	"fifer/internal/sparse"
	"fifer/internal/trace"
)

// Options selects the workload size for all experiments.
type Options struct {
	Scale int      // 0 = tiny (tests/benches), 1 = small (default), 2 = medium
	Seed  uint64   //
	Apps  []string // subset of AppNames; nil means all

	// Jobs is the number of simulations the experiment drivers run
	// concurrently. <= 1 runs serially (the default, and what library
	// callers get unless they opt in); parallel runs produce bit-identical
	// results in the same order — see Runner.
	Jobs int
	// Progress, if non-nil, observes every job completion during driver
	// sweeps (Fig13, Fig16, Fig17, ZeroCost).
	Progress ProgressFunc

	// WatchdogCycles adjusts the core progress watchdog for every job:
	// 0 keeps the config default, > 0 sets the window, < 0 disables the
	// watchdog. Like the harness cycle cap it is applied before the per-job
	// Override, so an override that sets Config.WatchdogCycles wins.
	WatchdogCycles int64
	// AuditCycles likewise adjusts the live invariant audit period.
	AuditCycles int64

	// Cancel, when non-nil, cancels the whole sweep cooperatively once the
	// channel is closed: no new job starts, and every in-flight CGRA
	// simulation stops at its next cancellation checkpoint (core.Config.Done)
	// with an error wrapping core.ErrCanceled. The OOO baselines do not run
	// through the core loop and finish on their own. A never-closed Cancel
	// does not change any result.
	Cancel <-chan struct{}

	// JobTimeout, when positive, bounds each job's wall-clock time. The
	// deadline is enforced through the same cooperative core hook — the
	// simulation goroutine is stopped, never abandoned — and a timed-out
	// job's error wraps ErrJobTimeout. Wall-clock deadlines depend on
	// machine speed, so sweeps using them forfeit run-to-run determinism
	// for the jobs that time out.
	JobTimeout time.Duration

	// Retries is how many times a transiently-failed job (recovered panic,
	// exhausted cycle budget) is re-run before its error is final. Each
	// retry waits a capped exponential backoff with deterministic jitter,
	// and a cycle-budget retry doubles the job's budget.
	Retries int

	// MaxCycles overrides the harness cycle budget HarnessMaxCycles for
	// every job (0 keeps the default). The per-job Override still wins, as
	// it does for the other knobs.
	MaxCycles uint64

	// Journal, when non-nil, records every finished job durably and replays
	// journaled results on a resumed sweep. See CreateJournal/ResumeJournal.
	Journal *Journal

	// Trace, when non-nil, attaches an event collector and metrics sampler
	// to every CGRA simulation the sweep runs; see TraceSink. Applied before
	// the per-job Override, so an override that sets Config.Tracer (or
	// Metrics/MetricsCycles) wins.
	Trace *TraceSink

	// NoFastForward runs every simulation with the naive per-cycle loop
	// instead of the event-horizon fast-forward (core.Config.NoFastForward)
	// — the differential oracle. Results are bit-identical either way; only
	// wall-clock time differs. Applied before the per-job Override, which
	// wins as usual.
	NoFastForward bool

	// Shards > 1 runs every simulation on the sharded kernel
	// (core.Config.Shards): the PEs are partitioned into this many groups,
	// each ticked by its own goroutine under the deterministic epoch-barrier
	// protocol. Results are bit-identical to the sequential kernel — the
	// shard-invariance differential suite pins every surface — so this is
	// purely a wall-clock knob, orthogonal to Jobs (which parallelizes
	// across simulations). Applied before the per-job Override, which wins.
	Shards int
}

// DefaultOptions returns the standard harness configuration.
func DefaultOptions() Options { return Options{Scale: 1, Seed: 1} }

// AppNames lists the six benchmarks in the paper's order.
var AppNames = []string{bfs.Name, cc.Name, prd.Name, radii.Name, spmm.Name, silo.Name}

// InputsOf returns the input labels of an application (Table 3/4 names).
func InputsOf(app string) []string {
	switch app {
	case spmm.Name:
		out := make([]string, len(sparse.Inputs))
		for i, in := range sparse.Inputs {
			out[i] = string(in)
		}
		return out
	case silo.Name:
		return []string{"YCSB-C"}
	default:
		out := make([]string, len(graph.Inputs))
		for i, in := range graph.Inputs {
			out[i] = string(in)
		}
		return out
	}
}

// selected returns the apps chosen by opt.
func (opt Options) selected() []string {
	if len(opt.Apps) == 0 {
		return AppNames
	}
	return opt.Apps
}

// HarnessMaxCycles is the cycle budget RunOne imposes on every run so a
// misconfiguration surfaces as an error rather than an endless simulation.
const HarnessMaxCycles = 400_000_000

// ErrCycleBudget reports that a simulation ran out of its cycle budget
// (cfg.MaxCycles) before the program quiesced. RunOne translates the core
// layer's exhaustion error into this named error so harness callers can
// errors.Is for it and decide to raise the budget.
var ErrCycleBudget = errors.New("bench: simulation cycle budget exhausted (raise Config.MaxCycles via the override)")

// RunOne executes one (app, input, system) combination.
//
// The harness cap HarnessMaxCycles is applied to cfg.MaxCycles BEFORE the
// user override runs, so an override that sets MaxCycles always wins:
// callers can intentionally raise (or lower) the budget. If the budget is
// exhausted the returned error wraps ErrCycleBudget.
func RunOne(app, input string, kind apps.SystemKind, merged bool, opt Options, override func(*core.Config)) (apps.Outcome, error) {
	var col *trace.Collector
	if opt.Trace != nil {
		n := opt.Trace.BufEvents
		if n <= 0 {
			n = trace.DefaultBufEvents
		}
		col = trace.NewCollector(n)
	}
	user := override
	override = func(cfg *core.Config) {
		cfg.MaxCycles = HarnessMaxCycles
		if opt.MaxCycles > 0 {
			cfg.MaxCycles = opt.MaxCycles
		}
		if opt.Cancel != nil {
			cfg.Done = opt.Cancel
		}
		if opt.WatchdogCycles != 0 {
			cfg.WatchdogCycles = cyclesKnob(opt.WatchdogCycles)
		}
		if opt.AuditCycles != 0 {
			cfg.AuditCycles = cyclesKnob(opt.AuditCycles)
		}
		if col != nil {
			cfg.Tracer = col
			cfg.Metrics = col
			cfg.MetricsCycles = opt.Trace.SampleCycles
		}
		if opt.NoFastForward {
			cfg.NoFastForward = true
		}
		if opt.Shards > 1 {
			cfg.Shards = opt.Shards
		}
		if user != nil {
			user(cfg)
		}
	}
	out, err := runApp(app, input, kind, merged, opt, override)
	if col != nil {
		opt.Trace.add(jobKey(app, input, kind, merged), col)
	}
	if err != nil && errors.Is(err, core.ErrMaxCycles) {
		err = fmt.Errorf("%w: %s/%s on %v: %w", ErrCycleBudget, app, input, kind, err)
	}
	return out, err
}

// cyclesKnob maps an Options cycle knob to a config value: negative
// disables the mechanism (0 in the config), positive passes through.
func cyclesKnob(v int64) uint64 {
	if v < 0 {
		return 0
	}
	return uint64(v)
}

// runApp dispatches to the application packages.
func runApp(app, input string, kind apps.SystemKind, merged bool, opt Options, override func(*core.Config)) (apps.Outcome, error) {
	switch app {
	case bfs.Name:
		return bfs.Run(kind, graph.Input(input), graph.Scale(opt.Scale), opt.Seed, merged, override)
	case cc.Name:
		return cc.Run(kind, graph.Input(input), graph.Scale(opt.Scale), opt.Seed, merged, override)
	case prd.Name:
		return prd.Run(kind, graph.Input(input), graph.Scale(opt.Scale), opt.Seed, merged, override)
	case radii.Name:
		return radii.Run(kind, graph.Input(input), graph.Scale(opt.Scale), opt.Seed, merged, override)
	case spmm.Name:
		return spmm.Run(kind, sparse.Input(input), opt.Scale, opt.Seed, merged, override)
	case silo.Name:
		return silo.Run(kind, opt.Scale, opt.Seed, merged, override)
	}
	return apps.Outcome{}, fmt.Errorf("bench: unknown app %q", app)
}
