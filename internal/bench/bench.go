// Package bench regenerates every table and figure from the paper's
// evaluation section (Sec. 8). Each experiment has a driver that runs the
// required (application × input × system) combinations and a formatter that
// prints the same rows or series the paper reports. DESIGN.md's experiment
// index maps each driver back to its table/figure.
package bench

import (
	"fmt"

	"fifer/internal/apps"
	"fifer/internal/apps/bfs"
	"fifer/internal/apps/cc"
	"fifer/internal/apps/prd"
	"fifer/internal/apps/radii"
	"fifer/internal/apps/silo"
	"fifer/internal/apps/spmm"
	"fifer/internal/core"
	"fifer/internal/graph"
	"fifer/internal/sparse"
)

// Options selects the workload size for all experiments.
type Options struct {
	Scale int      // 0 = tiny (tests/benches), 1 = small (default), 2 = medium
	Seed  uint64   //
	Apps  []string // subset of AppNames; nil means all
}

// DefaultOptions returns the standard harness configuration.
func DefaultOptions() Options { return Options{Scale: 1, Seed: 1} }

// AppNames lists the six benchmarks in the paper's order.
var AppNames = []string{bfs.Name, cc.Name, prd.Name, radii.Name, spmm.Name, silo.Name}

// InputsOf returns the input labels of an application (Table 3/4 names).
func InputsOf(app string) []string {
	switch app {
	case spmm.Name:
		out := make([]string, len(sparse.Inputs))
		for i, in := range sparse.Inputs {
			out[i] = string(in)
		}
		return out
	case silo.Name:
		return []string{"YCSB-C"}
	default:
		out := make([]string, len(graph.Inputs))
		for i, in := range graph.Inputs {
			out[i] = string(in)
		}
		return out
	}
}

// selected returns the apps chosen by opt.
func (opt Options) selected() []string {
	if len(opt.Apps) == 0 {
		return AppNames
	}
	return opt.Apps
}

// RunOne executes one (app, input, system) combination. Harness runs get a
// bounded cycle budget so a misconfiguration surfaces as an error rather
// than an endless simulation.
func RunOne(app, input string, kind apps.SystemKind, merged bool, opt Options, override func(*core.Config)) (apps.Outcome, error) {
	user := override
	override = func(cfg *core.Config) {
		cfg.MaxCycles = 400_000_000
		if user != nil {
			user(cfg)
		}
	}
	switch app {
	case bfs.Name:
		return bfs.Run(kind, graph.Input(input), graph.Scale(opt.Scale), opt.Seed, merged, override)
	case cc.Name:
		return cc.Run(kind, graph.Input(input), graph.Scale(opt.Scale), opt.Seed, merged, override)
	case prd.Name:
		return prd.Run(kind, graph.Input(input), graph.Scale(opt.Scale), opt.Seed, merged, override)
	case radii.Name:
		return radii.Run(kind, graph.Input(input), graph.Scale(opt.Scale), opt.Seed, merged, override)
	case spmm.Name:
		return spmm.Run(kind, sparse.Input(input), opt.Scale, opt.Seed, merged, override)
	case silo.Name:
		return silo.Run(kind, opt.Scale, opt.Seed, merged, override)
	}
	return apps.Outcome{}, fmt.Errorf("bench: unknown app %q", app)
}
