package bench

import (
	"fmt"
	"io"

	"fifer/internal/apps"
	"fifer/internal/core"
	"fifer/internal/stats"
)

// Fig16Point is one (app, scale-factor, double-buffering) measurement:
// gmean speedup across inputs relative to the default configuration
// (16 KB, double-buffered). In a degraded sweep ErrClass carries the first
// error class among the point's missing inputs; the gmean then covers only
// the surviving inputs (and is 0 when none survive).
type Fig16Point struct {
	App      string
	Factor   float64
	Double   bool
	Speedup  float64
	ErrClass string
}

// Fig16Factors is the paper's queue-memory sweep (1x = 16 KB).
var Fig16Factors = []float64{0.25, 0.5, 1, 2, 4}

// Fig16 sweeps per-PE queue memory and double-buffered configuration cells
// on the Fifer system. Baseline and sweep jobs are enumerated together and
// run on opt's worker pool; speedups are computed from the collected
// results. Failed or canceled jobs degrade their points (ErrClass) instead
// of aborting the sweep.
func Fig16(opt Options) ([]Fig16Point, error) {
	type meta struct {
		app, input     string
		factor         float64
		double, isBase bool
	}
	var jobs []Job
	var metas []meta
	for _, app := range opt.selected() {
		for _, input := range InputsOf(app) {
			// Baseline cycles per input (factor 1, double-buffered).
			jobs = append(jobs, Job{App: app, Input: input, Kind: apps.FiferPipe})
			metas = append(metas, meta{app: app, input: input, isBase: true})
		}
		for _, factor := range Fig16Factors {
			for _, double := range []bool{true, false} {
				for _, input := range InputsOf(app) {
					f, d := factor, double
					jobs = append(jobs, Job{App: app, Input: input, Kind: apps.FiferPipe,
						Override: func(cfg *core.Config) {
							*cfg = cfg.WithQueueScale(f)
							cfg.DoubleBuffered = d
						}})
					metas = append(metas, meta{app: app, input: input, factor: factor, double: double})
				}
			}
		}
	}
	results := opt.runner("fig16").Run(opt, jobs)
	if err := abortError(results); err != nil {
		return nil, err
	}

	base := make(map[[2]string]uint64)    // (app, input) -> baseline cycles
	baseErr := make(map[[2]string]string) // (app, input) -> baseline error class
	for i, m := range metas {
		if !m.isBase {
			continue
		}
		if err := results[i].Err; err != nil {
			baseErr[[2]string{m.app, m.input}] = ErrorClass(err)
			continue
		}
		base[[2]string{m.app, m.input}] = results[i].Outcome.Cycles
	}
	// Points keep the serial sweep's order: per app, factor-major then
	// double-buffer, gmean across that app's inputs.
	var points []Fig16Point
	type ptKey struct {
		app    string
		factor float64
		double bool
	}
	speedups := map[ptKey][]float64{}
	errCls := map[ptKey]string{}
	for i, m := range metas {
		if m.isBase {
			continue
		}
		k := ptKey{m.app, m.factor, m.double}
		in := [2]string{m.app, m.input}
		switch {
		case results[i].Err != nil:
			if errCls[k] == "" {
				errCls[k] = ErrorClass(results[i].Err)
			}
		case baseErr[in] != "":
			// The sweep run succeeded but its normalization baseline is
			// missing; the input drops out of this point's gmean.
			if errCls[k] == "" {
				errCls[k] = baseErr[in]
			}
		default:
			speedups[k] = append(speedups[k], float64(base[in])/float64(results[i].Outcome.Cycles))
		}
	}
	for _, app := range opt.selected() {
		for _, factor := range Fig16Factors {
			for _, double := range []bool{true, false} {
				k := ptKey{app, factor, double}
				points = append(points, Fig16Point{App: app, Factor: factor, Double: double,
					Speedup: stats.GMean(speedups[k]), ErrClass: errCls[k]})
			}
		}
	}
	return points, nil
}

// PrintFig16 renders the sweep as the paper's per-app series. Points with
// missing inputs are annotated: "!class" when nothing survived, "value*"
// when the gmean covers a strict subset of the inputs.
func PrintFig16(w io.Writer, points []Fig16Point, opt Options) {
	fmt.Fprintln(w, "Figure 16: Fifer speedup vs per-PE queue memory (1x = 16 KB), with and")
	fmt.Fprintln(w, "without double-buffered configuration cells, relative to the 1x default")
	tbl := stats.NewTable("app", "variant", "0.25x", "0.5x", "1x", "2x", "4x")
	degraded := false
	for _, app := range opt.selected() {
		for _, double := range []bool{true, false} {
			label := "double-buffered"
			if !double {
				label = "no-double-buffer"
			}
			row := []any{app, label}
			for _, f := range Fig16Factors {
				for _, pt := range points {
					if pt.App == app && pt.Factor == f && pt.Double == double {
						if pt.ErrClass != "" {
							degraded = true
						}
						row = append(row, degradedCell(pt.Speedup, pt.ErrClass))
					}
				}
			}
			tbl.Add(row...)
		}
	}
	fmt.Fprint(w, tbl)
	if degraded {
		fmt.Fprintln(w, "DEGRADED: some simulations are missing; !class cells have no data, * marks partial gmeans.")
	}
}

// ZeroCostResult compares default Fifer to idealized zero-cost
// reconfiguration (Sec. 8.3's final experiment). Failed counts (app, input)
// pairs that could not contribute; ErrClass is the first error class seen.
type ZeroCostResult struct {
	GMean    float64
	Max      float64
	Where    string
	Failed   int
	ErrClass string
}

// ZeroCost measures the speedup of free reconfiguration over the default.
// Jobs are enumerated in (default, idealized) pairs per (app, input) and
// run on opt's worker pool; failed pairs degrade the aggregate instead of
// aborting it.
func ZeroCost(opt Options) (ZeroCostResult, error) {
	var res ZeroCostResult
	var jobs []Job
	for _, app := range opt.selected() {
		for _, input := range InputsOf(app) {
			jobs = append(jobs, Job{App: app, Input: input, Kind: apps.FiferPipe})
			jobs = append(jobs, Job{App: app, Input: input, Kind: apps.FiferPipe,
				Override: func(cfg *core.Config) { cfg.ZeroCostReconfig = true }})
		}
	}
	results := opt.runner("zerocost").Run(opt, jobs)
	if err := abortError(results); err != nil {
		return res, err
	}
	var xs []float64
	for i := 0; i < len(results); i += 2 {
		base, ideal := results[i], results[i+1]
		if base.Err != nil || ideal.Err != nil {
			res.Failed++
			if res.ErrClass == "" {
				bad := base.Err
				if bad == nil {
					bad = ideal.Err
				}
				res.ErrClass = ErrorClass(bad)
			}
			continue
		}
		s := float64(base.Outcome.Cycles) / float64(ideal.Outcome.Cycles)
		xs = append(xs, s)
		if s > res.Max {
			res.Max, res.Where = s, base.Job.App+"/"+base.Job.Input
		}
	}
	res.GMean = stats.GMean(xs)
	return res, nil
}

// PrintZeroCost renders the Sec. 8.3 zero-cost-reconfiguration claim.
func PrintZeroCost(w io.Writer, r ZeroCostResult) {
	fmt.Fprintln(w, "Sec. 8.3: idealized zero-cost reconfiguration vs Fifer")
	fmt.Fprintf(w, "  gmean speedup %.2fx (paper: ~1.10x), max %.2fx at %s (paper: 1.8x on SpMM/Gr)\n",
		r.GMean, r.Max, r.Where)
	if r.Failed > 0 {
		fmt.Fprintf(w, "  DEGRADED: %d input pair(s) missing (%s); the aggregate covers surviving pairs only.\n",
			r.Failed, r.ErrClass)
	}
	fmt.Fprintln(w, "  Conclusion (paper): a poor tradeoff — too much complexity for limited benefit.")
}
