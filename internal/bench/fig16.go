package bench

import (
	"fmt"
	"io"

	"fifer/internal/apps"
	"fifer/internal/core"
	"fifer/internal/stats"
)

// Fig16Point is one (app, scale-factor, double-buffering) measurement:
// gmean speedup across inputs relative to the default configuration
// (16 KB, double-buffered).
type Fig16Point struct {
	App     string
	Factor  float64
	Double  bool
	Speedup float64
}

// Fig16Factors is the paper's queue-memory sweep (1x = 16 KB).
var Fig16Factors = []float64{0.25, 0.5, 1, 2, 4}

// Fig16 sweeps per-PE queue memory and double-buffered configuration cells
// on the Fifer system.
func Fig16(opt Options) ([]Fig16Point, error) {
	var points []Fig16Point
	for _, app := range opt.selected() {
		inputs := InputsOf(app)
		// Baseline cycles per input (factor 1, double-buffered).
		base := make(map[string]uint64)
		for _, input := range inputs {
			out, err := RunOne(app, input, apps.FiferPipe, false, opt, nil)
			if err != nil {
				return nil, fmt.Errorf("fig16 %s/%s base: %w", app, input, err)
			}
			base[input] = out.Cycles
		}
		for _, factor := range Fig16Factors {
			for _, double := range []bool{true, false} {
				var xs []float64
				for _, input := range inputs {
					f, d := factor, double
					out, err := RunOne(app, input, apps.FiferPipe, false, opt, func(cfg *core.Config) {
						*cfg = cfg.WithQueueScale(f)
						cfg.DoubleBuffered = d
					})
					if err != nil {
						return nil, fmt.Errorf("fig16 %s/%s x%.2g db=%v: %w", app, input, factor, double, err)
					}
					xs = append(xs, float64(base[input])/float64(out.Cycles))
				}
				points = append(points, Fig16Point{App: app, Factor: factor, Double: double, Speedup: stats.GMean(xs)})
			}
		}
	}
	return points, nil
}

// PrintFig16 renders the sweep as the paper's per-app series.
func PrintFig16(w io.Writer, points []Fig16Point, opt Options) {
	fmt.Fprintln(w, "Figure 16: Fifer speedup vs per-PE queue memory (1x = 16 KB), with and")
	fmt.Fprintln(w, "without double-buffered configuration cells, relative to the 1x default")
	tbl := stats.NewTable("app", "variant", "0.25x", "0.5x", "1x", "2x", "4x")
	for _, app := range opt.selected() {
		for _, double := range []bool{true, false} {
			label := "double-buffered"
			if !double {
				label = "no-double-buffer"
			}
			row := []any{app, label}
			for _, f := range Fig16Factors {
				for _, pt := range points {
					if pt.App == app && pt.Factor == f && pt.Double == double {
						row = append(row, fmt.Sprintf("%.2f", pt.Speedup))
					}
				}
			}
			tbl.Add(row...)
		}
	}
	fmt.Fprint(w, tbl)
}

// ZeroCostResult compares default Fifer to idealized zero-cost
// reconfiguration (Sec. 8.3's final experiment).
type ZeroCostResult struct {
	GMean float64
	Max   float64
	Where string
}

// ZeroCost measures the speedup of free reconfiguration over the default.
func ZeroCost(opt Options) (ZeroCostResult, error) {
	var res ZeroCostResult
	var xs []float64
	for _, app := range opt.selected() {
		for _, input := range InputsOf(app) {
			base, err := RunOne(app, input, apps.FiferPipe, false, opt, nil)
			if err != nil {
				return res, err
			}
			ideal, err := RunOne(app, input, apps.FiferPipe, false, opt, func(cfg *core.Config) {
				cfg.ZeroCostReconfig = true
			})
			if err != nil {
				return res, err
			}
			s := float64(base.Cycles) / float64(ideal.Cycles)
			xs = append(xs, s)
			if s > res.Max {
				res.Max, res.Where = s, app+"/"+input
			}
		}
	}
	res.GMean = stats.GMean(xs)
	return res, nil
}

// PrintZeroCost renders the Sec. 8.3 zero-cost-reconfiguration claim.
func PrintZeroCost(w io.Writer, r ZeroCostResult) {
	fmt.Fprintln(w, "Sec. 8.3: idealized zero-cost reconfiguration vs Fifer")
	fmt.Fprintf(w, "  gmean speedup %.2fx (paper: ~1.10x), max %.2fx at %s (paper: 1.8x on SpMM/Gr)\n",
		r.GMean, r.Max, r.Where)
	fmt.Fprintln(w, "  Conclusion (paper): a poor tradeoff — too much complexity for limited benefit.")
}
