package bench

import (
	"errors"
	"testing"

	"fifer/internal/apps"
	"fifer/internal/core"
)

// TestRunOneCapBeforeOverride pins the documented override ordering: the
// harness cap on MaxCycles is applied before the user override runs, so
// the override observes the capped value and can intentionally replace it.
func TestRunOneCapBeforeOverride(t *testing.T) {
	var seen uint64
	_, err := RunOne("BFS", "Hu", apps.FiferPipe, false, Options{Scale: 0, Seed: 1},
		func(cfg *core.Config) { seen = cfg.MaxCycles })
	if err != nil {
		t.Fatal(err)
	}
	if seen != HarnessMaxCycles {
		t.Fatalf("override saw MaxCycles=%d, want the harness cap %d (cap must be applied first)", seen, HarnessMaxCycles)
	}
}

// TestRunOneCycleBudgetError checks that an override lowering the budget
// wins over the harness cap (proving user overrides are applied last) and
// that exhaustion surfaces as the named ErrCycleBudget, still wrapping the
// core layer's sentinel.
func TestRunOneCycleBudgetError(t *testing.T) {
	_, err := RunOne("BFS", "Hu", apps.FiferPipe, false, Options{Scale: 0, Seed: 1},
		func(cfg *core.Config) { cfg.MaxCycles = 10 })
	if err == nil {
		t.Fatal("MaxCycles=10 run succeeded; override did not win over the harness cap")
	}
	if !errors.Is(err, ErrCycleBudget) {
		t.Fatalf("err = %v, want errors.Is(err, ErrCycleBudget)", err)
	}
	if !errors.Is(err, core.ErrMaxCycles) {
		t.Fatalf("err = %v, want it to still wrap core.ErrMaxCycles", err)
	}
}

// TestRunnerCapturesCycleBudgetError checks the named error also comes
// back through the worker pool's per-job capture.
func TestRunnerCapturesCycleBudgetError(t *testing.T) {
	jobs := []Job{
		{App: "BFS", Input: "Hu", Kind: apps.FiferPipe,
			Override: func(cfg *core.Config) { cfg.MaxCycles = 10 }},
		{App: "BFS", Input: "Hu", Kind: apps.FiferPipe},
	}
	results := Runner{Workers: 2}.Run(Options{Scale: 0, Seed: 1}, jobs)
	if !errors.Is(results[0].Err, ErrCycleBudget) {
		t.Fatalf("job 0 err = %v, want ErrCycleBudget", results[0].Err)
	}
	if results[1].Err != nil {
		t.Fatalf("job 1 err = %v, want success despite job 0 failing", results[1].Err)
	}
}
