package bench

import (
	"errors"
	"fmt"
	"hash/fnv"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"fifer/internal/apps"
	"fifer/internal/core"
)

// Job describes one simulation: the same tuple RunOne accepts. Experiment
// drivers enumerate their full job list up front and hand it to a Runner,
// so the (app × input × system) sweeps that dominate regeneration time can
// fan out across cores.
type Job struct {
	App, Input string
	Kind       apps.SystemKind
	Merged     bool
	Override   func(*core.Config)
}

// key renders the job's identity for error messages and retry jitter.
func (j Job) key() string {
	s := fmt.Sprintf("%s/%s %v", j.App, j.Input, j.Kind)
	if j.Merged {
		s += " merged"
	}
	return s
}

// JobResult pairs a job with its outcome. Exactly one of Outcome/Err is
// meaningful: a failed simulation carries its error here instead of
// aborting the batch, so one bad configuration cannot take down or reorder
// the rest of a sweep.
type JobResult struct {
	Job     Job
	Outcome apps.Outcome
	Err     error

	// Attempts is how many times the job ran (1 + retries taken). It is 0
	// only for jobs the sweep never started (canceled before dispatch).
	Attempts int
	// Replayed marks a result served from a resumed journal rather than a
	// fresh simulation.
	Replayed bool
}

// ProgressFunc observes job completions. done counts completed jobs
// (1..total); calls are serialized, but arrive in completion order, not
// submission order. Every job is reported exactly once — including jobs
// replayed from a journal, retried (one call, after the final attempt),
// canceled mid-run, or skipped because the sweep was canceled before they
// started — so done always reaches total.
type ProgressFunc func(done, total int, res JobResult)

// Retry backoff defaults: attempt n waits base<<(n-1), capped, plus a
// deterministic jitter derived from the job key so simultaneous retries of
// a batch spread out identically on every run.
const (
	defaultRetryBase = 250 * time.Millisecond
	defaultRetryCap  = 5 * time.Second
)

// Runner executes batches of simulation jobs on a bounded worker pool.
//
// Results are returned in submission order regardless of completion order,
// and every simulation is self-contained (fresh RNG, freshly generated
// inputs), so a parallel run's outcomes are bit-identical to a serial
// run's. The determinism test in determinism_test.go pins this down.
//
// The Options carried into Run add the crash-safety layer: Cancel stops
// the sweep cooperatively, JobTimeout bounds each job's wall-clock time,
// Retries re-runs transient failures, and Journal makes finished work
// durable and resumable. None of them changes any result when unused.
type Runner struct {
	// Workers bounds the number of concurrently running simulations.
	// <= 0 means runtime.GOMAXPROCS(0); 1 reproduces fully serial
	// execution.
	Workers int
	// Progress, if non-nil, is invoked after each job completes.
	Progress ProgressFunc
	// Sweep labels this batch's records in the journal (e.g. "fig13") so
	// the same journal can serve several drivers without index collisions.
	Sweep string
	// RetryBase and RetryCap override the retry backoff (0 = defaults).
	RetryBase, RetryCap time.Duration

	// run stubs out RunOne in unit tests.
	run func(Job, Options) (apps.Outcome, error)
}

// Run executes jobs and returns one JobResult per job, index-aligned with
// the input slice. It always returns every job: errors are captured per
// job, never short-circuited, and when the sweep is canceled the jobs that
// never started still come back, carrying a canceled error.
func (r Runner) Run(opt Options, jobs []Job) []JobResult {
	if len(jobs) == 0 {
		// Explicit empty-batch path: nothing to clamp workers against,
		// nothing to journal, no Progress calls.
		return []JobResult{}
	}
	workers := r.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}

	results := make([]JobResult, len(jobs))
	var progressMu sync.Mutex
	done := 0
	finish := func(i int, res JobResult) {
		results[i] = res
		if !res.Replayed {
			opt.Journal.record(r.Sweep, i, res)
		}
		if r.Progress != nil {
			progressMu.Lock()
			done++
			r.Progress(done, len(jobs), results[i])
			progressMu.Unlock()
		}
	}

	// Replay pass: serve journaled results first (in submission order),
	// then run only the remainder.
	pending := make([]int, 0, len(jobs))
	for i, j := range jobs {
		if res, ok := opt.Journal.replayResult(r.Sweep, i, j); ok {
			finish(i, res)
		} else {
			pending = append(pending, i)
		}
	}

	runJob := func(i int) {
		if canceled(opt.Cancel) {
			// Stopped admitting work: the job is reported (and journaled)
			// as canceled-before-start so a resume reschedules it.
			finish(i, JobResult{Job: jobs[i], Err: fmt.Errorf(
				"bench: %s skipped: sweep canceled before it started: %w", jobs[i].key(), core.ErrCanceled)})
			return
		}
		out, attempts, err := r.runWithRetry(jobs[i], opt)
		finish(i, JobResult{Job: jobs[i], Outcome: out, Err: err, Attempts: attempts})
	}

	if workers <= 1 {
		for _, i := range pending {
			runJob(i)
		}
		return results
	}

	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				runJob(i)
			}
		}()
	}
	for _, i := range pending {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return results
}

// runWithRetry runs one job through the retry policy, returning the final
// attempt's outcome and how many attempts ran.
func (r Runner) runWithRetry(j Job, opt Options) (apps.Outcome, int, error) {
	budget := opt.MaxCycles
	for attempt := 1; ; attempt++ {
		out, err := r.attempt(j, opt, budget)
		if err == nil || attempt > opt.Retries || !transientError(err) || canceled(opt.Cancel) {
			return out, attempt, err
		}
		if errors.Is(err, ErrCycleBudget) {
			// Retrying with the same budget would burn the same cycles to
			// the same wall; double it instead.
			if budget == 0 {
				budget = HarnessMaxCycles
			}
			budget *= 2
		}
		if !sleepBackoff(j, attempt, r.RetryBase, r.RetryCap, opt.Cancel) {
			return out, attempt, err // canceled mid-backoff; keep the real error
		}
	}
}

// attempt runs the job once, with the per-job wall-clock deadline merged
// into the cooperative cancellation channel.
func (r Runner) attempt(j Job, opt Options, budget uint64) (apps.Outcome, error) {
	runOne := r.run
	if runOne == nil {
		runOne = func(j Job, opt Options) (apps.Outcome, error) {
			return RunOne(j.App, j.Input, j.Kind, j.Merged, opt, j.Override)
		}
	}
	// A panicking job must not take down (or reorder) the batch: recover it
	// into a per-job *PanicError and keep going.
	runOne = protect(runOne)

	jobOpt := opt
	jobOpt.MaxCycles = budget
	if opt.JobTimeout <= 0 {
		return runOne(j, jobOpt)
	}

	// Merge the sweep-wide Cancel and this job's deadline into one done
	// channel; timedOut disambiguates which of the two fired.
	jobDone := make(chan struct{})
	var once sync.Once
	stop := func() { once.Do(func() { close(jobDone) }) }
	var timedOut atomic.Bool
	timer := time.AfterFunc(opt.JobTimeout, func() {
		timedOut.Store(true)
		stop()
	})
	defer timer.Stop()
	if opt.Cancel != nil {
		finished := make(chan struct{})
		defer close(finished)
		go func() {
			select {
			case <-opt.Cancel:
				stop()
			case <-finished:
			}
		}()
	}
	jobOpt.Cancel = jobDone

	out, err := runOne(j, jobOpt)
	if err != nil && timedOut.Load() && errors.Is(err, core.ErrCanceled) {
		err = fmt.Errorf("bench: %s: %w (%v): %w", j.key(), ErrJobTimeout, opt.JobTimeout, err)
	}
	return out, err
}

// sleepBackoff waits out the capped exponential backoff before retry
// `attempt`, with deterministic jitter from the job key. It returns false
// if the sweep was canceled during the wait.
func sleepBackoff(j Job, attempt int, base, cap time.Duration, cancel <-chan struct{}) bool {
	if base <= 0 {
		base = defaultRetryBase
	}
	if cap <= 0 {
		cap = defaultRetryCap
	}
	delay := base
	for i := 1; i < attempt && delay < cap; i++ {
		delay *= 2
	}
	if delay > cap {
		delay = cap
	}
	// Deterministic jitter in [0, delay/2): the same job retries after the
	// same wait on every run, but different jobs in a batch spread out.
	h := fnv.New64a()
	fmt.Fprintf(h, "%s#%d", j.key(), attempt)
	if half := uint64(delay / 2); half > 0 {
		delay += time.Duration(h.Sum64() % half)
	}
	select {
	case <-time.After(delay):
		return true
	case <-cancel:
		return false
	}
}

// canceled reports whether the sweep's cancel channel is closed.
func canceled(cancel <-chan struct{}) bool {
	if cancel == nil {
		return false
	}
	select {
	case <-cancel:
		return true
	default:
		return false
	}
}

// runner builds the Runner the experiment drivers share, honoring
// opt.Jobs. Options defaults to serial (Jobs == 0 → 1 worker) so library
// callers keep today's behavior unless they opt in; cmd/fiferbench
// defaults -j to runtime.NumCPU(). sweep labels the driver's records in
// the journal.
func (opt Options) runner(sweep string) Runner {
	workers := opt.Jobs
	if workers <= 0 {
		workers = 1
	}
	return Runner{Workers: workers, Progress: opt.Progress, Sweep: sweep}
}

// firstError returns the first failed result in submission order, or nil.
func firstError(results []JobResult) *JobResult {
	for i := range results {
		if results[i].Err != nil {
			return &results[i]
		}
	}
	return nil
}
