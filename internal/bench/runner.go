package bench

import (
	"runtime"
	"sync"

	"fifer/internal/apps"
	"fifer/internal/core"
)

// Job describes one simulation: the same tuple RunOne accepts. Experiment
// drivers enumerate their full job list up front and hand it to a Runner,
// so the (app × input × system) sweeps that dominate regeneration time can
// fan out across cores.
type Job struct {
	App, Input string
	Kind       apps.SystemKind
	Merged     bool
	Override   func(*core.Config)
}

// JobResult pairs a job with its outcome. Exactly one of Outcome/Err is
// meaningful: a failed simulation carries its error here instead of
// aborting the batch, so one bad configuration cannot take down or reorder
// the rest of a sweep.
type JobResult struct {
	Job     Job
	Outcome apps.Outcome
	Err     error
}

// ProgressFunc observes job completions. done counts completed jobs
// (1..total); calls are serialized, but arrive in completion order, not
// submission order.
type ProgressFunc func(done, total int, res JobResult)

// Runner executes batches of simulation jobs on a bounded worker pool.
//
// Results are returned in submission order regardless of completion order,
// and every simulation is self-contained (fresh RNG, freshly generated
// inputs), so a parallel run's outcomes are bit-identical to a serial
// run's. The determinism test in determinism_test.go pins this down.
type Runner struct {
	// Workers bounds the number of concurrently running simulations.
	// <= 0 means runtime.GOMAXPROCS(0); 1 reproduces fully serial
	// execution.
	Workers int
	// Progress, if non-nil, is invoked after each job completes.
	Progress ProgressFunc

	// run stubs out RunOne in unit tests.
	run func(Job, Options) (apps.Outcome, error)
}

// Run executes jobs and returns one JobResult per job, index-aligned with
// the input slice. It always runs every job: errors are captured per job,
// never short-circuited.
func (r Runner) Run(opt Options, jobs []Job) []JobResult {
	workers := r.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	runOne := r.run
	if runOne == nil {
		runOne = func(j Job, opt Options) (apps.Outcome, error) {
			return RunOne(j.App, j.Input, j.Kind, j.Merged, opt, j.Override)
		}
	}
	// A panicking job must not take down (or reorder) the batch: recover it
	// into a per-job *PanicError and keep going.
	runOne = protect(runOne)

	results := make([]JobResult, len(jobs))
	var progressMu sync.Mutex
	done := 0
	finish := func(i int, out apps.Outcome, err error) {
		results[i] = JobResult{Job: jobs[i], Outcome: out, Err: err}
		if r.Progress != nil {
			progressMu.Lock()
			done++
			r.Progress(done, len(jobs), results[i])
			progressMu.Unlock()
		}
	}

	if workers <= 1 {
		for i, j := range jobs {
			out, err := runOne(j, opt)
			finish(i, out, err)
		}
		return results
	}

	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				out, err := runOne(jobs[i], opt)
				finish(i, out, err)
			}
		}()
	}
	for i := range jobs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return results
}

// runner builds the Runner the experiment drivers share, honoring
// opt.Jobs. Options defaults to serial (Jobs == 0 → 1 worker) so library
// callers keep today's behavior unless they ask for parallelism;
// cmd/fiferbench defaults -j to runtime.NumCPU().
func (opt Options) runner() Runner {
	workers := opt.Jobs
	if workers <= 0 {
		workers = 1
	}
	return Runner{Workers: workers, Progress: opt.Progress}
}

// firstError returns the first failed result in submission order, or nil.
func firstError(results []JobResult) *JobResult {
	for i := range results {
		if results[i].Err != nil {
			return &results[i]
		}
	}
	return nil
}
