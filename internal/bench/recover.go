package bench

import (
	"fmt"
	"runtime/debug"

	"fifer/internal/apps"
)

// PanicError captures a panic that escaped one simulation job: the panic
// value plus the goroutine stack at the point of recovery, tagged with the
// job's identity so a batch report names the culprit directly instead of
// requiring the reader to cross-reference result indices. The Runner
// converts panics into this error so a corrupted or misconfigured job fails
// alone while the rest of the sweep completes with untouched results.
//
// Note the division of labor with the core layer: Run recovers the queue
// layer's typed corruption panics itself (into core.ErrInvariant, with a
// state-dump excerpt), so what reaches this recovery is the unexpected
// remainder — bad configs panicking in NewSystem, nil derefs, index errors.
type PanicError struct {
	// App, Input, Kind, and Merged identify the job that panicked.
	App, Input string
	Kind       apps.SystemKind
	Merged     bool

	Value any
	Stack []byte
}

// Error renders the job identity and panic value followed by the captured
// stack.
func (e *PanicError) Error() string {
	merged := ""
	if e.Merged {
		merged = " merged"
	}
	return fmt.Sprintf("bench: simulation %s/%s %v%s panicked: %v\n%s",
		e.App, e.Input, e.Kind, merged, e.Value, e.Stack)
}

// Unwrap exposes the panic value when it was itself an error, so
// errors.Is/As reach through a recovered panic(err) to the original error
// chain. Non-error panic values unwrap to nothing.
func (e *PanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// protect wraps a job-running function with panic recovery.
func protect(run func(Job, Options) (apps.Outcome, error)) func(Job, Options) (apps.Outcome, error) {
	return func(j Job, opt Options) (out apps.Outcome, err error) {
		defer func() {
			if r := recover(); r != nil {
				out = apps.Outcome{}
				err = &PanicError{App: j.App, Input: j.Input, Kind: j.Kind, Merged: j.Merged,
					Value: r, Stack: debug.Stack()}
			}
		}()
		return run(j, opt)
	}
}
