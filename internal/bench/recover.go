package bench

import (
	"fmt"
	"runtime/debug"

	"fifer/internal/apps"
)

// PanicError captures a panic that escaped one simulation job: the panic
// value plus the goroutine stack at the point of recovery. The Runner
// converts panics into this error so a corrupted or misconfigured job fails
// alone — carrying enough context to be diagnosed from the batch report —
// while the rest of the sweep completes with untouched results.
//
// Note the division of labor with the core layer: Run recovers the queue
// layer's typed corruption panics itself (into core.ErrInvariant, with a
// state-dump excerpt), so what reaches this recovery is the unexpected
// remainder — bad configs panicking in NewSystem, nil derefs, index errors.
type PanicError struct {
	Value any
	Stack []byte
}

// Error renders the panic value followed by the captured stack.
func (e *PanicError) Error() string {
	return fmt.Sprintf("bench: simulation panicked: %v\n%s", e.Value, e.Stack)
}

// protect wraps a job-running function with panic recovery.
func protect(run func(Job, Options) (apps.Outcome, error)) func(Job, Options) (apps.Outcome, error) {
	return func(j Job, opt Options) (out apps.Outcome, err error) {
		defer func() {
			if r := recover(); r != nil {
				out = apps.Outcome{}
				err = &PanicError{Value: r, Stack: debug.Stack()}
			}
		}()
		return run(j, opt)
	}
}
