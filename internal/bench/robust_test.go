package bench

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"fifer/internal/apps"
	"fifer/internal/core"
)

// TestRunnerPanicIsolation panics one stubbed job and checks it comes back
// as a *PanicError carrying the value and a stack, while every other job's
// result is identical to a clean run of the same batch.
func TestRunnerPanicIsolation(t *testing.T) {
	stub := func(poison bool) func(Job, Options) (apps.Outcome, error) {
		return func(j Job, _ Options) (apps.Outcome, error) {
			if poison && j.Input == "in3" {
				panic("injected test panic")
			}
			var i int
			fmt.Sscanf(j.Input, "in%d", &i)
			return apps.Outcome{Cycles: uint64(i) * 10}, nil
		}
	}
	jobs := stubJobs(8)
	clean := Runner{Workers: 4, run: stub(false)}.Run(Options{}, jobs)
	faulted := Runner{Workers: 4, run: stub(true)}.Run(Options{}, jobs)

	var pe *PanicError
	if !errors.As(faulted[3].Err, &pe) {
		t.Fatalf("job 3: err = %v, want *PanicError", faulted[3].Err)
	}
	if pe.Value != "injected test panic" {
		t.Fatalf("PanicError.Value = %v, want the panic value", pe.Value)
	}
	msg := faulted[3].Err.Error()
	if !strings.Contains(msg, "injected test panic") || !strings.Contains(msg, "goroutine") {
		t.Fatalf("PanicError message lacks value or stack:\n%s", msg)
	}
	for i := range jobs {
		if i == 3 {
			continue
		}
		if !reflect.DeepEqual(clean[i], faulted[i]) {
			t.Fatalf("job %d differs between clean and faulted batches:\n%+v\nvs\n%+v",
				i, clean[i], faulted[i])
		}
	}
}

// TestRunnerPanicIsolationIntegration drives real simulations: job 1's
// override shrinks the queue SRAM to one token, so program build panics
// carving the first queue inside RunOne (config *validation* failures are
// structured errors now, not panics). The batch must complete with that
// one job failed and the other jobs' outcomes byte-identical to a clean
// batch.
func TestRunnerPanicIsolationIntegration(t *testing.T) {
	mk := func(poison bool) []Job {
		jobs := []Job{
			{App: "BFS", Input: "Hu", Kind: apps.FiferPipe},
			{App: "BFS", Input: "Dy", Kind: apps.FiferPipe},
			{App: "BFS", Input: "Ci", Kind: apps.FiferPipe},
		}
		if poison {
			jobs[1].Override = func(cfg *core.Config) { cfg.QueueMemBytes = 8 }
		}
		return jobs
	}
	opt := Options{Scale: 0, Seed: 1}
	clean := Runner{Workers: 3}.Run(opt, mk(false))
	faulted := Runner{Workers: 3}.Run(opt, mk(true))

	var pe *PanicError
	if !errors.As(faulted[1].Err, &pe) {
		t.Fatalf("poisoned job: err = %v, want *PanicError", faulted[1].Err)
	}
	if !strings.Contains(faulted[1].Err.Error(), "queue mem") {
		t.Fatalf("PanicError does not carry the allocation failure: %v", faulted[1].Err)
	}
	for _, i := range []int{0, 2} {
		if clean[i].Err != nil {
			t.Fatalf("clean job %d failed: %v", i, clean[i].Err)
		}
		if !reflect.DeepEqual(clean[i].Outcome, faulted[i].Outcome) {
			t.Fatalf("job %d outcome differs between clean and faulted batches", i)
		}
	}
}

// TestRobustnessKnobsDoNotPerturb runs the same simulation with the
// watchdog and audit at aggressive settings and fully disabled: identical
// outcomes, because both mechanisms only observe.
func TestRobustnessKnobsDoNotPerturb(t *testing.T) {
	run := func(watchdog, audit int64) apps.Outcome {
		opt := Options{Scale: 0, Seed: 1, WatchdogCycles: watchdog, AuditCycles: audit}
		out, err := RunOne("BFS", "Hu", apps.FiferPipe, false, opt, nil)
		if err != nil {
			t.Fatalf("watchdog=%d audit=%d: %v", watchdog, audit, err)
		}
		return out
	}
	off := run(-1, -1)
	aggressive := run(5000, 64)
	if !reflect.DeepEqual(off, aggressive) {
		t.Fatal("watchdog/audit settings changed simulation outcomes")
	}
}

// TestRunOneRobustnessKnobOrdering pins the knob/override precedence: the
// Options knobs apply before the per-job override, so the override wins.
func TestRunOneRobustnessKnobOrdering(t *testing.T) {
	var got core.Config
	opt := Options{Scale: 0, Seed: 1, WatchdogCycles: 12345, AuditCycles: -1}
	_, err := RunOne("BFS", "Hu", apps.FiferPipe, false, opt, func(cfg *core.Config) {
		if cfg.WatchdogCycles != 12345 || cfg.AuditCycles != 0 {
			t.Errorf("knobs not applied before override: watchdog=%d audit=%d",
				cfg.WatchdogCycles, cfg.AuditCycles)
		}
		cfg.WatchdogCycles = 777
		got = *cfg
	})
	if err != nil {
		t.Fatal(err)
	}
	if got.WatchdogCycles != 777 {
		t.Fatalf("override value %d did not win", got.WatchdogCycles)
	}
}
