package bench

import (
	"flag"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// update rewrites the golden files from the current output:
//
//	go test ./internal/bench -run TestGolden -update
//
// Inspect the diff before committing — a golden change means the paper's
// regenerated numbers (or their formatting) changed.
var update = flag.Bool("update", false, "rewrite testdata/*.golden from current output")

// checkGolden compares got against testdata/<name>.golden, rewriting the
// file under -update.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/bench -run TestGolden -update` to create it)", err)
	}
	if got != string(want) {
		t.Errorf("%s drifted from golden output.\n--- got ---\n%s\n--- want ---\n%s\nIf the change is intentional, refresh with -update and review the diff.",
			path, got, want)
	}
}

// goldenOpt is the fixed configuration all goldens snapshot: tiny scale,
// seed 1, like `fiferbench -scale 0 -seed 1`. Jobs only sets parallelism;
// per the determinism guarantee it cannot affect the bytes produced.
func goldenOpt(apps ...string) Options {
	return Options{Scale: 0, Seed: 1, Apps: apps, Jobs: runtime.NumCPU()}
}

// TestGoldenTables snapshots the simulation-free tables (1-4).
func TestGoldenTables(t *testing.T) {
	var b strings.Builder
	opt := goldenOpt()
	PrintTable1(&b)
	b.WriteString("\n")
	PrintTable2(&b)
	b.WriteString("\n")
	PrintTable3(&b, opt)
	b.WriteString("\n")
	PrintTable4(&b, opt)
	checkGolden(t, "tables", b.String())
}

// TestGoldenFig13Family snapshots the Fig. 13 sweep's formatters (Fig. 13,
// 14, 15 and Table 5) for a two-app subset at scale 0 — enough to catch
// simulator or formatter drift at review time without a full sweep.
func TestGoldenFig13Family(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	opt := goldenOpt("BFS", "SpMM")
	d, err := Fig13(opt)
	if err != nil {
		t.Fatal(err)
	}
	for name, print := range map[string]func(*strings.Builder){
		"fig13":  func(b *strings.Builder) { d.Print(b) },
		"fig14":  func(b *strings.Builder) { d.PrintFig14(b, opt) },
		"fig15":  func(b *strings.Builder) { d.PrintFig15(b, opt) },
		"table5": func(b *strings.Builder) { d.PrintTable5(b, opt) },
	} {
		var b strings.Builder
		print(&b)
		checkGolden(t, name, b.String())
	}
}

// TestGoldenFig16 snapshots the queue-memory sweep formatter for BFS.
func TestGoldenFig16(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	opt := goldenOpt("BFS")
	points, err := Fig16(opt)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	PrintFig16(&b, points, opt)
	checkGolden(t, "fig16", b.String())
}

// TestGoldenFig17 snapshots the merged-stage comparison for BFS.
func TestGoldenFig17(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	opt := goldenOpt("BFS")
	rows, err := Fig17(opt)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	PrintFig17(&b, rows)
	checkGolden(t, "fig17", b.String())
}

// TestGoldenZeroCost snapshots the Sec. 8.3 ablation for SpMM.
func TestGoldenZeroCost(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	r, err := ZeroCost(goldenOpt("SpMM"))
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	PrintZeroCost(&b, r)
	checkGolden(t, "zerocost", b.String())
}
