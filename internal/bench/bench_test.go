package bench

import (
	"strings"
	"testing"

	"fifer/internal/apps"
)

func TestInputsOf(t *testing.T) {
	for _, app := range AppNames {
		if len(InputsOf(app)) == 0 {
			t.Fatalf("%s: no inputs", app)
		}
	}
	if len(InputsOf("BFS")) != 5 || len(InputsOf("SpMM")) != 6 || len(InputsOf("Silo")) != 1 {
		t.Fatal("input registries wrong")
	}
}

func TestRunOneUnknownApp(t *testing.T) {
	if _, err := RunOne("nope", "x", apps.FiferPipe, false, DefaultOptions(), nil); err == nil {
		t.Fatal("unknown app accepted")
	}
}

func TestOptionsSubset(t *testing.T) {
	opt := Options{Apps: []string{"BFS"}}
	if got := opt.selected(); len(got) != 1 || got[0] != "BFS" {
		t.Fatalf("selected = %v", got)
	}
	if got := (Options{}).selected(); len(got) != len(AppNames) {
		t.Fatal("default selection wrong")
	}
}

func TestFig13SingleApp(t *testing.T) {
	opt := Options{Scale: 0, Seed: 1, Apps: []string{"BFS"}}
	d, err := Fig13(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Cells) != 5 {
		t.Fatalf("cells = %d, want 5", len(d.Cells))
	}
	for _, c := range d.Cells {
		for _, kind := range apps.Kinds {
			if !c.Outcomes[kind].Verified {
				t.Fatalf("%s/%s %v unverified", c.App, c.Input, kind)
			}
		}
		if c.Speedup(apps.MulticoreOOO) != 1.0 {
			t.Fatal("normalization broken")
		}
	}
	if d.GMeanSpeedup("BFS", apps.FiferPipe, apps.StaticPipe) <= 1 {
		t.Fatal("Fifer not faster than static on BFS")
	}
	var b strings.Builder
	d.Print(&b)
	d.PrintFig14(&b, opt)
	d.PrintFig15(&b, opt)
	d.PrintTable5(&b, opt)
	for _, want := range []string{"Figure 13", "Figure 14", "Figure 15", "Table 5", "fifer-16pe"} {
		if !strings.Contains(b.String(), want) {
			t.Fatalf("report missing %q", want)
		}
	}
}

func TestZeroCostNeverSlower(t *testing.T) {
	opt := Options{Scale: 0, Seed: 1, Apps: []string{"SpMM"}}
	r, err := ZeroCost(opt)
	if err != nil {
		t.Fatal(err)
	}
	if r.GMean < 0.99 {
		t.Fatalf("zero-cost reconfig gmean %.2f < 1", r.GMean)
	}
}
