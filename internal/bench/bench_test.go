package bench

import (
	"reflect"
	"strings"
	"testing"

	"fifer/internal/apps"
)

func TestInputsOf(t *testing.T) {
	for _, app := range AppNames {
		if len(InputsOf(app)) == 0 {
			t.Fatalf("%s: no inputs", app)
		}
	}
	if len(InputsOf("BFS")) != 5 || len(InputsOf("SpMM")) != 6 || len(InputsOf("Silo")) != 1 {
		t.Fatal("input registries wrong")
	}
}

func TestRunOneUnknownApp(t *testing.T) {
	if _, err := RunOne("nope", "x", apps.FiferPipe, false, DefaultOptions(), nil); err == nil {
		t.Fatal("unknown app accepted")
	}
}

func TestOptionsSubset(t *testing.T) {
	opt := Options{Apps: []string{"BFS"}}
	if got := opt.selected(); len(got) != 1 || got[0] != "BFS" {
		t.Fatalf("selected = %v", got)
	}
	if got := (Options{}).selected(); len(got) != len(AppNames) {
		t.Fatal("default selection wrong")
	}
}

// TestJobEnumerationMatrix pins the exact app × input matrix the paper's
// Tables 3/4 define, in the paper's order: this is what every driver's job
// enumeration fans out over.
func TestJobEnumerationMatrix(t *testing.T) {
	wantApps := []string{"BFS", "CC", "PRD", "Radii", "SpMM", "Silo"}
	if !reflect.DeepEqual(AppNames, wantApps) {
		t.Fatalf("AppNames = %v, want %v (paper order)", AppNames, wantApps)
	}
	graphInputs := []string{"Hu", "Dy", "Ci", "In", "Rd"}
	inputCases := []struct {
		app  string
		want []string
	}{
		{"BFS", graphInputs},
		{"CC", graphInputs},
		{"PRD", graphInputs},
		{"Radii", graphInputs},
		{"SpMM", []string{"FS", "Gr", "GE", "EM", "FD", "St"}},
		{"Silo", []string{"YCSB-C"}},
	}
	for _, tc := range inputCases {
		if got := InputsOf(tc.app); !reflect.DeepEqual(got, tc.want) {
			t.Errorf("InputsOf(%s) = %v, want %v", tc.app, got, tc.want)
		}
	}

	selCases := []struct {
		name string
		opt  Options
		want []string
	}{
		{"nil means all, paper order", Options{}, wantApps},
		{"empty slice means all", Options{Apps: []string{}}, wantApps},
		{"subset kept as given", Options{Apps: []string{"SpMM", "BFS"}}, []string{"SpMM", "BFS"}},
		{"single app", Options{Apps: []string{"Silo"}}, []string{"Silo"}},
		{"unknown app passed through", Options{Apps: []string{"Nope"}}, []string{"Nope"}},
	}
	for _, tc := range selCases {
		if got := tc.opt.selected(); !reflect.DeepEqual(got, tc.want) {
			t.Errorf("%s: selected() = %v, want %v", tc.name, got, tc.want)
		}
	}

	// An unknown app survives selection but fails at dispatch — through the
	// driver it surfaces as an error, not a panic or a silent skip.
	if _, err := Fig13(Options{Scale: 0, Seed: 1, Apps: []string{"Nope"}}); err == nil {
		t.Fatal("Fig13 with unknown app succeeded")
	}
}

func TestFig13SingleApp(t *testing.T) {
	opt := Options{Scale: 0, Seed: 1, Apps: []string{"BFS"}}
	d, err := Fig13(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Cells) != 5 {
		t.Fatalf("cells = %d, want 5", len(d.Cells))
	}
	for _, c := range d.Cells {
		for _, kind := range apps.Kinds {
			if !c.Outcomes[kind].Verified {
				t.Fatalf("%s/%s %v unverified", c.App, c.Input, kind)
			}
		}
		if c.Speedup(apps.MulticoreOOO) != 1.0 {
			t.Fatal("normalization broken")
		}
	}
	if d.GMeanSpeedup("BFS", apps.FiferPipe, apps.StaticPipe) <= 1 {
		t.Fatal("Fifer not faster than static on BFS")
	}
	var b strings.Builder
	d.Print(&b)
	d.PrintFig14(&b, opt)
	d.PrintFig15(&b, opt)
	d.PrintTable5(&b, opt)
	for _, want := range []string{"Figure 13", "Figure 14", "Figure 15", "Table 5", "fifer-16pe"} {
		if !strings.Contains(b.String(), want) {
			t.Fatalf("report missing %q", want)
		}
	}
}

func TestZeroCostNeverSlower(t *testing.T) {
	opt := Options{Scale: 0, Seed: 1, Apps: []string{"SpMM"}}
	r, err := ZeroCost(opt)
	if err != nil {
		t.Fatal(err)
	}
	if r.GMean < 0.99 {
		t.Fatalf("zero-cost reconfig gmean %.2f < 1", r.GMean)
	}
}
