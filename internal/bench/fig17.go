package bench

import (
	"fmt"
	"io"

	"fifer/internal/apps"
	"fifer/internal/stats"
)

// Fig17Row is one application's merged-stage comparison (Sec. 8.4):
// gmean speedups across inputs, normalized to the fully decoupled static
// pipeline. In a degraded sweep ErrClass carries the first error class
// among the app's missing inputs and the gmeans cover surviving inputs.
type Fig17Row struct {
	App          string
	MergedStatic float64
	Fifer        float64
	ErrClass     string
}

// Fig17 compares the fully decoupled static pipeline, the merged-stage
// static pipeline, and Fifer. Jobs are enumerated as (decoupled, merged,
// fifer) triples per (app, input) and run on opt's worker pool. An input
// whose triple lost any simulation drops out of its app's gmeans instead
// of aborting the sweep.
func Fig17(opt Options) ([]Fig17Row, error) {
	var jobs []Job
	for _, app := range opt.selected() {
		for _, input := range InputsOf(app) {
			jobs = append(jobs,
				Job{App: app, Input: input, Kind: apps.StaticPipe},
				Job{App: app, Input: input, Kind: apps.StaticPipe, Merged: true},
				Job{App: app, Input: input, Kind: apps.FiferPipe})
		}
	}
	results := opt.runner("fig17").Run(opt, jobs)
	if err := abortError(results); err != nil {
		return nil, err
	}
	var rows []Fig17Row
	i := 0
	for _, app := range opt.selected() {
		row := Fig17Row{App: app}
		var merged, fifer []float64
		for range InputsOf(app) {
			triple := results[i : i+3]
			i += 3
			if bad := firstError(triple); bad != nil {
				if row.ErrClass == "" {
					row.ErrClass = ErrorClass(bad.Err)
				}
				continue
			}
			base, m, f := triple[0].Outcome, triple[1].Outcome, triple[2].Outcome
			merged = append(merged, float64(base.Cycles)/float64(m.Cycles))
			fifer = append(fifer, float64(base.Cycles)/float64(f.Cycles))
		}
		row.MergedStatic = stats.GMean(merged)
		row.Fifer = stats.GMean(fifer)
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintFig17 renders the merged-stage comparison; degraded rows are
// annotated with their error class.
func PrintFig17(w io.Writer, rows []Fig17Row) {
	fmt.Fprintln(w, "Figure 17: merged-stage pipelines, normalized to the fully decoupled static pipeline")
	tbl := stats.NewTable("app", "fully-decoupled static", "merged static", "fifer")
	degraded := false
	for _, r := range rows {
		if r.ErrClass != "" {
			degraded = true
		}
		tbl.Add(r.App, "1.00", degradedCell(r.MergedStatic, r.ErrClass), degradedCell(r.Fifer, r.ErrClass))
	}
	fmt.Fprint(w, tbl)
	if degraded {
		fmt.Fprintln(w, "DEGRADED: some simulations are missing; !class cells have no data, * marks partial gmeans.")
	}
	fmt.Fprintln(w, "\nPaper's reading: merging hurts BFS (4.4x slower static) and CC, slightly helps")
	fmt.Fprintln(w, "PRD/Radii, and helps SpMM on sparse inputs; Silo degrades slightly.")
}
