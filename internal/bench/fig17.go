package bench

import (
	"fmt"
	"io"

	"fifer/internal/apps"
	"fifer/internal/stats"
)

// Fig17Row is one application's merged-stage comparison (Sec. 8.4):
// gmean speedups across inputs, normalized to the fully decoupled static
// pipeline.
type Fig17Row struct {
	App          string
	MergedStatic float64
	Fifer        float64
}

// Fig17 compares the fully decoupled static pipeline, the merged-stage
// static pipeline, and Fifer. Jobs are enumerated as (decoupled, merged,
// fifer) triples per (app, input) and run on opt's worker pool.
func Fig17(opt Options) ([]Fig17Row, error) {
	var jobs []Job
	for _, app := range opt.selected() {
		for _, input := range InputsOf(app) {
			jobs = append(jobs,
				Job{App: app, Input: input, Kind: apps.StaticPipe},
				Job{App: app, Input: input, Kind: apps.StaticPipe, Merged: true},
				Job{App: app, Input: input, Kind: apps.FiferPipe})
		}
	}
	results := opt.runner().Run(opt, jobs)
	if bad := firstError(results); bad != nil {
		variant := "decoupled"
		switch {
		case bad.Job.Merged:
			variant = "merged"
		case bad.Job.Kind == apps.FiferPipe:
			variant = "fifer"
		}
		return nil, fmt.Errorf("fig17 %s/%s %s: %w", bad.Job.App, bad.Job.Input, variant, bad.Err)
	}
	var rows []Fig17Row
	i := 0
	for _, app := range opt.selected() {
		var merged, fifer []float64
		for range InputsOf(app) {
			base, m, f := results[i].Outcome, results[i+1].Outcome, results[i+2].Outcome
			i += 3
			merged = append(merged, float64(base.Cycles)/float64(m.Cycles))
			fifer = append(fifer, float64(base.Cycles)/float64(f.Cycles))
		}
		rows = append(rows, Fig17Row{App: app, MergedStatic: stats.GMean(merged), Fifer: stats.GMean(fifer)})
	}
	return rows, nil
}

// PrintFig17 renders the merged-stage comparison.
func PrintFig17(w io.Writer, rows []Fig17Row) {
	fmt.Fprintln(w, "Figure 17: merged-stage pipelines, normalized to the fully decoupled static pipeline")
	tbl := stats.NewTable("app", "fully-decoupled static", "merged static", "fifer")
	for _, r := range rows {
		tbl.Add(r.App, "1.00", fmt.Sprintf("%.2f", r.MergedStatic), fmt.Sprintf("%.2f", r.Fifer))
	}
	fmt.Fprint(w, tbl)
	fmt.Fprintln(w, "\nPaper's reading: merging hurts BFS (4.4x slower static) and CC, slightly helps")
	fmt.Fprintln(w, "PRD/Radii, and helps SpMM on sparse inputs; Silo degrades slightly.")
}
