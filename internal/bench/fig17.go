package bench

import (
	"fmt"
	"io"

	"fifer/internal/apps"
	"fifer/internal/stats"
)

// Fig17Row is one application's merged-stage comparison (Sec. 8.4):
// gmean speedups across inputs, normalized to the fully decoupled static
// pipeline.
type Fig17Row struct {
	App          string
	MergedStatic float64
	Fifer        float64
}

// Fig17 compares the fully decoupled static pipeline, the merged-stage
// static pipeline, and Fifer.
func Fig17(opt Options) ([]Fig17Row, error) {
	var rows []Fig17Row
	for _, app := range opt.selected() {
		var merged, fifer []float64
		for _, input := range InputsOf(app) {
			base, err := RunOne(app, input, apps.StaticPipe, false, opt, nil)
			if err != nil {
				return nil, fmt.Errorf("fig17 %s/%s decoupled: %w", app, input, err)
			}
			m, err := RunOne(app, input, apps.StaticPipe, true, opt, nil)
			if err != nil {
				return nil, fmt.Errorf("fig17 %s/%s merged: %w", app, input, err)
			}
			f, err := RunOne(app, input, apps.FiferPipe, false, opt, nil)
			if err != nil {
				return nil, fmt.Errorf("fig17 %s/%s fifer: %w", app, input, err)
			}
			merged = append(merged, float64(base.Cycles)/float64(m.Cycles))
			fifer = append(fifer, float64(base.Cycles)/float64(f.Cycles))
		}
		rows = append(rows, Fig17Row{App: app, MergedStatic: stats.GMean(merged), Fifer: stats.GMean(fifer)})
	}
	return rows, nil
}

// PrintFig17 renders the merged-stage comparison.
func PrintFig17(w io.Writer, rows []Fig17Row) {
	fmt.Fprintln(w, "Figure 17: merged-stage pipelines, normalized to the fully decoupled static pipeline")
	tbl := stats.NewTable("app", "fully-decoupled static", "merged static", "fifer")
	for _, r := range rows {
		tbl.Add(r.App, "1.00", fmt.Sprintf("%.2f", r.MergedStatic), fmt.Sprintf("%.2f", r.Fifer))
	}
	fmt.Fprint(w, tbl)
	fmt.Fprintln(w, "\nPaper's reading: merging hurts BFS (4.4x slower static) and CC, slightly helps")
	fmt.Fprintln(w, "PRD/Radii, and helps SpMM on sparse inputs; Silo degrades slightly.")
}
