package bench

import (
	"os"
	"runtime"
	"testing"
)

func TestDryAll(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep")
	}
	opt := Options{Scale: 0, Seed: 1, Jobs: runtime.NumCPU()}
	d, err := Fig13(opt)
	if err != nil {
		t.Fatal(err)
	}
	d.Print(os.Stdout)
	d.PrintTable5(os.Stdout, opt)
	d.PrintFig14(os.Stdout, opt)
	d.PrintFig15(os.Stdout, opt)
}
