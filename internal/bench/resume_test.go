package bench

import (
	"fmt"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
)

// TestInterruptResumeDeterminism is the crash-safety determinism pin: a
// sweep interrupted after k completions and resumed from its journal must
// render byte-identical tables to an uninterrupted run — for several
// interrupt points and for both serial and parallel execution. It holds
// because simulations are deterministic, outcomes round-trip JSON
// losslessly, and the journal replays completed jobs in submission order.
func TestInterruptResumeDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	baseOpt := Options{Scale: 0, Seed: 1, Apps: []string{"BFS"}}
	base, err := Fig13(baseOpt)
	if err != nil {
		t.Fatal(err)
	}
	var want strings.Builder
	base.Print(&want)

	for _, workers := range []int{1, runtime.NumCPU()} {
		for _, k := range []int{3, 9} {
			t.Run(fmt.Sprintf("j%d-k%d", workers, k), func(t *testing.T) {
				path := filepath.Join(t.TempDir(), "journal.jsonl")

				// Interrupted run: cancel the sweep after the k-th completion.
				opt := baseOpt
				opt.Jobs = workers
				j, err := CreateJournal(path, opt)
				if err != nil {
					t.Fatal(err)
				}
				cancel := make(chan struct{})
				var once sync.Once
				opt.Cancel = cancel
				opt.Journal = j
				opt.Progress = func(done, total int, res JobResult) {
					if done >= k {
						once.Do(func() { close(cancel) })
					}
				}
				interrupted, err := Fig13(opt)
				if err != nil {
					t.Fatal(err)
				}
				if err := j.Close(); err != nil {
					t.Fatal(err)
				}
				if interrupted.Failed() == 0 {
					// Every job beat the cancel (tiny sweep, many workers);
					// the resume below degenerates to a full replay.
					t.Logf("warning: nothing was canceled at k=%d with %d workers", k, workers)
				}

				// Resumed run: same workload options, fresh cancel-free pass.
				opt2 := baseOpt
				opt2.Jobs = workers
				j2, err := ResumeJournal(path, opt2)
				if err != nil {
					t.Fatal(err)
				}
				if j2.Replayed() == 0 {
					t.Fatal("resume replayed nothing; the interrupted run journaled no durable records")
				}
				opt2.Journal = j2
				resumed, err := Fig13(opt2)
				if err != nil {
					t.Fatal(err)
				}
				if err := j2.Close(); err != nil {
					t.Fatal(err)
				}
				if resumed.Failed() != 0 {
					t.Fatalf("resumed run still degraded: %d missing", resumed.Failed())
				}

				var got strings.Builder
				resumed.Print(&got)
				if got.String() != want.String() {
					t.Fatalf("interrupt-at-%d + resume diverged from the uninterrupted run:\n--- uninterrupted\n%s\n--- resumed\n%s",
						k, want.String(), got.String())
				}
			})
		}
	}
}
