package bench

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"fifer/internal/apps"
	"fifer/internal/trace"
)

// TraceSink collects per-job observability data across a sweep. Attach one
// via Options.Trace and every CGRA simulation the sweep runs gets its own
// event collector and metrics sampler wired into the core (the OOO
// baselines never enter the core loop, produce nothing, and are skipped).
// Collection is safe under any Options.Jobs because each job owns its
// collector; only registration takes the sink's lock. Retried jobs replace
// their earlier attempt's data, so the sink holds exactly one trace per
// job — the one whose outcome the sweep reported.
//
// Tracing is observation only: outcomes, goldens, and journals are
// byte-identical with a sink attached or not, at any worker count (pinned
// by the differential test in determinism_test.go).
type TraceSink struct {
	// SampleCycles is the metrics sample period in cycles
	// (0 = core.DefaultMetricsCycles).
	SampleCycles uint64
	// BufEvents is each job's event-ring capacity
	// (0 = trace.DefaultBufEvents). When a run overflows the ring, the
	// oldest events are dropped flight-recorder style; Jobs reports drops.
	BufEvents int

	mu   sync.Mutex
	jobs map[string]*trace.Collector
}

// NewTraceSink returns a sink sampling metrics every sampleCycles cycles.
func NewTraceSink(sampleCycles uint64) *TraceSink {
	return &TraceSink{SampleCycles: sampleCycles}
}

// jobKey renders the sink's per-job identity — the same string Job.key
// produces, so sweep traces line up with progress and journal reporting.
func jobKey(app, input string, kind apps.SystemKind, merged bool) string {
	s := fmt.Sprintf("%s/%s %v", app, input, kind)
	if merged {
		s += " merged"
	}
	return s
}

// add registers a finished job's collector, replacing any earlier attempt.
// Empty collectors (OOO baselines) are dropped.
func (t *TraceSink) add(key string, col *trace.Collector) {
	if t == nil || col == nil || col.Empty() {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.jobs == nil {
		t.jobs = map[string]*trace.Collector{}
	}
	t.jobs[key] = col
}

// TracedJob is one simulation's collected observability data.
type TracedJob struct {
	Key       string
	Collector *trace.Collector
}

// Jobs returns every traced job sorted by key, so exports are deterministic
// regardless of completion order or worker count.
func (t *TraceSink) Jobs() []TracedJob {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	keys := make([]string, 0, len(t.jobs))
	for k := range t.jobs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]TracedJob, 0, len(keys))
	for _, k := range keys {
		out = append(out, TracedJob{Key: k, Collector: t.jobs[k]})
	}
	return out
}

// Dropped sums ring overwrites across all jobs; nonzero means the trace
// file holds each overflowing run's suffix, not its whole history.
func (t *TraceSink) Dropped() uint64 {
	var n uint64
	for _, j := range t.Jobs() {
		n += j.Collector.Dropped()
	}
	return n
}

// WriteTrace writes every traced job as one Chrome/Perfetto trace-event
// JSON document (one process per job, one thread per PE, ts in cycles).
func (t *TraceSink) WriteTrace(w io.Writer) error {
	jobs := t.Jobs()
	jts := make([]trace.JobTrace, 0, len(jobs))
	for _, j := range jobs {
		jts = append(jts, trace.JobTrace{Name: j.Key, Events: j.Collector.Events()})
	}
	return trace.WriteChrome(w, jts)
}

// WriteMetricsJSONL writes every traced job's metrics samples as JSONL.
func (t *TraceSink) WriteMetricsJSONL(w io.Writer) error {
	for _, j := range t.Jobs() {
		if err := trace.WriteMetricsJSONL(w, j.Key, j.Collector.Rows()); err != nil {
			return err
		}
	}
	return nil
}

// WriteMetricsCSV writes every traced job's metrics samples as one CSV
// table (single header row).
func (t *TraceSink) WriteMetricsCSV(w io.Writer) error {
	fmt.Fprintln(w, "job,cycle,pe,issued,stall,queue,reconfig,idle,qtokens,drm_inflight")
	for _, j := range t.Jobs() {
		for _, r := range j.Collector.Rows() {
			fmt.Fprintf(w, "%s,%d,%d,%d,%d,%d,%d,%d,%d,%d\n",
				j.Key, r.Cycle, r.PE, r.Issued, r.Stall, r.Queue, r.Reconfig, r.Idle,
				r.QueueTokens, r.DRMInflight)
		}
	}
	return nil
}
