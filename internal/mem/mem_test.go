package mem

import (
	"testing"
	"testing/quick"
)

func TestBackingLoadStore(t *testing.T) {
	b := NewBacking(1 << 20)
	a := b.AllocWords(16)
	b.Store(a, 42)
	b.Store(a+8, 43)
	if b.Load(a) != 42 || b.Load(a+8) != 43 {
		t.Fatal("load/store mismatch")
	}
}

func TestBackingAllocAlignment(t *testing.T) {
	b := NewBacking(1 << 20)
	a1 := b.Alloc(10)
	a2 := b.Alloc(1)
	if a1%LineBytes != 0 || a2%LineBytes != 0 {
		t.Fatal("allocations not line-aligned")
	}
	if a1.Line() == a2.Line() {
		t.Fatal("distinct allocations share a line")
	}
}

func TestBackingAllocSlice(t *testing.T) {
	b := NewBacking(1 << 20)
	vals := []uint64{5, 6, 7}
	a := b.AllocSlice(vals)
	for i, v := range vals {
		if b.Load(a+Addr(i*WordBytes)) != v {
			t.Fatalf("slice word %d wrong", i)
		}
	}
}

func TestBackingPanics(t *testing.T) {
	b := NewBacking(1 << 12)
	for _, f := range []func(){
		func() { b.Load(3) },                    // unaligned
		func() { b.Load(1 << 20) },              // out of range
		func() { b.Alloc(1 << 21); b.Alloc(1) }, // out of simulated memory
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestCacheHitMiss(t *testing.T) {
	hbm := NewHBM(120, 128)
	llc := NewLevel("llc", 1<<20, 16, 40, hbm)
	l1 := NewLevel("l1", 1<<15, 8, 4, llc)

	// Cold miss goes to memory.
	ready := l1.Access(0, 0x1000, false)
	if ready < 120 {
		t.Fatalf("cold miss ready=%d, want >= mem latency", ready)
	}
	// Hit is L1 latency.
	if got := l1.Access(200, 0x1008, false); got != 204 {
		t.Fatalf("hit ready=%d, want 204", got)
	}
	if l1.Accesses != 2 || l1.Misses != 1 {
		t.Fatalf("stats: %d accesses %d misses", l1.Accesses, l1.Misses)
	}
	if !l1.Contains(0x1000) || !llc.Contains(0x1000) {
		t.Fatal("fill did not populate levels")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	hbm := NewHBM(100, 128)
	// Direct-ish tiny cache: 2 ways, 2 sets (4 lines of 64B = 256B).
	l1 := NewLevel("l1", 256, 2, 1, hbm)
	// Three lines mapping to the same set (stride = sets*LineBytes = 128).
	l1.Access(0, 0, false)
	l1.Access(10, 128, false)
	l1.Access(20, 0, false)   // touch 0: now MRU
	l1.Access(30, 256, false) // evicts 128 (LRU)
	if !l1.Contains(0) || l1.Contains(128) || !l1.Contains(256) {
		t.Fatal("LRU order wrong")
	}
}

func TestCacheWriteback(t *testing.T) {
	hbm := NewHBM(100, 128)
	l1 := NewLevel("l1", 128, 2, 1, hbm) // one set, two ways
	l1.Access(0, 0, true)                // dirty
	l1.Access(10, 64, false)
	l1.Access(20, 128, false) // evicts dirty line 0
	if l1.Writebacks != 1 {
		t.Fatalf("writebacks = %d, want 1", l1.Writebacks)
	}
}

func TestCacheInvalidate(t *testing.T) {
	h := NewHierarchy(DefaultPEHierarchy(2))
	h.L1s[0].Access(0, 0x40, false)
	h.L1s[0].Invalidate(0x40)
	if h.L1s[0].Contains(0x40) || h.LLC.Contains(0x40) {
		t.Fatal("invalidate left line resident")
	}
}

// Property: the cache hierarchy is timing-only — a port's loads always
// return exactly what a flat memory oracle holds, under random writes.
func TestPortMatchesOracle(t *testing.T) {
	f := func(ops []uint16, vals []uint64) bool {
		h := NewHierarchy(DefaultPEHierarchy(1))
		b := NewBacking(1 << 20)
		base := b.AllocWords(256)
		p := h.Port(0, b)
		oracle := make(map[Addr]uint64)
		now := uint64(0)
		for i, op := range ops {
			a := base + Addr(int(op%256)*WordBytes)
			if i < len(vals) && vals[i]%2 == 0 {
				p.Store(now, a, vals[i])
				oracle[a] = vals[i]
			} else {
				v, _ := p.Load(now, a)
				if v != oracle[a] {
					return false
				}
			}
			now += 4
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestHBMBandwidthQueueing(t *testing.T) {
	h := NewHBM(100, 128) // 2 lines per cycle
	// Five back-to-back requests in the same cycle: later ones queue.
	var readies []uint64
	for i := 0; i < 5; i++ {
		readies = append(readies, h.access(10, Addr(i*64), false))
	}
	if readies[0] != 110 {
		t.Fatalf("first ready=%d, want 110", readies[0])
	}
	if readies[4] <= readies[0] {
		t.Fatal("bandwidth queueing missing")
	}
	if h.Stalled == 0 {
		t.Fatal("stall accounting missing")
	}
}

func TestHBMEpochReset(t *testing.T) {
	h := NewHBM(100, 128)
	// Client A saturates the channel late in its timeline.
	for i := 0; i < 1000; i++ {
		h.access(uint64(1000+i), Addr(i*64), false)
	}
	// Client B, simulated afterwards, starts at time 0: it must not queue
	// behind client A's epoch.
	if ready := h.access(0, 0x100000, false); ready > 200 {
		t.Fatalf("cross-epoch request queued: ready=%d", ready)
	}
}

func TestHierarchyConfigs(t *testing.T) {
	pe := DefaultPEHierarchy(16)
	if pe.LLCBytes != 16*(512<<10) || pe.L2Bytes != 0 {
		t.Fatal("PE hierarchy wrong")
	}
	core := DefaultCoreHierarchy(4)
	if core.L2Bytes == 0 || core.LLCBytes != 4*(2<<20) {
		t.Fatal("core hierarchy wrong")
	}
	h := NewHierarchy(core)
	if len(h.L1s) != 4 || len(h.L2s) != 4 {
		t.Fatal("client caches missing")
	}
}
