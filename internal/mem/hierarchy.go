package mem

// HierarchyConfig captures the Table 2 memory-system parameters.
type HierarchyConfig struct {
	L1Bytes    int    // per-PE (or per-core) L1 size
	L1Ways     int    //
	L1Latency  uint64 //
	L2Bytes    int    // per-core L2 (OOO systems only; 0 disables the level)
	L2Ways     int    //
	L2Latency  uint64 //
	LLCBytes   int    // total shared LLC size
	LLCWays    int    //
	LLCLatency uint64 //
	MemLatency uint64 // main-memory latency in cycles
	MemBW      int    // main-memory bandwidth in bytes per cycle

	Clients int // number of PEs or cores, each with a private L1 (and L2)
}

// DefaultPEHierarchy returns the CGRA systems' memory parameters: 16 PEs,
// 32 KB 8-way 4-cycle L1s, 512 KB/PE 16-way 40-cycle shared LLC, 120-cycle
// 256 GB/s HBM (128 B/cycle at 2 GHz).
func DefaultPEHierarchy(pes int) HierarchyConfig {
	return HierarchyConfig{
		L1Bytes: 32 << 10, L1Ways: 8, L1Latency: 4,
		LLCBytes: pes * (512 << 10), LLCWays: 16, LLCLatency: 40,
		MemLatency: 120, MemBW: 128,
		Clients: pes,
	}
}

// DefaultCoreHierarchy returns the OOO systems' memory parameters: Skylake-
// like cores with 32 KB L1, 256 KB 8-way 12-cycle L2, and 2 MB LLC per core.
func DefaultCoreHierarchy(cores int) HierarchyConfig {
	return HierarchyConfig{
		L1Bytes: 32 << 10, L1Ways: 8, L1Latency: 4,
		L2Bytes: 256 << 10, L2Ways: 8, L2Latency: 12,
		LLCBytes: cores * (2 << 20), LLCWays: 16, LLCLatency: 40,
		MemLatency: 120, MemBW: 128,
		Clients: cores,
	}
}

// Hierarchy instantiates the shared portion (LLC + HBM) once and a private
// L1 (and optional L2) per client.
type Hierarchy struct {
	Config HierarchyConfig
	L1s    []*Level
	L2s    []*Level // nil when the config has no L2
	LLC    *Level
	Mem    *HBM
}

// NewHierarchy builds the cache hierarchy described by cfg.
func NewHierarchy(cfg HierarchyConfig) *Hierarchy {
	h := &Hierarchy{Config: cfg}
	h.Mem = NewHBM(cfg.MemLatency, cfg.MemBW)
	h.LLC = NewLevel("llc", cfg.LLCBytes, cfg.LLCWays, cfg.LLCLatency, h.Mem)
	for i := 0; i < cfg.Clients; i++ {
		parent := lower(h.LLC)
		if cfg.L2Bytes > 0 {
			l2 := NewLevel("l2", cfg.L2Bytes, cfg.L2Ways, cfg.L2Latency, h.LLC)
			h.L2s = append(h.L2s, l2)
			parent = l2
		}
		h.L1s = append(h.L1s, NewLevel("l1", cfg.L1Bytes, cfg.L1Ways, cfg.L1Latency, parent))
	}
	return h
}

// Port is one client's view of the hierarchy: its private L1 plus the
// functional backing store.
type Port struct {
	l1      *Level
	backing *Backing
}

// Port returns client i's memory port over the given backing store.
func (h *Hierarchy) Port(i int, backing *Backing) *Port {
	return &Port{l1: h.L1s[i], backing: backing}
}

// L1 exposes the port's private first-level cache.
func (p *Port) L1() *Level { return p.l1 }

// Load performs a functional+timing load: it returns the loaded word and the
// cycle at which it is available given the request departs at cycle now.
func (p *Port) Load(now uint64, a Addr) (v uint64, ready uint64) {
	return p.backing.Load(a), p.l1.Access(now, a, false)
}

// Store performs a functional+timing store.
func (p *Port) Store(now uint64, a Addr, v uint64) (ready uint64) {
	p.backing.Store(a, v)
	return p.l1.Access(now, a, true)
}

// LoadTiming performs a timing-only access (used for configuration fetches,
// whose "data" is not program-visible).
func (p *Port) LoadTiming(now uint64, a Addr) (ready uint64) {
	return p.l1.Access(now, a, false)
}

// Backing returns the functional store behind the port.
func (p *Port) Backing() *Backing { return p.backing }
