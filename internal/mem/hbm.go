package mem

// HBM models high-bandwidth main memory: a fixed access latency plus a
// bandwidth constraint. At 2 GHz, 256 GB/s is 128 bytes (two cache lines)
// per cycle; requests beyond that rate queue behind earlier ones.
//
// The model keeps a single "next free service slot" clock measured in
// half-cycles: each 64-byte line fill occupies half a cycle of channel time.
type HBM struct {
	latency   uint64 // access latency in cycles
	slotHalf  uint64 // half-cycles of channel time per line
	nextFree  uint64 // in half-cycles
	lastStart uint64 // last request's arrival, for epoch detection
	Reads     uint64
	Writes    uint64
	Stalled   uint64 // cumulative half-cycles requests waited for bandwidth
	LinesXfer uint64
}

// NewHBM creates a main memory with the given latency (cycles) and bandwidth
// expressed in bytes per cycle.
func NewHBM(latency uint64, bytesPerCycle int) *HBM {
	if bytesPerCycle < LineBytes/2 {
		bytesPerCycle = LineBytes / 2
	}
	// half-cycles per line = lineBytes / bytesPerCycle * 2
	slot := uint64(2 * LineBytes / bytesPerCycle)
	if slot == 0 {
		slot = 1
	}
	return &HBM{latency: latency, slotHalf: slot}
}

// Latency returns the fixed access latency in cycles.
func (h *HBM) Latency() uint64 { return h.latency }

// access implements the lower interface.
func (h *HBM) access(now uint64, _ Addr, write bool) uint64 {
	if write {
		h.Writes++
	} else {
		h.Reads++
	}
	h.LinesXfer++
	start := 2 * now // half-cycles
	// Requests normally arrive in near-monotone time order (PEs tick in
	// lockstep). When a different client's timeline is simulated after the
	// fact — OOO cores run one after another — its requests arrive "in the
	// past"; the queued channel state belongs to another epoch, so reset it
	// rather than serializing unrelated timelines.
	if start+h.slotHalf < h.lastStart {
		h.nextFree = start
	}
	h.lastStart = start
	if start < h.nextFree {
		h.Stalled += h.nextFree - start
		start = h.nextFree
	}
	h.nextFree = start + h.slotHalf
	return (start+1)/2 + h.latency
}

// invalidate is a no-op: main memory always holds every line.
func (h *HBM) invalidate(Addr) {}
