// Package mem implements the simulated memory system: a word-addressed
// functional backing store (so simulated programs compute real results), a
// bump allocator for laying out application data structures, set-associative
// caches with LRU replacement, and a bandwidth-limited high-bandwidth-memory
// model. The hierarchy matches Table 2 of the paper: per-PE 32 KB 8-way L1
// (4-cycle), shared 16-way LLC (512 KB per PE, 40-cycle), and 120-cycle
// 256 GB/s main memory.
package mem

import "fmt"

// WordBytes is the machine word size; the fabric operates at 64-bit width.
const WordBytes = 8

// LineBytes is the cache line size throughout the hierarchy.
const LineBytes = 64

// Addr is a simulated byte address.
type Addr uint64

// Line returns the address of the cache line containing a.
func (a Addr) Line() Addr { return a &^ (LineBytes - 1) }

// Backing is the functional backing store: a flat, word-granular memory that
// holds the actual data of simulated applications. Caches model timing only;
// values always come from (and go to) the backing store, which keeps the
// functional and timing models trivially coherent.
type Backing struct {
	words []uint64
	brk   Addr // bump-allocation watermark
}

// NewBacking creates a backing store of the given size in bytes (rounded up
// to a whole word).
func NewBacking(sizeBytes int) *Backing {
	nwords := (sizeBytes + WordBytes - 1) / WordBytes
	return &Backing{words: make([]uint64, nwords), brk: LineBytes} // keep address 0 unused
}

// Size returns the store capacity in bytes.
func (b *Backing) Size() int { return len(b.words) * WordBytes }

func (b *Backing) wordIndex(a Addr) int {
	if a%WordBytes != 0 {
		panic(fmt.Sprintf("mem: unaligned word access at %#x", uint64(a)))
	}
	i := int(a / WordBytes)
	if i < 0 || i >= len(b.words) {
		panic(fmt.Sprintf("mem: access at %#x outside %d-byte backing store", uint64(a), b.Size()))
	}
	return i
}

// Load returns the word at address a.
func (b *Backing) Load(a Addr) uint64 { return b.words[b.wordIndex(a)] }

// Store writes v to the word at address a.
func (b *Backing) Store(a Addr, v uint64) { b.words[b.wordIndex(a)] = v }

// Alloc reserves n bytes and returns the base address, aligned to a cache
// line so distinct structures never share lines.
func (b *Backing) Alloc(n int) Addr {
	base := b.brk
	b.brk += Addr((n + LineBytes - 1) &^ (LineBytes - 1))
	if int(b.brk) > b.Size() {
		panic(fmt.Sprintf("mem: out of simulated memory (brk %#x > size %#x); enlarge the backing store",
			uint64(b.brk), b.Size()))
	}
	return base
}

// AllocWords reserves n 64-bit words and returns the base address.
func (b *Backing) AllocWords(n int) Addr { return b.Alloc(n * WordBytes) }

// AllocSlice reserves storage for vals and copies them in, returning the
// base address. It is the workhorse for laying out CSR arrays and the like.
func (b *Backing) AllocSlice(vals []uint64) Addr {
	base := b.AllocWords(len(vals))
	for i, v := range vals {
		b.Store(base+Addr(i*WordBytes), v)
	}
	return base
}

// Footprint returns the number of bytes allocated so far.
func (b *Backing) Footprint() int { return int(b.brk) }
