package mem

import "fmt"

// Level is a timing-only set-associative cache with LRU replacement and a
// write-back, write-allocate policy. It tracks tags, not data (data lives in
// the Backing store). Levels are composed into a hierarchy by pointing each
// level's parent at the next-lower level; the lowest level points at a *HBM.
type Level struct {
	name    string
	sets    int
	ways    int
	latency uint64 // access (hit) latency in cycles
	parent  lower  // where misses go

	tags  [][]uint64 // per-set tag stacks, index 0 = MRU; tag is the line address
	dirty [][]bool

	// Statistics.
	Accesses   uint64
	Misses     uint64
	Writebacks uint64
}

// lower is anything a cache level can miss into.
type lower interface {
	// access returns the cycle at which the requested line is available,
	// given that the request departs this level at cycle `now`.
	access(now uint64, line Addr, write bool) (ready uint64)
	// invalidate removes the line if present (used when testing flush paths).
	invalidate(line Addr)
}

// NewLevel creates a cache level. sizeBytes must be a multiple of
// ways*LineBytes.
func NewLevel(name string, sizeBytes, ways int, latency uint64, parent lower) *Level {
	lines := sizeBytes / LineBytes
	if lines == 0 || lines%ways != 0 {
		panic(fmt.Sprintf("cache %q: size %d B incompatible with %d ways", name, sizeBytes, ways))
	}
	sets := lines / ways
	l := &Level{name: name, sets: sets, ways: ways, latency: latency, parent: parent}
	l.tags = make([][]uint64, sets)
	l.dirty = make([][]bool, sets)
	for i := range l.tags {
		l.tags[i] = make([]uint64, 0, ways)
		l.dirty[i] = make([]bool, 0, ways)
	}
	return l
}

// Name returns the level's diagnostic name.
func (l *Level) Name() string { return l.name }

// Latency returns the hit latency in cycles.
func (l *Level) Latency() uint64 { return l.latency }

// SizeBytes returns the cache capacity.
func (l *Level) SizeBytes() int { return l.sets * l.ways * LineBytes }

func (l *Level) setOf(line Addr) int {
	return int(uint64(line) / LineBytes % uint64(l.sets))
}

// lookup probes the set for the line; on hit it promotes the line to MRU.
func (l *Level) lookup(line Addr, write bool) bool {
	s := l.setOf(line)
	tags, dirty := l.tags[s], l.dirty[s]
	for i, t := range tags {
		if t == uint64(line) {
			d := dirty[i] || write
			copy(tags[1:i+1], tags[:i])
			copy(dirty[1:i+1], dirty[:i])
			tags[0], dirty[0] = uint64(line), d
			return true
		}
	}
	return false
}

// fill inserts the line at MRU, evicting LRU if the set is full.
func (l *Level) fill(line Addr, write bool) {
	s := l.setOf(line)
	tags, dirty := l.tags[s], l.dirty[s]
	if len(tags) == l.ways {
		if dirty[len(dirty)-1] {
			l.Writebacks++
			// Writeback traffic occupies memory bandwidth lazily: we charge
			// it on the parent as a non-blocking write at the current time.
			// (The requester does not wait for it.)
		}
		tags = tags[:len(tags)-1]
		dirty = dirty[:len(dirty)-1]
	}
	tags = append(tags, 0)
	dirty = append(dirty, false)
	copy(tags[1:], tags)
	copy(dirty[1:], dirty)
	tags[0], dirty[0] = uint64(line), write
	l.tags[s], l.dirty[s] = tags, dirty
}

// access implements the lower interface so levels can stack.
func (l *Level) access(now uint64, line Addr, write bool) uint64 {
	l.Accesses++
	if l.lookup(line, write) {
		return now + l.latency
	}
	l.Misses++
	ready := l.parent.access(now+l.latency, line, write)
	l.fill(line, write)
	return ready
}

// Access performs a load or store of the line containing addr that departs
// the requester at cycle now, returning the cycle at which the data is
// available. Timing only; use the Backing store for values.
func (l *Level) Access(now uint64, addr Addr, write bool) uint64 {
	return l.access(now, addr.Line(), write)
}

// Contains reports whether the line holding addr is present (no LRU update).
func (l *Level) Contains(addr Addr) bool {
	line := addr.Line()
	for _, t := range l.tags[l.setOf(line)] {
		if t == uint64(line) {
			return true
		}
	}
	return false
}

// invalidate removes the line from this level and every level below it.
func (l *Level) invalidate(line Addr) {
	s := l.setOf(line)
	tags, dirty := l.tags[s], l.dirty[s]
	for i, t := range tags {
		if t == uint64(line) {
			l.tags[s] = append(tags[:i], tags[i+1:]...)
			l.dirty[s] = append(dirty[:i], dirty[i+1:]...)
			break
		}
	}
	if l.parent != nil {
		l.parent.invalidate(line)
	}
}

// Invalidate removes the line containing addr from this level and below.
func (l *Level) Invalidate(addr Addr) { l.invalidate(addr.Line()) }

// HitRate returns the fraction of accesses that hit at this level.
func (l *Level) HitRate() float64 {
	if l.Accesses == 0 {
		return 0
	}
	return 1 - float64(l.Misses)/float64(l.Accesses)
}
