package stats

import (
	"math"
	"strings"
	"testing"
)

func TestGMean(t *testing.T) {
	if got := GMean([]float64{2, 8}); math.Abs(got-4) > 1e-12 {
		t.Fatalf("gmean = %g, want 4", got)
	}
	if GMean(nil) != 0 {
		t.Fatal("empty gmean not 0")
	}
	// Zeros and negatives are skipped.
	if got := GMean([]float64{0, -1, 9}); math.Abs(got-9) > 1e-9 {
		t.Fatalf("filtered gmean = %g, want 9", got)
	}
}

func TestMean(t *testing.T) {
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Fatal("mean wrong")
	}
	if Mean(nil) != 0 {
		t.Fatal("empty mean not 0")
	}
}

func TestTableRendering(t *testing.T) {
	tbl := NewTable("name", "value")
	tbl.Add("alpha", 1)
	tbl.Add("b", 2.5)
	out := tbl.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("want 4 lines, got %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "name") || !strings.Contains(lines[2], "alpha") {
		t.Fatalf("bad render:\n%s", out)
	}
	// Columns align: every line has the separator at the same offset.
	if strings.Index(lines[0], "value") != strings.Index(lines[2], "1") {
		t.Fatalf("columns misaligned:\n%s", out)
	}
}
