// Package stats provides the reporting helpers used by the benchmark
// harness: geometric means, speedup tables, and fixed-width formatting that
// mirrors the paper's tables and figure series.
package stats

import (
	"fmt"
	"math"
	"strings"
)

// GMean returns the geometric mean of xs (zero for empty input; zero or
// negative entries are skipped, matching how speedup tables treat missing
// points).
func GMean(xs []float64) float64 {
	sum, n := 0.0, 0
	for _, x := range xs {
		if x > 0 {
			sum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// Mean returns the arithmetic mean of xs (zero for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Table accumulates rows of labeled values and renders them with aligned
// columns.
type Table struct {
	Header []string
	Rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{Header: header} }

// Add appends a row; values are formatted with %v (floats with %.3g unless
// already strings).
func (t *Table) Add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.3g", v)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	return b.String()
}
