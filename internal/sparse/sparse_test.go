package sparse

import (
	"math"
	"testing"
	"testing/quick"

	"fifer/internal/sim"
)

func small() *CSR {
	// 3x3: [1 0 2; 0 3 0; 4 0 5]
	return &CSR{
		Name: "s", NumRows: 3, NumCols: 3,
		RowOffsets: []uint64{0, 2, 3, 5},
		ColIdx:     []uint64{0, 2, 1, 0, 2},
		Values:     []float64{1, 2, 3, 4, 5},
	}
}

func TestCSRValidate(t *testing.T) {
	if err := small().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := small()
	bad.ColIdx[1] = 0 // duplicates column 0 in row 0 (not strictly increasing)
	if err := bad.Validate(); err == nil {
		t.Fatal("invalid CSR accepted")
	}
}

func TestTranspose(t *testing.T) {
	m := small()
	tr := Transpose(m)
	// Column 0 of m holds rows {0, 2} with values {1, 4}.
	rows, vals := tr.Col(0)
	if len(rows) != 2 || rows[0] != 0 || rows[1] != 2 || vals[0] != 1 || vals[1] != 4 {
		t.Fatalf("col 0 = %v %v", rows, vals)
	}
	if tr.NNZ() != m.NNZ() {
		t.Fatal("nnz changed")
	}
}

func TestMergeIntersect(t *testing.T) {
	ia, ib, steps := MergeIntersect([]uint64{1, 3, 5, 7}, []uint64{2, 3, 7, 9})
	if len(ia) != 2 || ia[0] != 1 || ia[1] != 3 || ib[0] != 1 || ib[1] != 2 {
		t.Fatalf("intersect = %v %v", ia, ib)
	}
	if steps == 0 {
		t.Fatal("no steps counted")
	}
	if ia, _, _ := MergeIntersect(nil, []uint64{1}); ia != nil {
		t.Fatal("empty intersect wrong")
	}
}

// Property: merge-intersect equals set intersection on sorted unique lists.
func TestMergeIntersectProperty(t *testing.T) {
	f := func(aBits, bBits uint32) bool {
		var a, b []uint64
		set := map[uint64]bool{}
		for i := uint64(0); i < 32; i++ {
			if aBits&(1<<i) != 0 {
				a = append(a, i)
			}
			if bBits&(1<<i) != 0 {
				b = append(b, i)
				if aBits&(1<<i) != 0 {
					set[i] = true
				}
			}
		}
		ia, ib, _ := MergeIntersect(a, b)
		if len(ia) != len(set) || len(ib) != len(ia) {
			return false
		}
		for k := range ia {
			if a[ia[k]] != b[ib[k]] || !set[a[ia[k]]] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSpMMSmall(t *testing.T) {
	a := small()
	b := Transpose(a) // B = A in CSC form, so C = A*A
	got := SpMM(a, b, []int{0, 1, 2}, []int{0, 1, 2})
	// A*A = [9 0 12; 0 9 0; 24 0 33]
	want := [][]float64{{9, 0, 12}, {0, 9, 0}, {24, 0, 33}}
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("C[%d][%d] = %g, want %g", i, j, got[i][j], want[i][j])
			}
		}
	}
}

// Property: sampled SpMM matches a dense-matrix oracle.
func TestSpMMDenseOracle(t *testing.T) {
	f := func(seed uint64) bool {
		r := sim.NewRand(seed)
		n := 12
		dense := make([][]float64, n)
		m := &CSR{Name: "d", NumRows: n, NumCols: n, RowOffsets: make([]uint64, n+1)}
		for i := range dense {
			dense[i] = make([]float64, n)
			for j := 0; j < n; j++ {
				if r.Float64() < 0.3 {
					v := 1 + r.Float64()
					dense[i][j] = v
					m.ColIdx = append(m.ColIdx, uint64(j))
					m.Values = append(m.Values, v)
				}
			}
			m.RowOffsets[i+1] = uint64(len(m.ColIdx))
		}
		rows := []int{0, 3, 7}
		cols := []int{1, 5, 11}
		got := SpMM(m, Transpose(m), rows, cols)
		for ri, i := range rows {
			for cj, j := range cols {
				want := 0.0
				for k := 0; k < n; k++ {
					want = math.FMA(dense[i][k], dense[k][j], want)
				}
				if math.Abs(got[ri][cj]-want) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestGeneratorsMatchTable4(t *testing.T) {
	for _, in := range Inputs {
		m := Generate(in, 0, 1)
		if err := m.Validate(); err != nil {
			t.Fatalf("%s: %v", in, err)
		}
		_, wantNNZ, _ := PaperStats(in)
		got := m.AvgNNZPerRow()
		if got < wantNNZ*0.8 || got > wantNNZ*1.5 {
			t.Errorf("%s: nnz/row %.2f too far from paper's %.1f", in, got, wantNNZ)
		}
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	a := Generate(FD, 0, 3)
	b := Generate(FD, 0, 3)
	if a.NNZ() != b.NNZ() {
		t.Fatal("nondeterministic")
	}
	for i := range a.Values {
		if a.Values[i] != b.Values[i] || a.ColIdx[i] != b.ColIdx[i] {
			t.Fatal("nondeterministic contents")
		}
	}
}

func TestBandedGeneratorClustersDiagonal(t *testing.T) {
	m := Generate(St, 0, 1) // structural: banded
	near, far := 0, 0
	band := m.NumRows / 4
	for r := 0; r < m.NumRows; r++ {
		cols, _ := m.Row(r)
		for _, c := range cols {
			d := int(c) - r
			if d < 0 {
				d = -d
			}
			if d <= band {
				near++
			} else {
				far++
			}
		}
	}
	if near < far*3 {
		t.Fatalf("banded matrix not diagonal-clustered: near=%d far=%d", near, far)
	}
}
