// Package sparse provides the sparse linear-algebra substrate for the SpMM
// benchmark: CSR and CSC compressed matrices, synthetic generators shaped
// after the paper's Table 4 inputs, and the reference inner-product
// (output-stationary) SpMM with its merge-intersect kernel (Sec. 7.2).
package sparse

import (
	"fmt"
	"math"
	"sort"

	"fifer/internal/sim"
)

// CSR is a compressed-sparse-row matrix of float64 values.
type CSR struct {
	Name       string
	NumRows    int
	NumCols    int
	RowOffsets []uint64 // length NumRows+1
	ColIdx     []uint64 // column index of each stored non-zero
	Values     []float64
}

// NNZ returns the stored non-zero count.
func (m *CSR) NNZ() int { return len(m.ColIdx) }

// AvgNNZPerRow returns the mean stored non-zeros per row.
func (m *CSR) AvgNNZPerRow() float64 {
	if m.NumRows == 0 {
		return 0
	}
	return float64(m.NNZ()) / float64(m.NumRows)
}

// Row returns the column indices and values of row r.
func (m *CSR) Row(r int) ([]uint64, []float64) {
	lo, hi := m.RowOffsets[r], m.RowOffsets[r+1]
	return m.ColIdx[lo:hi], m.Values[lo:hi]
}

// Validate checks CSR invariants (monotone offsets, sorted in-range column
// indices per row).
func (m *CSR) Validate() error {
	if len(m.RowOffsets) != m.NumRows+1 {
		return fmt.Errorf("matrix %s: %d row offsets, want %d", m.Name, len(m.RowOffsets), m.NumRows+1)
	}
	if m.RowOffsets[0] != 0 || m.RowOffsets[m.NumRows] != uint64(len(m.ColIdx)) {
		return fmt.Errorf("matrix %s: bad boundary offsets", m.Name)
	}
	if len(m.Values) != len(m.ColIdx) {
		return fmt.Errorf("matrix %s: %d values, %d col indices", m.Name, len(m.Values), len(m.ColIdx))
	}
	for r := 0; r < m.NumRows; r++ {
		if m.RowOffsets[r+1] < m.RowOffsets[r] {
			return fmt.Errorf("matrix %s: offsets decrease at row %d", m.Name, r)
		}
		cols, _ := m.Row(r)
		for i, c := range cols {
			if c >= uint64(m.NumCols) {
				return fmt.Errorf("matrix %s: row %d col %d out of range", m.Name, r, c)
			}
			if i > 0 && cols[i-1] >= c {
				return fmt.Errorf("matrix %s: row %d columns not strictly increasing", m.Name, r)
			}
		}
	}
	return nil
}

// CSC is a compressed-sparse-column matrix (the layout of matrix B in the
// paper's inner-product SpMM).
type CSC struct {
	Name       string
	NumRows    int
	NumCols    int
	ColOffsets []uint64
	RowIdx     []uint64
	Values     []float64
}

// NNZ returns the stored non-zero count.
func (m *CSC) NNZ() int { return len(m.RowIdx) }

// Col returns the row indices and values of column c.
func (m *CSC) Col(c int) ([]uint64, []float64) {
	lo, hi := m.ColOffsets[c], m.ColOffsets[c+1]
	return m.RowIdx[lo:hi], m.Values[lo:hi]
}

// Transpose converts a CSR matrix into the CSC layout of the same matrix.
func Transpose(m *CSR) *CSC {
	t := &CSC{
		Name: m.Name + "^csc", NumRows: m.NumRows, NumCols: m.NumCols,
		ColOffsets: make([]uint64, m.NumCols+1),
		RowIdx:     make([]uint64, m.NNZ()),
		Values:     make([]float64, m.NNZ()),
	}
	counts := make([]uint64, m.NumCols)
	for _, c := range m.ColIdx {
		counts[c]++
	}
	for c := 0; c < m.NumCols; c++ {
		t.ColOffsets[c+1] = t.ColOffsets[c] + counts[c]
	}
	next := append([]uint64(nil), t.ColOffsets[:m.NumCols]...)
	for r := 0; r < m.NumRows; r++ {
		cols, vals := m.Row(r)
		for i, c := range cols {
			t.RowIdx[next[c]] = uint64(r)
			t.Values[next[c]] = vals[i]
			next[c]++
		}
	}
	return t
}

// MergeIntersect walks two strictly-increasing coordinate lists in tandem
// and returns the indices (into each list) at which coordinates coincide —
// the paper's merge-intersect kernel. steps receives the number of merge
// steps performed (one list-advance per step), the quantity that dominates
// SpMM's runtime.
func MergeIntersect(a, b []uint64) (ia, ib []int, steps int) {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		steps++
		switch {
		case a[i] == b[j]:
			ia = append(ia, i)
			ib = append(ib, j)
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return ia, ib, steps
}

// SpMM computes C = A·B one output element at a time using merge-intersect
// inner products (output-stationary). Only the rows in rowSample and
// columns in colSample are computed, mirroring the paper's sampling
// (Sec. 7.2). The result is a dense rowSample×colSample matrix.
func SpMM(a *CSR, b *CSC, rowSample, colSample []int) [][]float64 {
	out := make([][]float64, len(rowSample))
	for i, r := range rowSample {
		out[i] = make([]float64, len(colSample))
		acols, avals := a.Row(r)
		for j, c := range colSample {
			brows, bvals := b.Col(c)
			ia, ib, _ := MergeIntersect(acols, brows)
			sum := 0.0
			for k := range ia {
				sum = math.FMA(avals[ia[k]], bvals[ib[k]], sum)
			}
			out[i][j] = sum
		}
	}
	return out
}

// Input names the six Table 4 matrices.
type Input string

const (
	FS Input = "FS" // p2p-Gnutella31: file sharing, 2.4 nnz/row
	Gr Input = "Gr" // amazon0312: graph as matrix, 8.0
	GE Input = "GE" // cage12: gel electrophoresis, 15.6
	EM Input = "EM" // 2cubes_sphere: electromagnetics, 16.2
	FD Input = "FD" // rma10: fluid dynamics, 49.7
	St Input = "St" // pwtk: structural, 52.9
)

// Inputs lists the Table 4 matrices in the paper's order.
var Inputs = []Input{FS, Gr, GE, EM, FD, St}

type matSpec struct {
	size        [3]int // per graph.Scale-like scale (tiny, small, medium)
	nnzRow      float64
	banded      bool // FEM-like matrices cluster non-zeros near the diagonal
	paperN      int
	paperNNZRow float64
	domain      string
}

var matSpecs = map[Input]matSpec{
	FS: {size: [3]int{1_500, 8_000, 32_000}, nnzRow: 2.4, banded: false,
		paperN: 62_586, paperNNZRow: 2.4, domain: "File sharing"},
	Gr: {size: [3]int{2_000, 12_000, 48_000}, nnzRow: 8.0, banded: false,
		paperN: 400_727, paperNNZRow: 8.0, domain: "Graph as matrix"},
	GE: {size: [3]int{1_800, 10_000, 40_000}, nnzRow: 15.6, banded: true,
		paperN: 130_228, paperNNZRow: 15.6, domain: "Gel electrophoresis"},
	EM: {size: [3]int{1_500, 9_000, 36_000}, nnzRow: 16.2, banded: true,
		paperN: 101_492, paperNNZRow: 16.2, domain: "Electromagnetics"},
	FD: {size: [3]int{1_000, 5_000, 20_000}, nnzRow: 49.7, banded: true,
		paperN: 46_835, paperNNZRow: 49.7, domain: "Fluid dynamics"},
	St: {size: [3]int{1_200, 7_000, 28_000}, nnzRow: 52.9, banded: true,
		paperN: 217_918, paperNNZRow: 52.9, domain: "Structural"},
}

// PaperStats returns the real matrix's published size and density (Table 4).
func PaperStats(in Input) (n int, nnzPerRow float64, domain string) {
	s := matSpecs[in]
	return s.paperN, s.paperNNZRow, s.domain
}

// Generate produces the synthetic stand-in for the named Table 4 matrix at
// the given scale index (0=tiny, 1=small, 2=medium), deterministically from
// seed. FEM-like matrices are banded (non-zeros near the diagonal), others
// are uniform, which preserves the intersection density that drives
// merge-intersect behavior.
func Generate(in Input, scale int, seed uint64) *CSR {
	s, ok := matSpecs[in]
	if !ok {
		panic(fmt.Sprintf("sparse: unknown input %q", in))
	}
	n := s.size[scale]
	r := sim.NewRand(seed ^ uint64(n) ^ uint64(len(in))*977)
	m := &CSR{Name: string(in), NumRows: n, NumCols: n, RowOffsets: make([]uint64, n+1)}
	band := n / 8
	// The band must comfortably hold the densest rows (3x the mean), or the
	// rejection loop below could never gather enough distinct columns.
	if min := int(s.nnzRow*8) + 16; band < min {
		band = min
	}
	if band > n {
		band = n
	}
	cols := make(map[uint64]struct{}, int(s.nnzRow)+4)
	for row := 0; row < n; row++ {
		// Per-row non-zero count: mean nnzRow with geometric-ish spread.
		target := int(s.nnzRow)
		frac := s.nnzRow - float64(target)
		if r.Float64() < frac {
			target++
		}
		// Add skew: occasionally dense rows (matches real matrices' spread).
		if r.Float64() < 0.05 {
			target *= 3
		}
		if target < 1 {
			target = 1
		}
		if target > band/2 {
			target = band / 2
		}
		if target > n {
			target = n
		}
		for k := range cols {
			delete(cols, k)
		}
		for len(cols) < target {
			var c int
			if s.banded {
				c = row - band/2 + r.Intn(band)
				if c < 0 || c >= n {
					c = r.Intn(n)
				}
			} else {
				c = r.Intn(n)
			}
			cols[uint64(c)] = struct{}{}
		}
		sorted := make([]uint64, 0, len(cols))
		for c := range cols {
			sorted = append(sorted, c)
		}
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		for _, c := range sorted {
			m.ColIdx = append(m.ColIdx, c)
			m.Values = append(m.Values, 1+r.Float64())
		}
		m.RowOffsets[row+1] = uint64(len(m.ColIdx))
	}
	return m
}
