// Package trace is the simulator's observability layer: typed cycle-level
// events emitted by the core through a nil-checked Config.Tracer hook, a
// ring-buffered in-memory collector, Chrome-trace-event/Perfetto-compatible
// JSON export, and a periodic per-PE metrics sampler (CPI-stack deltas,
// queue occupancy, DRM inflight). The contract with the core is strict:
// with no tracer attached the simulation hot path pays a single predictable
// nil-check branch per potential event and performs no allocations; with a
// tracer attached, events are written into a preallocated ring, so tracing
// observes the simulation without ever perturbing it — results are
// bit-identical with tracing on or off. DESIGN.md §9 documents the event
// taxonomy and file formats.
package trace

// Kind identifies what happened in the simulated machine at an event.
type Kind uint8

const (
	// KindStageSwitch: a PE activated a stage configuration (Name = stage,
	// Arg = resident-stage index). Emitted for the free initial activation
	// too, so per-PE counts equal the PE's Activations statistic.
	KindStageSwitch Kind = iota
	// KindReconfigBegin: a PE started the drain/load/activate sequence
	// (Name = incoming stage, Arg = the reconfiguration period in cycles).
	KindReconfigBegin
	// KindReconfigEnd: the pending configuration became active (Name =
	// stage, Arg = resident-stage index). Always followed, at the same
	// cycle, by the matching KindStageSwitch.
	KindReconfigEnd
	// KindQueueFull: an enqueue filled a queue's last slot — the leading
	// edge of a back-pressure stall (Name = queue, Arg = occupancy).
	KindQueueFull
	// KindQueueReady: a dequeue (or reset) made space in a full queue — the
	// trailing edge (Name = queue, Arg = occupancy after the dequeue).
	// Full/ready edges strictly alternate per queue, starting with full.
	KindQueueReady
	// KindDRMIssue: a DRM launched one memory access (Name = DRM, Arg =
	// byte address).
	KindDRMIssue
	// KindDRMResponse: a DRM delivered one token to its output queue
	// (Name = DRM, Arg = token value). Responses include control tokens
	// passed through, so per-DRM responses >= issues.
	KindDRMResponse
	// KindCreditGrant: an inter-PE producer consumed one credit sending a
	// token (Name = destination queue, Arg = producer port index). PE is
	// the consumer that owns the queue.
	KindCreditGrant
	// KindCreditReturn: the consumer's dequeue returned one credit to a
	// producer (Name = destination queue, Arg = producer port index).
	KindCreditReturn
	// KindCheckpoint: the progress watchdog took a checkpoint (PE = -1,
	// Name = "watchdog", Arg = total datapath firings so far).
	KindCheckpoint

	kindCount
)

var kindNames = [kindCount]string{
	KindStageSwitch:   "stage-switch",
	KindReconfigBegin: "reconfig-begin",
	KindReconfigEnd:   "reconfig-end",
	KindQueueFull:     "queue-full",
	KindQueueReady:    "queue-ready",
	KindDRMIssue:      "drm-issue",
	KindDRMResponse:   "drm-response",
	KindCreditGrant:   "credit-grant",
	KindCreditReturn:  "credit-return",
	KindCheckpoint:    "checkpoint",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// KindFromString maps an encoded kind name back to its Kind; ok is false
// for names this version does not know (a trace from a newer encoder).
func KindFromString(s string) (Kind, bool) {
	for k, name := range kindNames {
		if name == s {
			return Kind(k), true
		}
	}
	return 0, false
}

// Kinds lists every event kind, in declaration order.
func Kinds() []Kind {
	out := make([]Kind, kindCount)
	for i := range out {
		out[i] = Kind(i)
	}
	return out
}

// Event is one typed simulation event. The struct is plain data — interned
// component names, no pointers into live simulation state — so emitting one
// never allocates and a collected trace stays valid after the run.
type Event struct {
	Cycle uint64 // simulated cycle at which the event happened
	PE    int    // processing element, or -1 for system-wide events
	Kind  Kind
	Name  string // component: stage, queue, or DRM name (see Kind docs)
	Arg   uint64 // kind-specific payload (see Kind docs)
}

// Tracer receives events from the simulation core. Implementations must not
// mutate simulation state (they only see value types, so they cannot) and
// need not be safe for concurrent use: a tracer is owned by one simulation.
type Tracer interface {
	Emit(e Event)
}

// MetricsRow is one periodic per-PE sample: CPI-stack deltas over the
// elapsed window plus instantaneous occupancy gauges. Summing every window's
// deltas for one PE reproduces the PE's final CPI stack exactly, and their
// total equals the run's cycle count — the invariant suite pins this.
type MetricsRow struct {
	Cycle uint64 // sample cycle (end of the window)
	PE    int
	// CPI-stack deltas since the previous sample of this PE.
	Issued, Stall, Queue, Reconfig, Idle uint64
	// QueueTokens is the PE's queue-memory occupancy at the sample cycle.
	QueueTokens int
	// DRMInflight is the PE's total in-flight DRM accesses at the sample.
	DRMInflight int
}

// Total returns the row's delta total — the window length in cycles.
func (r MetricsRow) Total() uint64 {
	return r.Issued + r.Stall + r.Queue + r.Reconfig + r.Idle
}

// MetricsSink receives periodic metrics samples from the core.
type MetricsSink interface {
	SampleRow(r MetricsRow)
}

// DefaultBufEvents is the collector's default ring capacity.
const DefaultBufEvents = 1 << 20

// Collector is the standard Tracer and MetricsSink: a fixed-capacity event
// ring (flight-recorder semantics — when full, the oldest events are
// overwritten and counted in Dropped) plus an append-only metrics log.
// A Collector belongs to one simulation and is not safe for concurrent use.
type Collector struct {
	buf     []Event
	start   int // index of the oldest event once the ring has wrapped
	dropped uint64
	rows    []MetricsRow
}

// NewCollector returns a collector with the given ring capacity in events
// (<= 0 selects DefaultBufEvents). The ring is allocated lazily on the
// first event, so an unused collector costs almost nothing.
func NewCollector(capEvents int) *Collector {
	if capEvents <= 0 {
		capEvents = DefaultBufEvents
	}
	return &Collector{buf: make([]Event, 0, capEvents)}
}

// Emit implements Tracer: append to the ring, overwriting the oldest event
// when full. Never allocates once the ring has reached capacity.
func (c *Collector) Emit(e Event) {
	if len(c.buf) < cap(c.buf) {
		c.buf = append(c.buf, e)
		return
	}
	c.buf[c.start] = e
	c.start++
	if c.start == len(c.buf) {
		c.start = 0
	}
	c.dropped++
}

// SampleRow implements MetricsSink.
func (c *Collector) SampleRow(r MetricsRow) { c.rows = append(c.rows, r) }

// Events returns the collected events, oldest first. The slice is a copy;
// mutating it does not affect the collector.
func (c *Collector) Events() []Event {
	out := make([]Event, 0, len(c.buf))
	out = append(out, c.buf[c.start:]...)
	out = append(out, c.buf[:c.start]...)
	return out
}

// Len returns the number of events currently held in the ring.
func (c *Collector) Len() int { return len(c.buf) }

// Dropped returns how many events were overwritten because the ring was
// full. A nonzero count means the trace is a suffix of the run, not the
// whole run; analyses that need pairing (reconfig begin/end, queue edges)
// must tolerate unmatched leading events.
func (c *Collector) Dropped() uint64 { return c.dropped }

// Rows returns the metrics samples in emission order (shared slice; callers
// must not mutate).
func (c *Collector) Rows() []MetricsRow { return c.rows }

// Empty reports whether the collector captured nothing — the case for runs
// that never touch the CGRA core (the OOO baselines).
func (c *Collector) Empty() bool { return len(c.buf) == 0 && len(c.rows) == 0 }
