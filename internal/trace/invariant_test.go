// Cross-layer invariant suite for the observability layer: every benchmark
// is run with a streaming checker attached as both Tracer and MetricsSink,
// and the event stream is reconciled against the simulation's own
// statistics. The checker lives in package trace_test so it can drive real
// runs through the bench harness without an import cycle.
package trace_test

import (
	"fmt"
	"testing"

	"fifer/internal/apps"
	"fifer/internal/bench"
	"fifer/internal/core"
	"fifer/internal/trace"
)

// checker is a streaming Tracer+MetricsSink that verifies event-stream
// invariants as they happen (no buffering of the full stream) and
// accumulates the totals reconciled against core.Result afterwards.
type checker struct {
	t *testing.T

	lastCycle map[int]uint64 // per-PE last event cycle (monotonicity)

	reconfigOpen  map[int]bool // per-PE: begin seen, end pending
	reconfigBegin map[int]int
	reconfigEnd   map[int]int

	switches map[int]int // per-PE stage-switch events

	queueFull map[string]bool // per-queue: inside a full episode
	fullEdges map[string]int
	readyEdge map[string]int

	drmIssues map[string]uint64
	drmResps  map[string]uint64

	creditOut map[string]int // per "queue#port": grants minus returns

	stacks    map[int]core.CPIStack // per-PE accumulated metric deltas
	rowCycles map[int]uint64        // per-PE last sample cycle

	errs int
}

func newChecker(t *testing.T) *checker {
	return &checker{
		t:             t,
		lastCycle:     map[int]uint64{},
		reconfigOpen:  map[int]bool{},
		reconfigBegin: map[int]int{},
		reconfigEnd:   map[int]int{},
		switches:      map[int]int{},
		queueFull:     map[string]bool{},
		fullEdges:     map[string]int{},
		readyEdge:     map[string]int{},
		drmIssues:     map[string]uint64{},
		drmResps:      map[string]uint64{},
		creditOut:     map[string]int{},
		stacks:        map[int]core.CPIStack{},
		rowCycles:     map[int]uint64{},
	}
}

// fail reports one streaming violation without flooding the log.
func (c *checker) fail(format string, args ...any) {
	c.errs++
	if c.errs <= 10 {
		c.t.Errorf(format, args...)
	}
}

func (c *checker) Emit(e trace.Event) {
	if last, ok := c.lastCycle[e.PE]; ok && e.Cycle < last {
		c.fail("pe%d: event cycle went backwards: %d after %d (%v %s)", e.PE, e.Cycle, last, e.Kind, e.Name)
	}
	c.lastCycle[e.PE] = e.Cycle

	switch e.Kind {
	case trace.KindReconfigBegin:
		if c.reconfigOpen[e.PE] {
			c.fail("pe%d: reconfig-begin at cycle %d with a reconfiguration already open", e.PE, e.Cycle)
		}
		c.reconfigOpen[e.PE] = true
		c.reconfigBegin[e.PE]++
	case trace.KindReconfigEnd:
		if !c.reconfigOpen[e.PE] {
			c.fail("pe%d: reconfig-end at cycle %d without a matching begin", e.PE, e.Cycle)
		}
		c.reconfigOpen[e.PE] = false
		c.reconfigEnd[e.PE]++
	case trace.KindStageSwitch:
		c.switches[e.PE]++
	case trace.KindQueueFull:
		if c.queueFull[e.Name] {
			c.fail("queue %s: two full edges in a row at cycle %d", e.Name, e.Cycle)
		}
		c.queueFull[e.Name] = true
		c.fullEdges[e.Name]++
	case trace.KindQueueReady:
		if !c.queueFull[e.Name] {
			c.fail("queue %s: ready edge without a preceding full at cycle %d", e.Name, e.Cycle)
		}
		c.queueFull[e.Name] = false
		c.readyEdge[e.Name]++
	case trace.KindDRMIssue:
		c.drmIssues[e.Name]++
	case trace.KindDRMResponse:
		c.drmResps[e.Name]++
	case trace.KindCreditGrant:
		c.creditOut[fmt.Sprintf("%s#%d", e.Name, e.Arg)]++
	case trace.KindCreditReturn:
		k := fmt.Sprintf("%s#%d", e.Name, e.Arg)
		c.creditOut[k]--
		if c.creditOut[k] < 0 {
			c.fail("credits %s: more returns than grants at cycle %d", k, e.Cycle)
		}
	case trace.KindCheckpoint:
		if e.PE != -1 {
			c.fail("checkpoint event carries PE %d, want -1", e.PE)
		}
	default:
		c.fail("unknown event kind %d at cycle %d", e.Kind, e.Cycle)
	}
}

func (c *checker) SampleRow(r trace.MetricsRow) {
	if last, ok := c.rowCycles[r.PE]; ok && r.Cycle <= last {
		c.fail("pe%d: metrics sample cycle not increasing: %d after %d", r.PE, r.Cycle, last)
	}
	c.rowCycles[r.PE] = r.Cycle
	s := c.stacks[r.PE]
	s.Issued += r.Issued
	s.Stall += r.Stall
	s.Queue += r.Queue
	s.Reconfig += r.Reconfig
	s.Idle += r.Idle
	c.stacks[r.PE] = s
	if r.QueueTokens < 0 || r.DRMInflight < 0 {
		c.fail("pe%d: negative gauge at cycle %d: qtokens=%d inflight=%d", r.PE, r.Cycle, r.QueueTokens, r.DRMInflight)
	}
}

// reconcile compares the stream's totals against the run's own statistics.
func (c *checker) reconcile(res core.Result) {
	var begins, ends uint64
	for pe, open := range c.reconfigOpen {
		if open {
			c.fail("pe%d: reconfiguration still open at end of run", pe)
		}
	}
	for _, n := range c.reconfigBegin {
		begins += uint64(n)
	}
	for _, n := range c.reconfigEnd {
		ends += uint64(n)
	}
	if begins != ends {
		c.fail("reconfig begin/end unbalanced: %d begins, %d ends", begins, ends)
	}
	if begins != res.Reconfigs {
		c.fail("reconfig events %d != Result.Reconfigs %d", begins, res.Reconfigs)
	}

	for pe, want := range res.PEActivations {
		if got := uint64(c.switches[pe]); got != want {
			c.fail("pe%d: %d stage-switch events != %d recorded activations", pe, got, want)
		}
	}

	for q, full := range c.queueFull {
		if full {
			c.fail("queue %s: still full at end of a quiesced run", q)
		}
	}
	for q, n := range c.fullEdges {
		if m := c.readyEdge[q]; n != m {
			c.fail("queue %s: %d full edges vs %d ready edges", q, n, m)
		}
	}

	for d, issues := range c.drmIssues {
		if resp := c.drmResps[d]; resp < issues {
			c.fail("drm %s: %d responses < %d issues", d, resp, issues)
		}
	}

	for k, out := range c.creditOut {
		if out != 0 {
			c.fail("credits %s: %d grant(s) never returned after quiesce", k, out)
		}
	}

	for pe, want := range res.Stacks {
		got := c.stacks[pe]
		if got != want {
			c.fail("pe%d: summed metric deltas %+v != final CPI stack %+v", pe, got, want)
		}
		if got.Total() != res.Cycles {
			c.fail("pe%d: metric deltas sum to %d cycles, run took %d", pe, got.Total(), res.Cycles)
		}
	}
}

// run executes one benchmark with a checker attached and reconciles.
func runChecked(t *testing.T, app, input string, kind apps.SystemKind) {
	t.Helper()
	chk := newChecker(t)
	out, err := bench.RunOne(app, input, kind, false, bench.Options{Scale: 0, Seed: 1},
		func(cfg *core.Config) {
			cfg.Tracer = chk
			cfg.Metrics = chk
			cfg.MetricsCycles = 256
		})
	if err != nil {
		t.Fatalf("%s/%s %v: %v", app, input, kind, err)
	}
	if len(chk.lastCycle) == 0 {
		t.Fatalf("%s/%s %v: no events reached the tracer", app, input, kind)
	}
	chk.reconcile(out.Pipe)
}

// TestInvariantsAllApps streams every benchmark's full event and metrics
// feed through the checker: per-PE cycle monotonicity, reconfig begin/end
// pairing (count == Result.Reconfigs), stage-switch count == the PE's
// Activations statistic, strict queue full/ready edge alternation with
// end-of-run balance, per-DRM responses >= issues, credit conservation, and
// CPI-stack metric deltas summing exactly to the final stacks and the run's
// cycle count.
func TestInvariantsAllApps(t *testing.T) {
	for _, app := range bench.AppNames {
		app := app
		t.Run(app, func(t *testing.T) {
			t.Parallel()
			runChecked(t, app, bench.InputsOf(app)[0], apps.FiferPipe)
		})
	}
}

// TestInvariantsStatic covers the static-pipeline system, whose PEs never
// reconfigure: the suite additionally proves zero reconfig events there.
func TestInvariantsStatic(t *testing.T) {
	chk := newChecker(t)
	out, err := bench.RunOne("BFS", bench.InputsOf("BFS")[0], apps.StaticPipe, false,
		bench.Options{Scale: 0, Seed: 1}, func(cfg *core.Config) {
			cfg.Tracer = chk
			cfg.Metrics = chk
			cfg.MetricsCycles = 256
		})
	if err != nil {
		t.Fatal(err)
	}
	chk.reconcile(out.Pipe)
	if n := len(chk.reconfigBegin); n != 0 {
		t.Errorf("static pipeline emitted reconfig events on %d PE(s)", n)
	}
}
