package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Metrics export. The JSONL form is one self-describing object per sample —
// the format fifertrace and ad-hoc tooling (jq, pandas) consume; the CSV
// form is the same rows for spreadsheet import. Both are deterministic:
// rows are written in emission order, which the core fixes (per-PE, in
// cycle order).

// JobMetrics is one simulation's metrics samples within a JSONL file.
type JobMetrics struct {
	Name string // job key, e.g. "BFS/Hu fifer-16pe"
	Rows []MetricsRow
}

// metricsLine is the wire form of one JSONL metrics sample.
type metricsLine struct {
	Job         string `json:"job"`
	Cycle       uint64 `json:"cycle"`
	PE          int    `json:"pe"`
	Issued      uint64 `json:"issued"`
	Stall       uint64 `json:"stall"`
	Queue       uint64 `json:"queue"`
	Reconfig    uint64 `json:"reconfig"`
	Idle        uint64 `json:"idle"`
	QueueTokens int    `json:"qtokens"`
	DRMInflight int    `json:"drm_inflight"`
}

func toLine(job string, r MetricsRow) metricsLine {
	return metricsLine{Job: job, Cycle: r.Cycle, PE: r.PE,
		Issued: r.Issued, Stall: r.Stall, Queue: r.Queue,
		Reconfig: r.Reconfig, Idle: r.Idle,
		QueueTokens: r.QueueTokens, DRMInflight: r.DRMInflight}
}

func (l metricsLine) row() MetricsRow {
	return MetricsRow{Cycle: l.Cycle, PE: l.PE,
		Issued: l.Issued, Stall: l.Stall, Queue: l.Queue,
		Reconfig: l.Reconfig, Idle: l.Idle,
		QueueTokens: l.QueueTokens, DRMInflight: l.DRMInflight}
}

// WriteMetricsJSONL appends job's samples to w, one JSON object per line.
func WriteMetricsJSONL(w io.Writer, job string, rows []MetricsRow) error {
	bw := bufio.NewWriter(w)
	for _, r := range rows {
		b, err := json.Marshal(toLine(job, r))
		if err != nil {
			return err
		}
		bw.Write(b)
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// ReadMetricsJSONL parses a JSONL metrics file back into per-job rows, in
// first-appearance order.
func ReadMetricsJSONL(r io.Reader) ([]JobMetrics, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	var order []string
	rows := map[string][]MetricsRow{}
	n := 0
	for sc.Scan() {
		n++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var l metricsLine
		if err := json.Unmarshal([]byte(line), &l); err != nil {
			return nil, fmt.Errorf("trace: metrics line %d: %w", n, err)
		}
		if _, ok := rows[l.Job]; !ok {
			order = append(order, l.Job)
		}
		rows[l.Job] = append(rows[l.Job], l.row())
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: reading metrics: %w", err)
	}
	out := make([]JobMetrics, 0, len(order))
	for _, job := range order {
		out = append(out, JobMetrics{Name: job, Rows: rows[job]})
	}
	return out, nil
}

// WriteMetricsCSV writes job's samples as CSV with a header row.
func WriteMetricsCSV(w io.Writer, job string, rows []MetricsRow) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "job,cycle,pe,issued,stall,queue,reconfig,idle,qtokens,drm_inflight")
	for _, r := range rows {
		fmt.Fprintf(bw, "%s,%d,%d,%d,%d,%d,%d,%d,%d,%d\n",
			job, r.Cycle, r.PE, r.Issued, r.Stall, r.Queue, r.Reconfig, r.Idle,
			r.QueueTokens, r.DRMInflight)
	}
	return bw.Flush()
}
