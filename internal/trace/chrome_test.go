package trace_test

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"fifer/internal/apps"
	"fifer/internal/bench"
	"fifer/internal/core"
	"fifer/internal/trace"
)

// randomJobs builds a deterministic pseudo-random trace: every kind, PEs
// including the system-wide -1, full-range uint64 cycles and args (the
// values float64 would corrupt), empty and non-empty component names.
func randomJobs(rng *rand.Rand, n int) []trace.JobTrace {
	names := []string{"", "pe0.drm0", "bfs.r0.update", "q/with,odd\"chars\\"}
	kinds := trace.Kinds()
	jobs := make([]trace.JobTrace, n)
	for i := range jobs {
		jobs[i].Name = []string{"BFS/Hu fifer-16pe", "", "SpMM/web static"}[rng.Intn(3)]
		evs := make([]trace.Event, 1+rng.Intn(200))
		cycle := rng.Uint64() >> 1
		for j := range evs {
			cycle += uint64(rng.Intn(1000))
			evs[j] = trace.Event{
				Cycle: cycle,
				PE:    rng.Intn(34) - 1,
				Kind:  kinds[rng.Intn(len(kinds))],
				Name:  names[rng.Intn(len(names))],
				Arg:   rng.Uint64(),
			}
		}
		// Occasionally use extreme values that would not survive float64.
		if rng.Intn(2) == 0 {
			evs[0].Cycle = 1<<63 + 1
			evs[0].Arg = 1<<64 - 1
		}
		jobs[i].Events = evs
	}
	return jobs
}

// TestChromeRoundTripProperty is the export property test: for many random
// traces, WriteChrome → ReadChrome reproduces every job and event exactly —
// kind names decode to the same Kind, and 64-bit cycles/args survive
// losslessly (the wire structs are integer-typed precisely so 2^63-scale
// values do not pass through float64).
func TestChromeRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 50; iter++ {
		jobs := randomJobs(rng, 1+rng.Intn(4))
		var buf bytes.Buffer
		if err := trace.WriteChrome(&buf, jobs); err != nil {
			t.Fatalf("iter %d: write: %v", iter, err)
		}
		got, err := trace.ReadChrome(&buf)
		if err != nil {
			t.Fatalf("iter %d: read: %v", iter, err)
		}
		if !reflect.DeepEqual(got, jobs) {
			t.Fatalf("iter %d: round trip changed the trace\n got: %+v\nwant: %+v", iter, got, jobs)
		}
	}
}

// TestChromeRoundTripEmptyJob pins the edge the property test's generator
// avoids: a job with no events survives as its metadata record alone.
func TestChromeRoundTripEmptyJob(t *testing.T) {
	var buf bytes.Buffer
	if err := trace.WriteChrome(&buf, []trace.JobTrace{{Name: "empty job"}}); err != nil {
		t.Fatal(err)
	}
	got, err := trace.ReadChrome(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Name != "empty job" || len(got[0].Events) != 0 {
		t.Fatalf("got %+v", got)
	}
}

// TestChromeRejects pins the decoder's refusal behavior: non-JSON, unknown
// event kinds (a newer encoder), and unexpected phases fail loudly instead
// of dropping records.
func TestChromeRejects(t *testing.T) {
	for name, doc := range map[string]string{
		"not json":      "][",
		"unknown kind":  `{"traceEvents":[{"name":"future-kind","ph":"i","ts":1,"pid":0,"tid":0,"args":{"arg":0}}]}`,
		"unknown phase": `{"traceEvents":[{"name":"stage-switch","ph":"X","ts":1,"pid":0,"tid":0,"args":{"arg":0}}]}`,
	} {
		if _, err := trace.ReadChrome(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: ReadChrome accepted it", name)
		}
	}
}

// TestMetricsRoundTripProperty is the same property for the metrics JSONL
// form: random rows for several jobs round-trip through write/read with
// job grouping preserved in first-appearance order.
func TestMetricsRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 50; iter++ {
		var buf bytes.Buffer
		var want []trace.JobMetrics
		for j := 0; j < 1+rng.Intn(3); j++ {
			jm := trace.JobMetrics{Name: []string{"a", "b", "c"}[j]}
			for r := 0; r < 1+rng.Intn(20); r++ {
				jm.Rows = append(jm.Rows, trace.MetricsRow{
					Cycle: rng.Uint64(), PE: rng.Intn(16),
					Issued: rng.Uint64() >> 40, Stall: rng.Uint64() >> 40,
					Queue: rng.Uint64() >> 40, Reconfig: rng.Uint64() >> 40,
					Idle: rng.Uint64() >> 40, QueueTokens: rng.Intn(4096),
					DRMInflight: rng.Intn(64),
				})
			}
			want = append(want, jm)
			if err := trace.WriteMetricsJSONL(&buf, jm.Name, jm.Rows); err != nil {
				t.Fatal(err)
			}
		}
		got, err := trace.ReadMetricsJSONL(&buf)
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("iter %d: metrics round trip changed rows\n got: %+v\nwant: %+v", iter, got, want)
		}
	}
}

// TestRealTraceMonotoneAndRoundTrips drives a real benchmark through a
// Collector and checks the stream the way fifertrace consumes it: per-PE
// timestamps are monotone non-decreasing, and the collected trace survives
// the Chrome encoder/decoder exactly.
func TestRealTraceMonotoneAndRoundTrips(t *testing.T) {
	col := trace.NewCollector(1 << 18)
	_, err := bench.RunOne("CC", bench.InputsOf("CC")[0], apps.FiferPipe, false,
		bench.Options{Scale: 0, Seed: 1}, func(cfg *core.Config) { cfg.Tracer = col })
	if err != nil {
		t.Fatal(err)
	}
	events := col.Events()
	if len(events) == 0 {
		t.Fatal("run produced no events")
	}
	if col.Dropped() > 0 {
		t.Fatalf("ring overflowed (%d dropped); grow the buffer so the monotonicity check sees the whole run", col.Dropped())
	}
	last := map[int]uint64{}
	for i, e := range events {
		if prev, ok := last[e.PE]; ok && e.Cycle < prev {
			t.Fatalf("event %d: pe%d cycle %d < previous %d", i, e.PE, e.Cycle, prev)
		}
		last[e.PE] = e.Cycle
	}
	jobs := []trace.JobTrace{{Name: "CC real run", Events: events}}
	var buf bytes.Buffer
	if err := trace.WriteChrome(&buf, jobs); err != nil {
		t.Fatal(err)
	}
	got, err := trace.ReadChrome(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, jobs) {
		t.Fatal("real trace did not round-trip exactly")
	}
}

// TestCollectorRing pins the flight-recorder semantics: under overflow the
// ring keeps the newest events in order and counts the overwritten ones.
func TestCollectorRing(t *testing.T) {
	c := trace.NewCollector(4)
	for i := 0; i < 10; i++ {
		c.Emit(trace.Event{Cycle: uint64(i)})
	}
	if c.Len() != 4 {
		t.Fatalf("Len = %d, want 4", c.Len())
	}
	if c.Dropped() != 6 {
		t.Fatalf("Dropped = %d, want 6", c.Dropped())
	}
	events := c.Events()
	for i, e := range events {
		if want := uint64(6 + i); e.Cycle != want {
			t.Fatalf("event %d: cycle %d, want %d (oldest-first suffix)", i, e.Cycle, want)
		}
	}
	if c.Empty() {
		t.Fatal("non-empty collector reports Empty")
	}
	if !trace.NewCollector(4).Empty() {
		t.Fatal("fresh collector not Empty")
	}
}

// TestKindStrings pins the name table: every kind has a distinct non-empty
// encoding that decodes back to itself, and unknown names are rejected.
func TestKindStrings(t *testing.T) {
	seen := map[string]bool{}
	for _, k := range trace.Kinds() {
		s := k.String()
		if s == "" || s == "unknown" || seen[s] {
			t.Fatalf("kind %d encodes to %q", k, s)
		}
		seen[s] = true
		back, ok := trace.KindFromString(s)
		if !ok || back != k {
			t.Fatalf("kind %v does not round-trip through %q", k, s)
		}
	}
	if _, ok := trace.KindFromString("no-such-kind"); ok {
		t.Fatal("KindFromString accepted an unknown name")
	}
}
