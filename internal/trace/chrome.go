package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Chrome trace-event export. The file is the JSON-object form of the Chrome
// trace format ({"traceEvents":[...]}), which Perfetto and chrome://tracing
// both load directly. Every simulation event becomes one instant event
// (ph "i"): ts is the simulated cycle (the file's time unit is cycles, not
// microseconds), pid is the job ordinal within the file, tid is the PE, the
// event name is the Kind string, and args carry the component name and the
// kind-specific payload. A process_name metadata record labels each pid with
// its job key ("BFS/Hu fifer-16pe"), so multi-job sweeps load as one trace
// with one process per simulation. The mapping is lossless: ReadChrome
// reverses it exactly, which the round-trip property test pins.

// JobTrace is one simulation's event stream within a trace file.
type JobTrace struct {
	Name   string // job key, e.g. "BFS/Hu fifer-16pe"
	Events []Event
}

// chromeEvent is the wire form of one trace-event record. Ts and Arg are
// typed uint64 so 64-bit cycle counts and payloads round-trip exactly
// instead of passing through float64.
type chromeEvent struct {
	Name string     `json:"name"`
	Ph   string     `json:"ph"`
	Ts   uint64     `json:"ts"`
	Pid  int        `json:"pid"`
	Tid  int        `json:"tid"`
	S    string     `json:"s,omitempty"`
	Args chromeArgs `json:"args"`
}

type chromeArgs struct {
	// Comp is the simulation event's component name; Arg its payload.
	Comp string `json:"comp,omitempty"`
	Arg  uint64 `json:"arg"`
	// Name carries the process name on ph "M" metadata records.
	Name string `json:"name,omitempty"`
}

// WriteChrome writes jobs as one Chrome trace-event JSON document. Events
// are written in stream order per job and jobs in slice order, so the
// output is deterministic for deterministic inputs.
func WriteChrome(w io.Writer, jobs []JobTrace) error {
	if _, err := io.WriteString(w, `{"displayTimeUnit":"ns","traceEvents":[`); err != nil {
		return err
	}
	first := true
	emit := func(e chromeEvent) error {
		b, err := json.Marshal(e)
		if err != nil {
			return err
		}
		if !first {
			if _, err := w.Write([]byte(",\n")); err != nil {
				return err
			}
		}
		first = false
		_, err = w.Write(b)
		return err
	}
	for pid, job := range jobs {
		if err := emit(chromeEvent{Name: "process_name", Ph: "M", Pid: pid,
			Args: chromeArgs{Name: job.Name}}); err != nil {
			return err
		}
		for _, e := range job.Events {
			if err := emit(chromeEvent{
				Name: e.Kind.String(),
				Ph:   "i",
				Ts:   e.Cycle,
				Pid:  pid,
				Tid:  e.PE,
				S:    "t",
				Args: chromeArgs{Comp: e.Name, Arg: e.Arg},
			}); err != nil {
				return err
			}
		}
	}
	_, err := io.WriteString(w, "]}\n")
	return err
}

// ReadChrome parses a trace file written by WriteChrome back into per-job
// event streams, in pid order. Unknown event names (a trace from a newer
// encoder) are an error rather than a silent drop.
func ReadChrome(r io.Reader) ([]JobTrace, error) {
	var doc struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}
	dec := json.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("trace: not a Chrome trace-event JSON document: %w", err)
	}
	names := map[int]string{}
	events := map[int][]Event{}
	for i, ce := range doc.TraceEvents {
		switch ce.Ph {
		case "M":
			if ce.Name == "process_name" {
				names[ce.Pid] = ce.Args.Name
			}
		case "i":
			k, ok := KindFromString(ce.Name)
			if !ok {
				return nil, fmt.Errorf("trace: record %d: unknown event kind %q", i, ce.Name)
			}
			events[ce.Pid] = append(events[ce.Pid], Event{
				Cycle: ce.Ts, PE: ce.Tid, Kind: k, Name: ce.Args.Comp, Arg: ce.Args.Arg,
			})
		default:
			return nil, fmt.Errorf("trace: record %d: unexpected phase %q", i, ce.Ph)
		}
	}
	pids := make([]int, 0, len(names))
	for pid := range names {
		pids = append(pids, pid)
	}
	for pid := range events {
		if _, ok := names[pid]; !ok {
			pids = append(pids, pid)
		}
	}
	sort.Ints(pids)
	out := make([]JobTrace, 0, len(pids))
	for _, pid := range pids {
		out = append(out, JobTrace{Name: names[pid], Events: events[pid]})
	}
	return out, nil
}
