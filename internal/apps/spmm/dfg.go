package spmm

import "fifer/internal/cgra"

// Stage dataflow graphs for the timing model.

// schedDFG: compute the four scan ranges for an output pair (coupled loads
// of the two offsets arrays, which stay cache-resident).
func schedDFG() *cgra.DFG {
	g := cgra.NewDFG("spmm-sched")
	i := g.Const(0) // row cursor register
	j := g.Const(0) // col cursor register
	one := g.Const(1)
	aob := g.Const(0)
	a0 := g.Add(cgra.OpLEA, 3, aob, i)
	i1 := g.Add(cgra.OpAdd, 0, i, one)
	a1 := g.Add(cgra.OpLEA, 3, aob, i1)
	bob := g.Const(0)
	b0 := g.Add(cgra.OpLEA, 3, bob, j)
	j1 := g.Add(cgra.OpAdd, 0, j, one)
	b1 := g.Add(cgra.OpLEA, 3, bob, j1)
	aLo := g.Add(cgra.OpLoad, 0, a0)
	aHi := g.Add(cgra.OpLoad, 0, a1)
	bLo := g.Add(cgra.OpLoad, 0, b0)
	bHi := g.Add(cgra.OpLoad, 0, b1)
	acb := g.Const(0)
	g.Enq(0, g.Add(cgra.OpLEA, 3, acb, aLo))
	g.Enq(0, g.Add(cgra.OpLEA, 3, acb, aHi))
	avb := g.Const(0)
	g.Enq(1, g.Add(cgra.OpLEA, 3, avb, aLo))
	g.Enq(1, g.Add(cgra.OpLEA, 3, avb, aHi))
	bcb := g.Const(0)
	g.Enq(2, g.Add(cgra.OpLEA, 3, bcb, bLo))
	g.Enq(2, g.Add(cgra.OpLEA, 3, bcb, bHi))
	bvb := g.Const(0)
	g.Enq(3, g.Add(cgra.OpLEA, 3, bvb, bLo))
	g.Enq(3, g.Add(cgra.OpLEA, 3, bvb, bHi))
	return g
}

// mergeDFG: one merge-intersection step — compare heads, advance the
// smaller side, forward matched value pairs (the paper's most control-
// intensive datapath).
func mergeDFG() *cgra.DFG {
	g := cgra.NewDFG("spmm-merge")
	ac := g.Deq(0)
	bc := g.Deq(1)
	lt := g.Add(cgra.OpCmpLT, 0, ac, bc)
	gt := g.Add(cgra.OpCmpLT, 0, bc, ac)
	eq := g.Add(cgra.OpCmpEQ, 0, ac, bc)
	av := g.Deq(2)
	bv := g.Deq(3)
	fa := g.Add(cgra.OpSelect, 0, eq, av, lt)
	fb := g.Add(cgra.OpSelect, 0, eq, bv, gt)
	g.Enq(0, fa)
	g.Enq(0, fb)
	return g
}

// accumulateDFG: FMA the pair into the output-stationary accumulator; on a
// boundary control token, store the finished element.
func accumulateDFG() *cgra.DFG {
	g := cgra.NewDFG("spmm-accumulate")
	av := g.Deq(0)
	bv := g.Deq(0)
	acc := g.Const(0) // accumulator register
	sum := g.Add(cgra.OpFMA, 0, av, bv, acc)
	outb := g.Const(0)
	idx := g.Const(0)
	oa := g.Add(cgra.OpLEA, 3, outb, idx)
	g.Add(cgra.OpStore, 0, oa, sum)
	one := g.Const(1)
	g.Add(cgra.OpAdd, 0, idx, one)
	return g
}

// mergedDFG: the entire inner product in one configuration — coupled loads
// for offsets, coordinates, and values.
func mergedDFG() *cgra.DFG {
	g := cgra.NewDFG("spmm-merged")
	ai := g.Const(0)
	bi := g.Const(0)
	acb := g.Const(0)
	bcb := g.Const(0)
	aca := g.Add(cgra.OpLEA, 3, acb, ai)
	bca := g.Add(cgra.OpLEA, 3, bcb, bi)
	ac := g.Add(cgra.OpLoad, 0, aca)
	bc := g.Add(cgra.OpLoad, 0, bca)
	eq := g.Add(cgra.OpCmpEQ, 0, ac, bc)
	avb := g.Const(0)
	bvb := g.Const(0)
	ava := g.Add(cgra.OpLEA, 3, avb, ai)
	bva := g.Add(cgra.OpLEA, 3, bvb, bi)
	av := g.Add(cgra.OpLoad, 0, ava)
	bv := g.Add(cgra.OpLoad, 0, bva)
	acc := g.Const(0)
	fma := g.Add(cgra.OpFMA, 0, av, bv, acc)
	sel := g.Add(cgra.OpSelect, 0, eq, fma, acc)
	one := g.Const(1)
	g.Add(cgra.OpAdd, 0, ai, one)
	g.Add(cgra.OpAdd, 0, bi, one)
	outb := g.Const(0)
	oa := g.Add(cgra.OpLEA, 3, outb, eq)
	g.Add(cgra.OpStore, 0, oa, sel)
	return g
}
