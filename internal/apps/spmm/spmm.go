// Package spmm is the sparse matrix-matrix multiplication benchmark
// (Sec. 7.2, Fig. 12a): inner-product (output-stationary) SpMM whose
// merge-intersect stage walks a CSR row of A and a CSC column of B in
// tandem. Each replica owns a contiguous slice of the sampled output rows;
// the paper samples a subset of rows and columns to bound simulation time
// and we do the same.
//
// Pipeline per replica (three fabric stages; the paper's "stream rows" /
// "stream cols" boxes map to the four scanning DRMs):
//
//	S0 sched:      iterate (i, j) output pairs, launch the four scans
//	               (A-row coords, A-row values, B-col coords, B-col values)
//	S1 merge:      merge-intersect the coordinate streams, forwarding
//	               matched value pairs; boundary control tokens delimit
//	               output elements (Sec. 5.5) and redirect producers when
//	               one list runs out
//	S2 accumulate: FMA the matched pairs; on each boundary, store C[i][j]
package spmm

import (
	"fifer/internal/apps"
	"fifer/internal/core"
	"fifer/internal/sparse"
)

// Name is the benchmark's reporting name.
const Name = "SpMM"

// sampleFor returns the sampled output rows and columns for a matrix at the
// given scale: evenly strided so dense and sparse regions are both covered.
func sampleFor(m *sparse.CSR, scale int) (rows, cols []int) {
	k := []int{32, 64, 96}[scale]
	if k > m.NumRows {
		k = m.NumRows
	}
	stride := m.NumRows / k
	if stride < 1 {
		stride = 1
	}
	for i := 0; i < m.NumRows && len(rows) < k; i += stride {
		rows = append(rows, i)
		cols = append(cols, i)
	}
	return rows, cols
}

// Run executes SpMM (C = A·A with A in CSR and CSC forms) on the chosen
// system and input.
func Run(kind apps.SystemKind, input sparse.Input, scale int, seed uint64, merged bool, override func(*core.Config)) (apps.Outcome, error) {
	a := sparse.Generate(input, scale, seed)
	b := sparse.Transpose(a)
	rows, cols := sampleFor(a, scale)
	return runApp(kind, a, b, rows, cols, scale, merged, override)
}
