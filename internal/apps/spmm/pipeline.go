package spmm

import (
	"fmt"
	"math"

	"fifer/internal/apps"
	"fifer/internal/cgra"
	"fifer/internal/core"
	"fifer/internal/mem"
	"fifer/internal/queue"
	"fifer/internal/sparse"
	"fifer/internal/stage"
)

type pipeline struct {
	sys    *core.System
	a      *sparse.CSR
	b      *sparse.CSC
	rows   []int // sampled output rows
	cols   []int // sampled output columns
	merged bool
	place  apps.Placement

	// Simulated-memory layout.
	aOffA, aColA, aValA mem.Addr // CSR of A
	bOffA, bRowA, bValA mem.Addr // CSC of B
	reps                []*replica
}

type replica struct {
	id     int
	rLo    int // slice of p.rows owned by this replica
	rHi    int
	outA   mem.Addr // C output block: (rHi-rLo) × len(cols) words
	outIdx int      // S2's output counter register

	// S0 iteration registers.
	ri, cj int

	drmACoord *core.DRM
	drmAVal   *core.DRM
	drmBCoord *core.DRM
	drmBVal   *core.DRM

	acQ, avQ, bcQ, bvQ *apps.QueueRef
	mulQ               *apps.QueueRef

	// S2 accumulator register.
	acc float64

	// Merged-variant registers.
	mPairActive bool
	mAi, mAEnd  uint64
	mBi, mBEnd  uint64
}

func floatBits(f float64) uint64 { return math.Float64bits(f) }

func build(sys *core.System, a *sparse.CSR, b *sparse.CSC, rows, cols []int, merged bool) *pipeline {
	p := &pipeline{sys: sys, a: a, b: b, rows: rows, cols: cols, merged: merged}
	nstages := 3
	if merged {
		nstages = 1
	}
	p.place = apps.PlaceFor(sys.Cfg, nstages)
	bs := sys.Backing

	p.aOffA = bs.AllocSlice(a.RowOffsets)
	p.aColA = bs.AllocSlice(a.ColIdx)
	p.aValA = bs.AllocSlice(bitsOf(a.Values))
	p.bOffA = bs.AllocSlice(b.ColOffsets)
	p.bRowA = bs.AllocSlice(b.RowIdx)
	p.bValA = bs.AllocSlice(bitsOf(b.Values))

	R := p.place.Replicas
	qp := apps.NewQueuePlan(sys)
	for r := 0; r < R; r++ {
		rep := &replica{id: r}
		rep.rLo, rep.rHi = apps.OwnedRange(r, len(rows), R)
		nOut := (rep.rHi - rep.rLo) * len(cols)
		if nOut < 1 {
			nOut = 1
		}
		rep.outA = bs.AllocWords(nOut)
		rep.ri, rep.cj = rep.rLo, 0

		pe0 := p.place.PEOf(r, 0)
		peM := pe0 // merge/accumulate PEs
		peA := pe0
		if !merged {
			peM = p.place.PEOf(r, 1)
			peA = p.place.PEOf(r, 2)
		}
		rep.drmACoord = sys.PE(pe0).DRM(0)
		rep.drmAVal = sys.PE(pe0).DRM(1)
		rep.drmBCoord = sys.PE(pe0).DRM(2)
		rep.drmBVal = sys.PE(pe0).DRM(3)
		if !merged {
			rep.acQ = qp.Request(peM, fmt.Sprintf("r%d.ac", r), 1, prod(pe0, peM))
			rep.avQ = qp.Request(peM, fmt.Sprintf("r%d.av", r), 1, prod(pe0, peM))
			rep.bcQ = qp.Request(peM, fmt.Sprintf("r%d.bc", r), 1, prod(pe0, peM))
			rep.bvQ = qp.Request(peM, fmt.Sprintf("r%d.bv", r), 1, prod(pe0, peM))
			rep.mulQ = qp.Request(peA, fmt.Sprintf("r%d.mul", r), 2, prod(peM, peA))
		}
		p.reps = append(p.reps, rep)
	}
	qp.Build()

	for r := 0; r < R; r++ {
		rep := p.reps[r]
		if merged {
			p.addMerged(rep)
			continue
		}
		pe0 := p.place.PEOf(r, 0)
		for _, d := range []struct {
			drm *core.DRM
			q   *apps.QueueRef
		}{
			{rep.drmACoord, rep.acQ}, {rep.drmAVal, rep.avQ},
			{rep.drmBCoord, rep.bcQ}, {rep.drmBVal, rep.bvQ},
		} {
			d.drm.Configure(core.DRMScan, drmOut(d.q, pe0))
			d.drm.SetBoundary(true)
		}
		p.addFull(rep)
	}
	return p
}

func bitsOf(vals []float64) []uint64 {
	out := make([]uint64, len(vals))
	for i, v := range vals {
		out[i] = math.Float64bits(v)
	}
	return out
}

func prod(prodPE, consPE int) []int {
	if prodPE == consPE {
		return nil
	}
	return []int{prodPE}
}

func drmOut(q *apps.QueueRef, drmPE int) stage.OutPort {
	if q.Consumer == drmPE {
		return q.Local()
	}
	return q.Out(0)
}

// pairsLeft reports S0's remaining (i, j) work for scheduling/quiescence.
func (rep *replica) pairsLeft(p *pipeline) int {
	if rep.ri >= rep.rHi {
		return 0
	}
	return (rep.rHi-rep.ri-1)*len(p.cols) + (len(p.cols) - rep.cj)
}

func (p *pipeline) addFull(rep *replica) {
	r := rep.id

	// S0: output-pair scheduler — launches the four scans per (i, j).
	s0 := &stage.Stage{
		Kernel: stage.KernelFunc{
			KernelName: fmt.Sprintf("spmm.r%d.sched", r),
			Fn: func(c *stage.Ctx) stage.Status {
				if rep.pairsLeft(p) == 0 {
					return stage.Sleep
				}
				for _, d := range []*core.DRM{rep.drmACoord, rep.drmAVal, rep.drmBCoord, rep.drmBVal} {
					if d.In().Space() < 2 {
						return stage.NoOutput
					}
				}
				i := uint64(p.rows[rep.ri])
				j := uint64(p.cols[rep.cj])
				aLo := c.Load(p.aOffA + mem.Addr(i*mem.WordBytes))
				aHi := c.Load(p.aOffA + mem.Addr((i+1)*mem.WordBytes))
				bLo := c.Load(p.bOffA + mem.Addr(j*mem.WordBytes))
				bHi := c.Load(p.bOffA + mem.Addr((j+1)*mem.WordBytes))
				pushR := func(d *core.DRM, base mem.Addr, lo, hi uint64) {
					d.In().Enq(queue.Data(uint64(base) + lo*mem.WordBytes))
					d.In().Enq(queue.Data(uint64(base) + hi*mem.WordBytes))
				}
				pushR(rep.drmACoord, p.aColA, aLo, aHi)
				pushR(rep.drmAVal, p.aValA, aLo, aHi)
				pushR(rep.drmBCoord, p.bRowA, bLo, bHi)
				pushR(rep.drmBVal, p.bValA, bLo, bHi)
				rep.cj++
				if rep.cj == len(p.cols) {
					rep.cj = 0
					rep.ri++
				}
				return stage.Fired
			},
		},
		Mapping:   mustPlace(p.sys, schedDFG()),
		In:        nil,
		Out:       []stage.OutPort{rep.drmACoord.InPort(), rep.drmAVal.InPort(), rep.drmBCoord.InPort(), rep.drmBVal.InPort()},
		StateWork: func() int { return rep.pairsLeft(p) },
	}
	p.sys.PE(p.place.PEOf(r, 0)).AddStage(s0)

	// S1: merge-intersect.
	s1 := &stage.Stage{
		Kernel: stage.KernelFunc{
			KernelName: fmt.Sprintf("spmm.r%d.merge", r),
			Fn:         func(c *stage.Ctx) stage.Status { return p.mergeFire(rep, c) },
		},
		Mapping: mustPlace(p.sys, mergeDFG()),
		In:      []stage.InPort{rep.acQ.In(), rep.bcQ.In(), rep.avQ.In(), rep.bvQ.In()},
		Out:     []stage.OutPort{rep.mulQ.Out(0)},
	}
	p.sys.PE(p.place.PEOf(r, 1)).AddStage(s1)

	// S2: accumulate.
	p.sys.PE(p.place.PEOf(r, 2)).AddStage(p.accumulateStage(rep, 2))
}

// mergeFire advances the merge-intersection by one step: one list advance,
// one matched pair, or one boundary.
func (p *pipeline) mergeFire(rep *replica, c *stage.Ctx) stage.Status {
	at, aok := c.In[0].Peek()
	bt, bok := c.In[1].Peek()
	if !aok || !bok {
		return stage.NoInput
	}
	popA := func() {
		c.In[0].Pop()
		c.In[2].Pop()
	}
	popB := func() {
		c.In[1].Pop()
		c.In[3].Pop()
	}
	switch {
	case at.Ctrl && bt.Ctrl:
		// End of both lists: forward the element boundary downstream. The
		// value streams carry matching boundaries to stay aligned.
		if c.In[2].Len() < 1 || c.In[3].Len() < 1 {
			return stage.NoInput
		}
		if c.Out[0].Space() < 1 {
			return stage.NoOutput
		}
		popA()
		popB()
		c.Out[0].Push(queue.Ctrl(0))
		c.FiredCtrl = true
		return stage.Fired
	case at.Ctrl:
		// A exhausted: drain B (the "stop fetching unneeded data" redirect).
		if c.In[3].Len() < 1 {
			return stage.NoInput
		}
		popB()
		return stage.Fired
	case bt.Ctrl:
		if c.In[2].Len() < 1 {
			return stage.NoInput
		}
		popA()
		return stage.Fired
	case at.Value < bt.Value:
		if c.In[2].Len() < 1 {
			return stage.NoInput
		}
		popA()
		return stage.Fired
	case bt.Value < at.Value:
		if c.In[3].Len() < 1 {
			return stage.NoInput
		}
		popB()
		return stage.Fired
	default:
		// Coordinate match: forward the value pair.
		if c.In[2].Len() < 1 || c.In[3].Len() < 1 {
			return stage.NoInput
		}
		if c.Out[0].Space() < 2 {
			return stage.NoOutput
		}
		av, _ := c.In[2].Peek()
		bv, _ := c.In[3].Peek()
		popA()
		popB()
		c.Out[0].Push(queue.Data(av.Value))
		c.Out[0].Push(queue.Data(bv.Value))
		return stage.Fired
	}
}

func (p *pipeline) accumulateStage(rep *replica, stageIdx int) *stage.Stage {
	return &stage.Stage{
		Kernel: stage.KernelFunc{
			KernelName: fmt.Sprintf("spmm.r%d.accumulate", rep.id),
			Fn: func(c *stage.Ctx) stage.Status {
				t, ok := c.In[0].Peek()
				if !ok {
					return stage.NoInput
				}
				if t.Ctrl {
					c.In[0].Pop()
					c.Store(rep.outA+mem.Addr(rep.outIdx*mem.WordBytes), floatBits(rep.acc))
					rep.outIdx++
					rep.acc = 0
					c.FiredCtrl = true
					return stage.Fired
				}
				if c.In[0].Len() < 2 {
					return stage.NoInput
				}
				av, _ := c.In[0].Pop()
				bv, _ := c.In[0].Pop()
				rep.acc = math.FMA(math.Float64frombits(av.Value), math.Float64frombits(bv.Value), rep.acc)
				return stage.Fired
			},
		},
		Mapping: mustPlace(p.sys, accumulateDFG()),
		In:      []stage.InPort{rep.mulQ.In()},
	}
}

// addMerged attaches the one-stage merged variant (Sec. 8.4): a single PE
// carries out the entire multiplication for its share of rows with coupled
// loads — more data parallelism (16 replicas), no decoupling.
func (p *pipeline) addMerged(rep *replica) {
	s := &stage.Stage{
		Kernel: stage.KernelFunc{
			KernelName: fmt.Sprintf("spmm.r%d.merged", rep.id),
			Fn: func(c *stage.Ctx) stage.Status {
				if !rep.mPairActive {
					if rep.pairsLeft(p) == 0 {
						return stage.Sleep
					}
					i := uint64(p.rows[rep.ri])
					j := uint64(p.cols[rep.cj])
					rep.mAi = c.Load(p.aOffA + mem.Addr(i*mem.WordBytes))
					rep.mAEnd = c.Load(p.aOffA + mem.Addr((i+1)*mem.WordBytes))
					rep.mBi = c.Load(p.bOffA + mem.Addr(j*mem.WordBytes))
					rep.mBEnd = c.Load(p.bOffA + mem.Addr((j+1)*mem.WordBytes))
					rep.mPairActive = true
					rep.acc = 0
					return stage.Fired
				}
				if rep.mAi >= rep.mAEnd || rep.mBi >= rep.mBEnd {
					c.Store(rep.outA+mem.Addr(rep.outIdx*mem.WordBytes), floatBits(rep.acc))
					rep.outIdx++
					rep.mPairActive = false
					rep.cj++
					if rep.cj == len(p.cols) {
						rep.cj = 0
						rep.ri++
					}
					return stage.Fired
				}
				ac := c.Load(p.aColA + mem.Addr(rep.mAi*mem.WordBytes))
				bc := c.Load(p.bRowA + mem.Addr(rep.mBi*mem.WordBytes))
				switch {
				case ac < bc:
					rep.mAi++
				case bc < ac:
					rep.mBi++
				default:
					av := c.Load(p.aValA + mem.Addr(rep.mAi*mem.WordBytes))
					bv := c.Load(p.bValA + mem.Addr(rep.mBi*mem.WordBytes))
					rep.acc = math.FMA(math.Float64frombits(av), math.Float64frombits(bv), rep.acc)
					rep.mAi++
					rep.mBi++
				}
				return stage.Fired
			},
		},
		Mapping: mustPlace(p.sys, mergedDFG()),
		StateWork: func() int {
			n := rep.pairsLeft(p)
			if rep.mPairActive {
				n++
			}
			return n
		},
	}
	p.sys.PE(p.place.PEOf(rep.id, 0)).AddStage(s)
}

func mustPlace(sys *core.System, g *cgra.DFG) *cgra.Mapping {
	m, err := cgra.Place(g, sys.Cfg.Fabric, sys.Cfg.SIMDReplication)
	if err != nil {
		panic(err)
	}
	return m
}
