package spmm

import (
	"fmt"
	"math"

	"fifer/internal/apps"
	"fifer/internal/core"
	"fifer/internal/mem"
	"fifer/internal/ooo"
	"fifer/internal/sparse"
)

func backingFor(a *sparse.CSR, rows, cols []int) int {
	words := 2*(a.NumRows+1) + 4*a.NNZ() + len(rows)*len(cols) + 8192
	return words*mem.WordBytes*2 + (1 << 20)
}

func runApp(kind apps.SystemKind, a *sparse.CSR, b *sparse.CSC, rows, cols []int, scale int, merged bool, override func(*core.Config)) (apps.Outcome, error) {
	out := apps.Outcome{Kind: kind}
	want := sparse.SpMM(a, b, rows, cols)
	var got [][]float64
	switch kind {
	case apps.SerialOOO, apps.MulticoreOOO:
		cores := 1
		if kind == apps.MulticoreOOO {
			cores = 4
		}
		m := apps.NewOOOMachine(cores, backingFor(a, rows, cols), scale)
		got = runOOO(m, a, b, rows, cols)
		out.Cycles = m.Cycles()
		out.Counts = apps.CollectOOOCounts(m)
		apps.FillOOO(&out, m)
	case apps.StaticPipe, apps.FiferPipe:
		cfg := core.DefaultConfig()
		if kind == apps.StaticPipe {
			cfg = core.StaticConfig()
		}
		cfg.BackingBytes = backingFor(a, rows, cols)
		apps.ScaleLLC(&cfg, scale)
		if override != nil {
			override(&cfg)
		}
		sys, err := core.NewSystemChecked(cfg)
		if err != nil {
			return out, fmt.Errorf("%v spmm: %w", kind, err)
		}
		p := build(sys, a, b, rows, cols, merged)
		res, err := sys.Run(core.ProgramFunc(func(*core.System) bool { return false }))
		if err != nil {
			return out, fmt.Errorf("%v spmm: %w", kind, err)
		}
		if err := sys.CheckInvariants(); err != nil {
			return out, fmt.Errorf("%v spmm invariants: %w", kind, err)
		}
		out.Cycles = res.Cycles
		out.Pipe = res
		out.Counts = apps.CollectPipeCounts(sys, res)
		got = p.extract()
	default:
		return out, fmt.Errorf("unknown system kind %v", kind)
	}
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				return out, fmt.Errorf("%v spmm: C[%d][%d] = %g, want %g", kind, i, j, got[i][j], want[i][j])
			}
		}
	}
	out.Verified = true
	return out, nil
}

// extract reads the computed output blocks back out of simulated memory,
// reassembled in (sampled row, sampled col) order.
func (p *pipeline) extract() [][]float64 {
	out := make([][]float64, len(p.rows))
	for i := range out {
		out[i] = make([]float64, len(p.cols))
	}
	for _, rep := range p.reps {
		idx := 0
		for i := rep.rLo; i < rep.rHi; i++ {
			for j := range p.cols {
				out[i][j] = math.Float64frombits(p.sys.Backing.Load(rep.outA + mem.Addr(idx*mem.WordBytes)))
				idx++
			}
		}
	}
	return out
}

// runOOO executes the reference inner-product SpMM through the OOO model,
// chunking sampled rows across cores.
func runOOO(m *ooo.Machine, a *sparse.CSR, b *sparse.CSC, rows, cols []int) [][]float64 {
	bs := m.Backing
	aOffA := bs.AllocSlice(a.RowOffsets)
	aColA := bs.AllocSlice(a.ColIdx)
	aValA := bs.AllocSlice(bitsOf(a.Values))
	bOffA := bs.AllocSlice(b.ColOffsets)
	bRowA := bs.AllocSlice(b.RowIdx)
	bValA := bs.AllocSlice(bitsOf(b.Values))
	outA := bs.AllocWords(len(rows) * len(cols))

	out := make([][]float64, len(rows))
	for i := range out {
		out[i] = make([]float64, len(cols))
	}
	k := len(m.Cores)
	per := (len(rows) + k - 1) / k
	for ci, c := range m.Cores {
		lo, hi := ci*per, (ci+1)*per
		if lo > len(rows) {
			lo = len(rows)
		}
		if hi > len(rows) {
			hi = len(rows)
		}
		for ri := lo; ri < hi; ri++ {
			i := rows[ri]
			c.Load(aOffA+mem.Addr(uint64(i)*mem.WordBytes), 0)
			c.Load(aOffA+mem.Addr(uint64(i+1)*mem.WordBytes), 0)
			for cj, j := range cols {
				c.Load(bOffA+mem.Addr(uint64(j)*mem.WordBytes), 0)
				c.Load(bOffA+mem.Addr(uint64(j+1)*mem.WordBytes), 0)
				ai, aEnd := a.RowOffsets[i], a.RowOffsets[i+1]
				bi, bEnd := b.ColOffsets[j], b.ColOffsets[j+1]
				sum := 0.0
				for ai < aEnd && bi < bEnd {
					depA := c.Load(aColA+mem.Addr(ai*mem.WordBytes), 0)
					depB := c.Load(bRowA+mem.Addr(bi*mem.WordBytes), 0)
					ac, bc := a.ColIdx[ai], b.RowIdx[bi]
					c.Op(2) // compares
					dep := depA
					if depB > dep {
						dep = depB
					}
					c.Branch(20, ac == bc, dep)
					switch {
					case ac < bc:
						ai++
					case bc < ac:
						bi++
					default:
						c.Load(aValA+mem.Addr(ai*mem.WordBytes), depA)
						c.Load(bValA+mem.Addr(bi*mem.WordBytes), depB)
						c.Op(1) // FMA
						sum = math.FMA(a.Values[ai], b.Values[bi], sum)
						ai++
						bi++
					}
				}
				out[ri][cj] = sum
				c.StoreValue(outA+mem.Addr(uint64(ri*len(cols)+cj)*mem.WordBytes), math.Float64bits(sum))
			}
		}
	}
	m.Barrier()
	return out
}
