package spmm

import (
	"testing"

	"fifer/internal/apps"
	"fifer/internal/core"
	"fifer/internal/sparse"
)

func small(cfg *core.Config) {
	cfg.PEs = 6
	cfg.Hier.Clients = 6
	cfg.MaxCycles = 100_000_000
}

func TestSpMMAllSystemsMatchReference(t *testing.T) {
	a := sparse.Generate(sparse.GE, 0, 3)
	b := sparse.Transpose(a)
	rows, cols := sampleFor(a, 0)
	for _, kind := range apps.Kinds {
		out, err := runApp(kind, a, b, rows[:16], cols[:16], 2, false, small)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if !out.Verified || out.Cycles == 0 {
			t.Fatalf("%v: unverified or zero cycles", kind)
		}
	}
}

func TestSpMMMergedMatchesReference(t *testing.T) {
	a := sparse.Generate(sparse.FS, 0, 5)
	b := sparse.Transpose(a)
	rows, cols := sampleFor(a, 0)
	for _, kind := range []apps.SystemKind{apps.StaticPipe, apps.FiferPipe} {
		out, err := runApp(kind, a, b, rows[:16], cols[:16], 2, true, small)
		if err != nil {
			t.Fatalf("%v merged: %v", kind, err)
		}
		if !out.Verified {
			t.Fatalf("%v merged: unverified", kind)
		}
	}
}
