package apps

import (
	"fifer/internal/core"
	"fifer/internal/queue"
	"fifer/internal/stage"
)

// QueuePlan sizes and allocates an application's queues. Each queue lives in
// its consumer PE's queue memory; a PE's SRAM budget is divided among the
// queues it hosts in proportion to their weights. This reproduces the
// paper's property that the baseline and Fifer have the same queue buffer
// per PE, so Fifer — hosting a whole pipeline per PE — gets less effective
// space per queue (Sec. 5.3), while the static pipeline's one-stage PEs get
// fewer, larger queues.
type QueuePlan struct {
	sys  *core.System
	reqs []*QueueRef
}

// QueueRef is one planned queue. After Build, In is the consumer-side port
// and Out(i) the i-th producer's port.
type QueueRef struct {
	Name      string
	Consumer  int
	Weight    int
	Producers []int // producer PE ids; empty means purely local (consumer PE)

	q   *queue.Queue
	arb *queue.Arbiter
}

// NewQueuePlan starts a plan over sys.
func NewQueuePlan(sys *core.System) *QueuePlan {
	return &QueuePlan{sys: sys}
}

// Request registers a queue hosted on consumerPE. producers lists the PE of
// each producer endpoint (one port per entry); an empty list means the queue
// is written only by same-PE stages (or DRMs) without credit flow control.
func (qp *QueuePlan) Request(consumerPE int, name string, weight int, producers []int) *QueueRef {
	if weight <= 0 {
		weight = 1
	}
	r := &QueueRef{Name: name, Consumer: consumerPE, Weight: weight, Producers: producers}
	qp.reqs = append(qp.reqs, r)
	return r
}

// Build allocates every requested queue out of its host PE's SRAM.
func (qp *QueuePlan) Build() {
	weightByPE := make(map[int]int)
	for _, r := range qp.reqs {
		weightByPE[r.Consumer] += r.Weight
	}
	for _, r := range qp.reqs {
		pe := qp.sys.PE(r.Consumer)
		budgetTokens := qp.sys.Cfg.QueueMemBytes / queue.TokenBytes
		tokens := budgetTokens * r.Weight / weightByPE[r.Consumer]
		if tokens < 4 {
			tokens = 4
		}
		needsCredits := false
		for _, p := range r.Producers {
			if p != r.Consumer {
				needsCredits = true
			}
		}
		if needsCredits {
			if tokens < 2*len(r.Producers) {
				tokens = 2 * len(r.Producers) // at least two credits per producer
			}
			r.arb = qp.sys.InterPEQueue(r.Consumer, r.Name, tokens, len(r.Producers))
		} else {
			r.q = pe.AllocQueue(r.Name, tokens)
		}
	}
}

// In returns the consumer-side port.
func (r *QueueRef) In() stage.InPort {
	if r.arb != nil {
		return stage.ArbiterPort{A: r.arb}
	}
	return stage.LocalPort{Q: r.q}
}

// Out returns producer i's port (i indexes the Producers slice). For purely
// local queues, any index returns the direct port.
func (r *QueueRef) Out(i int) stage.OutPort {
	if r.arb != nil {
		return stage.CreditOut{P: r.arb.Port(i)}
	}
	return stage.LocalPort{Q: r.q}
}

// Local returns the direct local port (for Program seeding and DRM outputs
// feeding a same-PE queue).
func (r *QueueRef) Local() stage.OutPort {
	if r.arb != nil {
		return stage.LocalPort{Q: r.arb.Queue()}
	}
	return stage.LocalPort{Q: r.q}
}

// Queue exposes the underlying queue (stats, invariant checks).
func (r *QueueRef) Queue() *queue.Queue {
	if r.arb != nil {
		return r.arb.Queue()
	}
	return r.q
}
