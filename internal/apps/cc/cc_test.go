package cc

import (
	"testing"

	"fifer/internal/apps"
	"fifer/internal/graph"
)

func TestCCAllSystemsVerified(t *testing.T) {
	for _, kind := range apps.Kinds {
		out, err := Run(kind, graph.Hu, graph.ScaleTiny, 1, false, nil)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if !out.Verified || out.Cycles == 0 {
			t.Fatalf("%v: unverified", kind)
		}
	}
}

func TestCCMergedVerified(t *testing.T) {
	out, err := Run(apps.FiferPipe, graph.Ci, graph.ScaleTiny, 2, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Verified {
		t.Fatal("merged CC unverified")
	}
}

func TestCCManyComponentsStillTerminates(t *testing.T) {
	// The internet-topology generator leaves many isolated vertices, so CC
	// exercises the seed-scan path heavily.
	out, err := Run(apps.FiferPipe, graph.In, graph.ScaleTiny, 3, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.Pipe.Rounds == 0 {
		t.Fatal("expected multiple control-core rounds")
	}
}
