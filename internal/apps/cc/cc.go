// Package cc is the connected-components benchmark (Sec. 7.2): successive
// breadth-first searches label every vertex with its component's smallest
// vertex id.
package cc

import (
	"fifer/internal/apps"
	"fifer/internal/apps/graphpipe"
	"fifer/internal/core"
	"fifer/internal/graph"
)

// Name is the benchmark's reporting name.
const Name = "CC"

// Run executes CC on the chosen system and input.
func Run(kind apps.SystemKind, input graph.Input, scale graph.Scale, seed uint64, merged bool, override func(*core.Config)) (apps.Outcome, error) {
	g := graph.Generate(input, scale, seed)
	return graphpipe.RunApp(kind, graphpipe.ModeCC, g, nil, int(scale), merged, override)
}
