package apps

import (
	"testing"
	"testing/quick"

	"fifer/internal/core"
)

func TestOwnerPartition(t *testing.T) {
	// Every element gets exactly one owner; ranges tile [0, n).
	f := func(nSeed, rSeed uint16) bool {
		n := int(nSeed%5000) + 1
		r := int(rSeed%17) + 1
		counts := make([]int, r)
		for v := 0; v < n; v++ {
			o := Owner(v, n, r)
			if o < 0 || o >= r {
				return false
			}
			lo, hi := OwnedRange(o, n, r)
			if v < lo || v >= hi {
				return false
			}
			counts[o]++
		}
		total := 0
		for s := 0; s < r; s++ {
			lo, hi := OwnedRange(s, n, r)
			if hi < lo {
				return false
			}
			if counts[s] != hi-lo {
				return false
			}
			total += hi - lo
		}
		return total == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPlaceFor(t *testing.T) {
	fifer := core.DefaultConfig()
	p := PlaceFor(fifer, 4)
	if p.Replicas != 16 {
		t.Fatalf("fifer replicas = %d, want 16", p.Replicas)
	}
	for r := 0; r < p.Replicas; r++ {
		for s := 0; s < 4; s++ {
			if p.PEOf(r, s) != r {
				t.Fatal("fifer placement must keep a replica on one PE")
			}
		}
	}
	static := core.StaticConfig()
	ps := PlaceFor(static, 4)
	if ps.Replicas != 4 {
		t.Fatalf("static replicas = %d, want 4", ps.Replicas)
	}
	seen := map[int]bool{}
	for r := 0; r < ps.Replicas; r++ {
		for s := 0; s < 4; s++ {
			pe := ps.PEOf(r, s)
			if seen[pe] {
				t.Fatalf("static placement reuses pe%d", pe)
			}
			seen[pe] = true
		}
	}
}

func TestQueuePlanBudgetsPerPE(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.PEs = 2
	cfg.Hier.Clients = 2
	cfg.BackingBytes = 1 << 20
	sys := core.NewSystem(cfg)
	qp := NewQueuePlan(sys)
	a := qp.Request(0, "a", 1, nil)
	bq := qp.Request(0, "b", 3, nil)
	c := qp.Request(1, "c", 1, []int{0})
	qp.Build()
	// PE 0's 16 KB (2048 tokens) split 1:3.
	if a.Queue().Cap() != 512 || bq.Queue().Cap() != 1536 {
		t.Fatalf("split = %d/%d, want 512/1536", a.Queue().Cap(), bq.Queue().Cap())
	}
	// PE 1 hosts only c: full budget, credited (cross-PE producer).
	if c.Queue().Cap() != 2048 {
		t.Fatalf("c cap = %d, want 2048", c.Queue().Cap())
	}
	if c.Out(0).Space() != 2048 {
		t.Fatal("credited producer should start with full credits")
	}
}

func TestSystemKindStrings(t *testing.T) {
	want := map[SystemKind]string{
		SerialOOO: "serial-ooo", MulticoreOOO: "4-core-ooo",
		StaticPipe: "static-16pe", FiferPipe: "fifer-16pe",
	}
	for k, s := range want {
		if k.String() != s {
			t.Fatalf("%d -> %q", k, k.String())
		}
	}
}
