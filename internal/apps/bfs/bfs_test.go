package bfs

import (
	"testing"

	"fifer/internal/apps"
	"fifer/internal/core"
	"fifer/internal/graph"
)

func TestBFSAllSystemsVerified(t *testing.T) {
	cycles := map[apps.SystemKind]uint64{}
	for _, kind := range apps.Kinds {
		out, err := Run(kind, graph.Hu, graph.ScaleTiny, 1, false, nil)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if !out.Verified {
			t.Fatalf("%v: not verified", kind)
		}
		cycles[kind] = out.Cycles
	}
	// The paper's ordering on collaboration graphs: Fifer < static < 4-core
	// < serial.
	if !(cycles[apps.FiferPipe] < cycles[apps.StaticPipe] &&
		cycles[apps.StaticPipe] < cycles[apps.MulticoreOOO] &&
		cycles[apps.MulticoreOOO] < cycles[apps.SerialOOO]) {
		t.Fatalf("ordering broken: %v", cycles)
	}
}

func TestBFSDeterministic(t *testing.T) {
	a, err := Run(apps.FiferPipe, graph.In, graph.ScaleTiny, 5, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(apps.FiferPipe, graph.In, graph.ScaleTiny, 5, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles || a.Pipe.Reconfigs != b.Pipe.Reconfigs {
		t.Fatalf("nondeterministic simulation: %d/%d vs %d/%d cycles/reconfigs",
			a.Cycles, a.Pipe.Reconfigs, b.Cycles, b.Pipe.Reconfigs)
	}
}

func TestBFSQueueScalingMonotoneEnough(t *testing.T) {
	// Metamorphic check behind Fig. 16: shrinking queue memory to a quarter
	// must not make BFS faster by more than noise, and should usually slow
	// it down.
	base, err := Run(apps.FiferPipe, graph.Hu, graph.ScaleTiny, 1, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	quarter, err := Run(apps.FiferPipe, graph.Hu, graph.ScaleTiny, 1, false, func(cfg *core.Config) {
		*cfg = cfg.WithQueueScale(0.25)
	})
	if err != nil {
		t.Fatal(err)
	}
	if float64(quarter.Cycles) < 0.95*float64(base.Cycles) {
		t.Fatalf("quarter queues substantially faster (%d vs %d)", quarter.Cycles, base.Cycles)
	}
}
