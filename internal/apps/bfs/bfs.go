// Package bfs is the breadth-first-search benchmark (Sec. 2.2, Fig. 1):
// single-source shortest hop distances over the Table 3 input graphs.
package bfs

import (
	"fifer/internal/apps"
	"fifer/internal/apps/graphpipe"
	"fifer/internal/core"
	"fifer/internal/graph"
)

// Name is the benchmark's reporting name.
const Name = "BFS"

// Run executes BFS on the chosen system and input.
func Run(kind apps.SystemKind, input graph.Input, scale graph.Scale, seed uint64, merged bool, override func(*core.Config)) (apps.Outcome, error) {
	g := graph.Generate(input, scale, seed)
	src := graphpipe.DefaultSource(g)
	return graphpipe.RunApp(kind, graphpipe.ModeBFS, g, []int{src}, int(scale), merged, override)
}
