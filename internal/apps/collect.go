package apps

import (
	"fifer/internal/core"
	"fifer/internal/energy"
	"fifer/internal/ooo"
)

// CollectPipeCounts gathers the energy-model event counts from a completed
// CGRA-system run.
func CollectPipeCounts(sys *core.System, res core.Result) energy.Counts {
	c := energy.Counts{
		Cycles:   res.Cycles,
		PEs:      sys.Cfg.PEs,
		LLCBytes: sys.Cfg.Hier.LLCBytes,
	}
	for _, pe := range sys.PEs {
		for _, st := range pe.Stages() {
			if st.Mapping != nil {
				ops := uint64(st.Mapping.DFG.OpCount() - st.Mapping.DFG.FMACount())
				c.FabricOps += st.Firings * ops
				c.FMAOps += st.Firings * uint64(st.Mapping.DFG.FMACount())
			} else {
				c.FabricOps += st.Firings * 8
			}
		}
		for _, q := range pe.QMem.Queues() {
			c.QueueTokens += q.Enqueued + q.Dequeued
		}
		for _, d := range pe.DRMs {
			c.DRMAccesses += d.Accesses
			c.QueueTokens += d.In().Enqueued + d.In().Dequeued
		}
		c.ConfigBytes += pe.Reconfigs * uint64(sys.Cfg.Fabric.FullConfigBytes())
	}
	for _, l1 := range sys.Hier.L1s {
		c.L1Accesses += l1.Accesses
	}
	c.LLCAccesses = sys.Hier.LLC.Accesses
	c.MemLines = sys.Hier.Mem.LinesXfer
	return c
}

// LLCDivisor returns the factor by which both systems' last-level caches
// are shrunk at a given workload scale. The paper's inputs are 20-60x
// larger than our synthetic stand-ins; with a full-size LLC the scaled
// inputs would fit in cache and the OOO baselines would see none of the
// misses that dominate the paper's irregular workloads. Shrinking the LLC
// proportionally preserves the working-set-to-cache ratio (DESIGN.md §5).
func LLCDivisor(scale int) int {
	switch scale {
	case 0:
		return 16
	case 1:
		return 8
	default:
		return 1
	}
}

// ScaleLLC applies LLCDivisor to a CGRA system configuration.
func ScaleLLC(cfg *core.Config, scale int) {
	cfg.Hier.LLCBytes /= LLCDivisor(scale)
}

// NewOOOMachine builds an OOO machine whose LLC is scaled consistently with
// the CGRA systems at this workload scale.
func NewOOOMachine(cores, backingBytes, scale int) *ooo.Machine {
	m := ooo.NewMachineLLCDiv(cores, backingBytes, LLCDivisor(scale))
	return m
}

// FillOOO populates an outcome's OOO-specific fields from a finished run.
func FillOOO(out *Outcome, m *ooo.Machine) {
	total := m.Cycles()
	for _, c := range m.Cores {
		out.OOOIssued += c.IssuedCycles()
		out.OOOIdle += total - c.Cycle()
	}
}

// CollectOOOCounts gathers energy-model event counts from an OOO machine.
func CollectOOOCounts(m *ooo.Machine) energy.Counts {
	c := energy.Counts{
		Cycles:   m.Cycles(),
		Cores:    len(m.Cores),
		LLCBytes: m.Hier.Config.LLCBytes,
	}
	for _, core := range m.Cores {
		c.Instrs += core.Instrs
	}
	for _, l1 := range m.Hier.L1s {
		c.L1Accesses += l1.Accesses
	}
	for _, l2 := range m.Hier.L2s {
		c.L2Accesses += l2.Accesses
	}
	c.LLCAccesses = m.Hier.LLC.Accesses
	c.MemLines = m.Hier.Mem.LinesXfer
	return c
}
