package prd

import (
	"fmt"

	"fifer/internal/apps"
	"fifer/internal/core"
	"fifer/internal/graph"
	"fifer/internal/mem"
)

func backingFor(g *graph.Graph) int {
	n, m := g.NumVertices(), g.NumEdges()
	words := 8*n + m + 4096
	return words*mem.WordBytes*2 + (1 << 20)
}

func runApp(kind apps.SystemKind, g *graph.Graph, cfg graph.PRDConfig, scale int, merged bool, override func(*core.Config)) (apps.Outcome, error) {
	out := apps.Outcome{Kind: kind}
	want := graph.PRD(g, cfg)
	var got []uint64
	switch kind {
	case apps.SerialOOO, apps.MulticoreOOO:
		cores := 1
		if kind == apps.MulticoreOOO {
			cores = 4
		}
		m := apps.NewOOOMachine(cores, backingFor(g), scale)
		got = runOOO(m, g, cfg)
		out.Cycles = m.Cycles()
		out.Counts = apps.CollectOOOCounts(m)
		apps.FillOOO(&out, m)
	case apps.StaticPipe, apps.FiferPipe:
		ccfg := core.DefaultConfig()
		if kind == apps.StaticPipe {
			ccfg = core.StaticConfig()
		}
		ccfg.BackingBytes = backingFor(g)
		if override != nil {
			override(&ccfg)
		}
		sys, err := core.NewSystemChecked(ccfg)
		if err != nil {
			return out, fmt.Errorf("%v prd: %w", kind, err)
		}
		p := build(sys, g, cfg, merged)
		res, err := p.run()
		if err != nil {
			return out, fmt.Errorf("%v prd: %w", kind, err)
		}
		if err := sys.CheckInvariants(); err != nil {
			return out, fmt.Errorf("%v prd invariants: %w", kind, err)
		}
		out.Cycles = res.Cycles
		out.Pipe = res
		out.Counts = apps.CollectPipeCounts(sys, res)
		got = p.ranks()
	default:
		return out, fmt.Errorf("unknown system kind %v", kind)
	}
	for v := range want {
		if got[v] != want[v] {
			return out, fmt.Errorf("%v prd: vertex %d rank %d, want %d", kind, v, got[v], want[v])
		}
	}
	out.Verified = true
	return out, nil
}
