// Package prd is the PageRank-Delta benchmark (Sec. 7.2): an extension of
// PageRank that only revisits vertices whose rank change exceeds a
// threshold. Each iteration is two pipeline phases — a scatter phase that
// pushes damped delta shares along out-edges, and an apply phase that folds
// accumulated deltas into ranks and builds the next active list. All
// arithmetic is Q32.32 fixed-point so the pipeline's accumulation order
// cannot change results (see internal/graph).
package prd

import (
	"fifer/internal/apps"
	"fifer/internal/core"
	"fifer/internal/graph"
)

// Name is the benchmark's reporting name.
const Name = "PRD"

// Run executes PageRank-Delta on the chosen system and input.
func Run(kind apps.SystemKind, input graph.Input, scale graph.Scale, seed uint64, merged bool, override func(*core.Config)) (apps.Outcome, error) {
	g := graph.Generate(input, scale, seed)
	cfg := graph.DefaultPRD()
	return runApp(kind, g, cfg, int(scale), merged, override)
}
