package prd

import (
	"fmt"

	"fifer/internal/cgra"
	"fifer/internal/core"
	"fifer/internal/mem"
	"fifer/internal/queue"
)

// Round control: the control core alternates the scatter and apply phases,
// ending after MaxIters iterations or when no vertex remains active —
// exactly the reference algorithm's loop structure.

func (p *pipeline) start() {
	p.phase = 1
	p.iter = 0
	b := p.sys.Backing
	for _, rep := range p.reps {
		cnt := 0
		for v := rep.lo; v < rep.hi; v++ {
			b.Store(rep.curActive+mem.Addr(cnt*mem.WordBytes), uint64(v))
			cnt++
		}
		rep.activeCnt = cnt
		if cnt > 0 {
			pushRange(rep.drmActive, rep.curActive, cnt)
		}
	}
}

func pushRange(d *core.DRM, base mem.Addr, words int) {
	in := d.In()
	if !in.Enq(queue.Data(uint64(base))) || !in.Enq(queue.Data(uint64(base)+uint64(words*mem.WordBytes))) {
		panic(fmt.Sprintf("drm %s: input overflow", d.Name()))
	}
}

// Quiesced implements core.Program.
func (p *pipeline) Quiesced(sys *core.System) bool {
	if p.phase == 1 {
		// Scatter finished; stream the apply pass over every owned vertex.
		p.phase = 2
		for _, rep := range p.reps {
			rep.vCur = rep.lo
			if rep.hi > rep.lo {
				pushRange(rep.drmApply, p.nextDeltaA+mem.Addr(rep.lo*mem.WordBytes), rep.hi-rep.lo)
			}
		}
		return true
	}
	// Apply finished: next iteration if anything stayed active.
	p.iter++
	total := 0
	for _, rep := range p.reps {
		total += rep.nextCnt
	}
	if p.iter >= p.cfg.MaxIters || total == 0 {
		return false
	}
	p.phase = 1
	for _, rep := range p.reps {
		rep.curActive, rep.nxtActive = rep.nxtActive, rep.curActive
		rep.activeCnt = rep.nextCnt
		rep.nextCnt = 0
		if rep.activeCnt > 0 {
			pushRange(rep.drmActive, rep.curActive, rep.activeCnt)
		}
	}
	return true
}

func (p *pipeline) run() (core.Result, error) {
	p.start()
	return p.sys.Run(p)
}

// ranks copies the Q32.32 rank array out of simulated memory.
func (p *pipeline) ranks() []uint64 {
	out := make([]uint64, p.g.NumVertices())
	for v := range out {
		out[v] = p.sys.Backing.Load(p.rankA + mem.Addr(v*mem.WordBytes))
	}
	return out
}

// --- Stage dataflow graphs -------------------------------------------------

func procActiveDFG() *cgra.DFG {
	g := cgra.NewDFG("prd-proc-active")
	v := g.Deq(0)
	base := g.Const(0)
	one := g.Const(1)
	a0 := g.Add(cgra.OpLEA, 3, base, v)
	v1 := g.Add(cgra.OpAdd, 0, v, one)
	a1 := g.Add(cgra.OpLEA, 3, base, v1)
	g.Enq(0, a0)
	g.Enq(0, a1)
	g.Enq(1, v)
	return g
}

func computeShareDFG() *cgra.DFG {
	g := cgra.NewDFG("prd-compute-share")
	s := g.Deq(0)
	e := g.Deq(0)
	v := g.Deq(1)
	deg := g.Add(cgra.OpSub, 0, e, s)
	db := g.Const(0)
	da := g.Add(cgra.OpLEA, 3, db, v)
	delta := g.Add(cgra.OpLoad, 0, da) // coupled delta load
	damp := g.Const(0)
	num := g.Add(cgra.OpMul, 0, damp, delta)
	share := g.Add(cgra.OpDiv, 0, num, deg)
	nb := g.Const(0)
	r0 := g.Add(cgra.OpLEA, 3, nb, s)
	r1 := g.Add(cgra.OpLEA, 3, nb, e)
	g.Enq(0, r0)
	g.Enq(0, r1)
	g.Enq(1, share)
	return g
}

func scatterDFG() *cgra.DFG {
	g := cgra.NewDFG("prd-scatter")
	u := g.Deq(0)
	share := g.Deq(1) // register-held between boundaries
	g.Enq(0, u)
	g.Enq(0, share)
	return g
}

func accumulateDFG() *cgra.DFG {
	g := cgra.NewDFG("prd-accumulate")
	u := g.Deq(0)
	share := g.Deq(0)
	base := g.Const(0)
	a := g.Add(cgra.OpLEA, 3, base, u)
	old := g.Add(cgra.OpLoad, 0, a)
	sum := g.Add(cgra.OpAdd, 0, old, share)
	g.Add(cgra.OpStore, 0, a, sum)
	return g
}

func applyDFG() *cgra.DFG {
	g := cgra.NewDFG("prd-apply")
	d := g.Deq(0)
	vc := g.Const(0) // vertex counter register
	rb := g.Const(0)
	ra := g.Add(cgra.OpLEA, 3, rb, vc)
	old := g.Add(cgra.OpLoad, 0, ra)
	rank := g.Add(cgra.OpAdd, 0, old, d)
	g.Add(cgra.OpStore, 0, ra, rank)
	deltab := g.Const(0)
	da := g.Add(cgra.OpLEA, 3, deltab, vc)
	g.Add(cgra.OpStore, 0, da, d)
	ndb := g.Const(0)
	na := g.Add(cgra.OpLEA, 3, ndb, vc)
	zero := g.Const(0)
	g.Add(cgra.OpStore, 0, na, zero)
	eps := g.Const(0)
	thr := g.Add(cgra.OpMul, 0, eps, rank)
	act := g.Add(cgra.OpCmpLT, 0, thr, d)
	ab := g.Const(0)
	aa := g.Add(cgra.OpLEA, 3, ab, act)
	g.Add(cgra.OpStore, 0, aa, vc)
	return g
}

func mergedScatterDFG() *cgra.DFG {
	g := cgra.NewDFG("prd-merged-scatter")
	v := g.Deq(0)
	ob := g.Const(0)
	oa0 := g.Add(cgra.OpLEA, 3, ob, v)
	one := g.Const(1)
	v1 := g.Add(cgra.OpAdd, 0, v, one)
	oa1 := g.Add(cgra.OpLEA, 3, ob, v1)
	s := g.Add(cgra.OpLoad, 0, oa0)
	e := g.Add(cgra.OpLoad, 0, oa1)
	deg := g.Add(cgra.OpSub, 0, e, s)
	db := g.Const(0)
	da := g.Add(cgra.OpLEA, 3, db, v)
	delta := g.Add(cgra.OpLoad, 0, da)
	damp := g.Const(0)
	num := g.Add(cgra.OpMul, 0, damp, delta)
	share := g.Add(cgra.OpDiv, 0, num, deg)
	nb := g.Const(0)
	na := g.Add(cgra.OpLEA, 3, nb, s)
	u := g.Add(cgra.OpLoad, 0, na)
	g.Enq(0, u)
	g.Enq(0, share)
	return g
}
