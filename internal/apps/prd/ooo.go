package prd

import (
	"fifer/internal/graph"
	"fifer/internal/mem"
	"fifer/internal/ooo"
)

// runOOO executes the reference PageRank-Delta through the OOO core model,
// chunking the active list (scatter) and the vertex range (apply) across
// cores with a barrier between phases. It returns the computed Q32.32 ranks.
func runOOO(m *ooo.Machine, g *graph.Graph, cfg graph.PRDConfig) []uint64 {
	n := g.NumVertices()
	b := m.Backing
	offsetsA := b.AllocSlice(g.Offsets)
	neighborsA := b.AllocSlice(g.Neighbors)
	rankA := b.AllocWords(n)
	deltaA := b.AllocWords(n)
	nextDeltaA := b.AllocWords(n)
	activeA := b.AllocWords(n)

	rank := make([]uint64, n)
	delta := make([]uint64, n)
	nextDelta := make([]uint64, n)
	base := (graph.FixOne - cfg.Damping) / uint64(n)
	active := make([]uint64, 0, n)
	for v := 0; v < n; v++ {
		rank[v] = base
		delta[v] = base
		active = append(active, uint64(v))
	}

	chunk := func(k, i, n int) (int, int) {
		per := (n + k - 1) / k
		lo, hi := i*per, (i+1)*per
		if lo > n {
			lo = n
		}
		if hi > n {
			hi = n
		}
		return lo, hi
	}

	for iter := 0; iter < cfg.MaxIters && len(active) > 0; iter++ {
		// Scatter phase.
		for i, c := range m.Cores {
			lo, hi := chunk(len(m.Cores), i, len(active))
			for _, v := range active[lo:hi] {
				depD := c.Load(deltaA+mem.Addr(v*mem.WordBytes), 0)
				c.Load(offsetsA+mem.Addr(v*mem.WordBytes), 0)
				c.Load(offsetsA+mem.Addr((v+1)*mem.WordBytes), 0)
				deg := uint64(g.Degree(int(v)))
				c.Op(3) // mul, div, loop setup
				if deg == 0 {
					continue
				}
				share := graph.FixMul(cfg.Damping, delta[v]) / deg
				start, end := g.Offsets[v], g.Offsets[v+1]
				for e := start; e < end; e++ {
					depN := c.Load(neighborsA+mem.Addr(e*mem.WordBytes), depD)
					u := g.Neighbors[e]
					c.Load(nextDeltaA+mem.Addr(u*mem.WordBytes), depN)
					c.Store(nextDeltaA + mem.Addr(u*mem.WordBytes))
					c.Op(2) // add + induction
					nextDelta[u] += share
				}
			}
		}
		m.Barrier()
		// Apply phase: each core handles an ascending, disjoint vertex
		// chunk and builds its own active sublist; concatenating them in
		// core order keeps the global list ascending, like the reference.
		perCore := make([][]uint64, len(m.Cores))
		for i, c := range m.Cores {
			lo, hi := chunk(len(m.Cores), i, n)
			for v := lo; v < hi; v++ {
				depD := c.Load(nextDeltaA+mem.Addr(uint64(v)*mem.WordBytes), 0)
				d := nextDelta[v]
				c.Branch(10, d != 0, depD)
				if d == 0 {
					continue
				}
				c.Load(rankA+mem.Addr(uint64(v)*mem.WordBytes), 0)
				rank[v] += d
				delta[v] = d
				nextDelta[v] = 0
				c.Store(rankA + mem.Addr(uint64(v)*mem.WordBytes))
				c.Store(deltaA + mem.Addr(uint64(v)*mem.WordBytes))
				c.Store(nextDeltaA + mem.Addr(uint64(v)*mem.WordBytes))
				c.Op(2) // threshold mul + compare
				isActive := d > graph.FixMul(cfg.Epsilon, rank[v])
				c.Branch(11, isActive, depD)
				if isActive {
					c.Store(activeA + mem.Addr(uint64(v)*mem.WordBytes))
					perCore[i] = append(perCore[i], uint64(v))
				}
			}
		}
		m.Barrier()
		active = active[:0]
		for _, sub := range perCore {
			active = append(active, sub...)
		}
	}
	// Write final ranks into simulated memory for uniform extraction.
	for v := 0; v < n; v++ {
		b.Store(rankA+mem.Addr(uint64(v)*mem.WordBytes), rank[v])
	}
	out := make([]uint64, n)
	copy(out, rank)
	return out
}
