package prd

import (
	"fmt"

	"fifer/internal/apps"
	"fifer/internal/cgra"
	"fifer/internal/core"
	"fifer/internal/graph"
	"fifer/internal/mem"
	"fifer/internal/queue"
	"fifer/internal/stage"
)

// The PRD pipeline (four stages per replica, matching the structure the
// paper uses for its graph benchmarks). Scatter phase (per active vertex v):
//
//	P1 proc-active: dual-phase stage — the issue side pushes v's offsets
//	                addresses to the offsets DRM and remembers v; the
//	                compute side pairs fetched (start,end) with v, computes
//	                share = damping·delta[v]/deg (coupled delta load), and
//	                launches the neighbor scan with the share alongside
//	P2 scatter:     pair each streamed neighbor u with its range's share
//	                (ranges are delimited by boundary control tokens) and
//	                route (u, share) to u's owner replica
//	P3 accumulate:  nextDelta[u] += share (on the owner)
//
// Apply phase (per owned vertex, streamed by the apply scan DRM):
//
//	P4 apply: rank += d, delta = d, nextDelta = 0, build next active list
//
// The merged variant (Sec. 8.4) collapses P1–P2 into one stage with coupled
// loads.
type pipeline struct {
	sys    *core.System
	g      *graph.Graph
	cfg    graph.PRDConfig
	merged bool
	place  apps.Placement

	offsetsA   mem.Addr
	neighborsA mem.Addr
	rankA      mem.Addr
	deltaA     mem.Addr
	nextDeltaA mem.Addr

	reps  []*replica
	phase int // 1 = scatter, 2 = apply
	iter  int
}

type replica struct {
	id        int
	lo, hi    int // owned vertex range
	curActive mem.Addr
	nxtActive mem.Addr
	activeCnt int // entries in curActive
	nextCnt   int // entries appended to nxtActive by the apply stage

	drmActive *core.DRM
	drmOff    *core.DRM
	drmNgh    *core.DRM
	drmApply  *core.DRM

	activeQ *apps.QueueRef
	pendQ   *apps.QueueRef // v's awaiting their offsets (P1-internal)
	offQ    *apps.QueueRef
	shareQ  *apps.QueueRef
	nghQ    *apps.QueueRef
	accQ    *apps.QueueRef
	applyQ  *apps.QueueRef

	accOut []stage.OutPort

	// P2 registers.
	haveShare bool
	curShare  uint64
	// P4 register.
	vCur int
	// merged-variant registers.
	scanActive bool
	scanE      uint64
	scanEnd    uint64
}

func (p *pipeline) stages() int {
	if p.merged {
		return 3
	}
	return 4
}

func build(sys *core.System, g *graph.Graph, cfg graph.PRDConfig, merged bool) *pipeline {
	p := &pipeline{sys: sys, g: g, cfg: cfg, merged: merged}
	p.place = apps.PlaceFor(sys.Cfg, p.stages())
	b := sys.Backing
	n := g.NumVertices()

	p.offsetsA = b.AllocSlice(g.Offsets)
	p.neighborsA = b.AllocSlice(g.Neighbors)
	base := (graph.FixOne - cfg.Damping) / uint64(n)
	init := make([]uint64, n)
	for i := range init {
		init[i] = base
	}
	p.rankA = b.AllocSlice(init)
	p.deltaA = b.AllocSlice(init)
	p.nextDeltaA = b.AllocSlice(make([]uint64, n))

	R := p.place.Replicas
	routeIdx := 1 // P2 routes
	if merged {
		routeIdx = 0
	}
	producers := make([]int, R)
	for r := 0; r < R; r++ {
		producers[r] = p.place.PEOf(r, routeIdx)
	}

	qp := apps.NewQueuePlan(sys)
	for r := 0; r < R; r++ {
		rep := &replica{id: r}
		rep.lo, rep.hi = apps.OwnedRange(r, n, R)
		owned := rep.hi - rep.lo
		if owned < 1 {
			owned = 1
		}
		rep.curActive = b.AllocWords(owned)
		rep.nxtActive = b.AllocWords(owned)

		pe := func(s int) int { return p.place.PEOf(r, s) }
		if merged {
			rep.drmActive = sys.PE(pe(0)).DRM(0)
			rep.drmApply = sys.PE(pe(2)).DRM(3)
			rep.activeQ = qp.Request(pe(0), fmt.Sprintf("r%d.active", r), 1, nil)
			rep.accQ = qp.Request(pe(1), fmt.Sprintf("r%d.acc", r), 2, producers)
			rep.applyQ = qp.Request(pe(2), fmt.Sprintf("r%d.apply", r), 1, nil)
		} else {
			rep.drmActive = sys.PE(pe(0)).DRM(0)
			rep.drmOff = sys.PE(pe(0)).DRM(1)
			rep.drmNgh = sys.PE(pe(0)).DRM(2)
			rep.drmApply = sys.PE(pe(3)).DRM(3)
			rep.activeQ = qp.Request(pe(0), fmt.Sprintf("r%d.active", r), 1, nil)
			rep.pendQ = qp.Request(pe(0), fmt.Sprintf("r%d.pend", r), 1, nil)
			rep.offQ = qp.Request(pe(0), fmt.Sprintf("r%d.off", r), 1, nil)
			rep.shareQ = qp.Request(pe(1), fmt.Sprintf("r%d.share", r), 1, crossProducers(pe(0), pe(1)))
			rep.nghQ = qp.Request(pe(1), fmt.Sprintf("r%d.ngh", r), 2, crossProducers(pe(0), pe(1)))
			rep.accQ = qp.Request(pe(2), fmt.Sprintf("r%d.acc", r), 2, producers)
			rep.applyQ = qp.Request(pe(3), fmt.Sprintf("r%d.apply", r), 1, nil)
		}
		p.reps = append(p.reps, rep)
	}
	qp.Build()

	for r := 0; r < R; r++ {
		rep := p.reps[r]
		rep.accOut = make([]stage.OutPort, R)
		for d := range p.reps {
			rep.accOut[d] = p.reps[d].accQ.Out(r)
		}
		rep.drmActive.Configure(core.DRMScan, rep.activeQ.Local())
		rep.drmApply.Configure(core.DRMScan, rep.applyQ.Local())
		if merged {
			p.addMerged(rep)
		} else {
			pe0 := p.place.PEOf(r, 0)
			rep.drmOff.Configure(core.DRMDereference, rep.offQ.Local())
			rep.drmNgh.Configure(core.DRMScan, drmOut(rep.nghQ, pe0))
			rep.drmNgh.SetBoundary(true)
			p.addFull(rep)
		}
	}
	return p
}

func crossProducers(prodPE, consPE int) []int {
	if prodPE == consPE {
		return nil
	}
	return []int{prodPE}
}

func drmOut(q *apps.QueueRef, drmPE int) stage.OutPort {
	if q.Consumer == drmPE {
		return q.Local()
	}
	return q.Out(0)
}

func (p *pipeline) owner(v uint64) int {
	return apps.Owner(int(v), p.g.NumVertices(), p.place.Replicas)
}

func (p *pipeline) addFull(rep *replica) {
	r := rep.id
	pe := func(s int) int { return p.place.PEOf(r, s) }

	// P1: process the active list — issue offsets fetches, then compute
	// shares and launch neighbor scans as the offsets come back.
	p.sys.PE(pe(0)).AddStage(&stage.Stage{
		Kernel: stage.KernelFunc{
			KernelName: fmt.Sprintf("prd.r%d.proc-active", r),
			Fn: func(c *stage.Ctx) stage.Status {
				// Compute side first: it drains the deeper queues.
				if c.In[1].Len() >= 2 && c.In[2].Len() >= 1 {
					if rep.drmNgh.In().Space() < 2 || c.Out[1].Space() < 1 {
						return stage.NoOutput
					}
					s, _ := c.In[1].Pop()
					e, _ := c.In[1].Pop()
					vt, _ := c.In[2].Pop()
					deg := e.Value - s.Value
					if deg == 0 {
						return stage.Fired
					}
					delta := c.Load(p.deltaA + mem.Addr(vt.Value*mem.WordBytes))
					share := graph.FixMul(p.cfg.Damping, delta) / deg
					rep.drmNgh.In().Enq(queue.Data(uint64(p.neighborsA) + s.Value*mem.WordBytes))
					rep.drmNgh.In().Enq(queue.Data(uint64(p.neighborsA) + e.Value*mem.WordBytes))
					c.Out[1].Push(queue.Data(share))
					return stage.Fired
				}
				// Issue side.
				if c.In[0].Len() >= 1 {
					if c.Out[0].Space() < 2 || rep.pendQ.Queue().Space() < 1 {
						return stage.NoOutput
					}
					t, _ := c.In[0].Pop()
					v := t.Value
					c.Out[0].Push(queue.Data(uint64(p.offsetsA) + v*mem.WordBytes))
					c.Out[0].Push(queue.Data(uint64(p.offsetsA) + (v+1)*mem.WordBytes))
					rep.pendQ.Local().Push(queue.Data(v))
					return stage.Fired
				}
				return stage.NoInput
			},
		},
		Mapping: mustPlace(p.sys, procActiveDFG()),
		In:      []stage.InPort{rep.activeQ.In(), rep.offQ.In(), rep.pendQ.In()},
		Out:     []stage.OutPort{rep.drmOff.InPort(), rep.shareQ.Out(0)},
	})

	// P2: pair neighbors with shares, route to owners.
	p.sys.PE(pe(1)).AddStage(&stage.Stage{
		Kernel: stage.KernelFunc{
			KernelName: fmt.Sprintf("prd.r%d.scatter", r),
			Fn: func(c *stage.Ctx) stage.Status {
				if !rep.haveShare {
					t, ok := c.In[1].Peek()
					if !ok {
						return stage.NoInput
					}
					c.In[1].Pop()
					rep.curShare = t.Value
					rep.haveShare = true
					return stage.Fired
				}
				t, ok := c.In[0].Peek()
				if !ok {
					return stage.NoInput
				}
				if t.Ctrl {
					c.In[0].Pop()
					rep.haveShare = false
					c.FiredCtrl = true
					return stage.Fired
				}
				dst := rep.accOut[p.owner(t.Value)]
				if dst.Space() < 2 {
					return stage.NoOutput
				}
				c.In[0].Pop()
				dst.Push(queue.Data(t.Value))
				dst.Push(queue.Data(rep.curShare))
				return stage.Fired
			},
		},
		Mapping: mustPlace(p.sys, scatterDFG()),
		In:      []stage.InPort{rep.nghQ.In(), rep.shareQ.In()},
		Out:     rep.accOut,
		StateWork: func() int {
			if rep.haveShare {
				return 1
			}
			return 0
		},
	})

	// P3: accumulate deltas on the owner.
	p.sys.PE(pe(2)).AddStage(p.accumulateStage(rep))

	// P4: apply phase.
	p.sys.PE(pe(3)).AddStage(p.applyStage(rep))
}

func (p *pipeline) accumulateStage(rep *replica) *stage.Stage {
	return &stage.Stage{
		Kernel: stage.KernelFunc{
			KernelName: fmt.Sprintf("prd.r%d.accumulate", rep.id),
			Fn: func(c *stage.Ctx) stage.Status {
				if c.In[0].Len() < 2 {
					return stage.NoInput
				}
				u, _ := c.In[0].Pop()
				sh, _ := c.In[0].Pop()
				a := p.nextDeltaA + mem.Addr(u.Value*mem.WordBytes)
				c.Store(a, c.Load(a)+sh.Value)
				return stage.Fired
			},
		},
		Mapping: mustPlace(p.sys, accumulateDFG()),
		In:      []stage.InPort{rep.accQ.In()},
	}
}

func (p *pipeline) applyStage(rep *replica) *stage.Stage {
	return &stage.Stage{
		Kernel: stage.KernelFunc{
			KernelName: fmt.Sprintf("prd.r%d.apply", rep.id),
			Fn: func(c *stage.Ctx) stage.Status {
				t, ok := c.In[0].Peek()
				if !ok {
					return stage.NoInput
				}
				c.In[0].Pop()
				v := uint64(rep.vCur)
				rep.vCur++
				d := t.Value
				if d == 0 {
					return stage.Fired
				}
				ra := p.rankA + mem.Addr(v*mem.WordBytes)
				rank := c.Load(ra) + d
				c.Store(ra, rank)
				c.Store(p.deltaA+mem.Addr(v*mem.WordBytes), d)
				c.Store(p.nextDeltaA+mem.Addr(v*mem.WordBytes), 0)
				if d > graph.FixMul(p.cfg.Epsilon, rank) {
					c.Store(rep.nxtActive+mem.Addr(rep.nextCnt*mem.WordBytes), v)
					rep.nextCnt++
				}
				return stage.Fired
			},
		},
		Mapping: mustPlace(p.sys, applyDFG()),
		In:      []stage.InPort{rep.applyQ.In()},
	}
}

// addMerged attaches the three-stage merged variant: P1–P2 collapse into
// one source-centric stage with coupled offsets/delta/neighbors loads.
func (p *pipeline) addMerged(rep *replica) {
	r := rep.id
	p.sys.PE(p.place.PEOf(r, 0)).AddStage(&stage.Stage{
		Kernel: stage.KernelFunc{
			KernelName: fmt.Sprintf("prd.r%d.merged-scatter", r),
			Fn: func(c *stage.Ctx) stage.Status {
				if rep.scanActive {
					u := c.Load(p.neighborsA + mem.Addr(rep.scanE*mem.WordBytes))
					dst := rep.accOut[p.owner(u)]
					if dst.Space() < 2 {
						return stage.NoOutput
					}
					dst.Push(queue.Data(u))
					dst.Push(queue.Data(rep.curShare))
					rep.scanE++
					if rep.scanE >= rep.scanEnd {
						rep.scanActive = false
					}
					return stage.Fired
				}
				t, ok := c.In[0].Peek()
				if !ok {
					return stage.NoInput
				}
				c.In[0].Pop()
				v := t.Value
				start := c.Load(p.offsetsA + mem.Addr(v*mem.WordBytes))
				end := c.Load(p.offsetsA + mem.Addr((v+1)*mem.WordBytes))
				if end > start {
					delta := c.Load(p.deltaA + mem.Addr(v*mem.WordBytes))
					rep.curShare = graph.FixMul(p.cfg.Damping, delta) / (end - start)
					rep.scanActive, rep.scanE, rep.scanEnd = true, start, end
				}
				return stage.Fired
			},
		},
		Mapping: mustPlace(p.sys, mergedScatterDFG()),
		In:      []stage.InPort{rep.activeQ.In()},
		Out:     rep.accOut,
		StateWork: func() int {
			if rep.scanActive {
				return int(rep.scanEnd - rep.scanE)
			}
			return 0
		},
	})
	p.sys.PE(p.place.PEOf(r, 1)).AddStage(p.accumulateStage(rep))
	p.sys.PE(p.place.PEOf(r, 2)).AddStage(p.applyStage(rep))
}

func mustPlace(sys *core.System, g *cgra.DFG) *cgra.Mapping {
	m, err := cgra.Place(g, sys.Cfg.Fabric, sys.Cfg.SIMDReplication)
	if err != nil {
		panic(err)
	}
	return m
}
