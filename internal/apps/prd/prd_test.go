package prd

import (
	"testing"

	"fifer/internal/apps"
	"fifer/internal/core"
	"fifer/internal/graph"
	"fifer/internal/sim"
)

func testGraph() *graph.Graph {
	return graph.RMAT("t", 400, 1200, 0.5, sim.NewRand(9))
}

func small(cfg *core.Config) {
	cfg.PEs = 5
	cfg.Hier.Clients = 5
	cfg.MaxCycles = 100_000_000
}

func smallMerged(cfg *core.Config) {
	cfg.PEs = 6
	cfg.Hier.Clients = 6
	cfg.MaxCycles = 100_000_000
}

func TestPRDAllSystemsMatchReference(t *testing.T) {
	g := testGraph()
	cfg := graph.DefaultPRD()
	for _, kind := range apps.Kinds {
		ov := small
		out, err := runApp(kind, g, cfg, 2, false, ov)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if !out.Verified || out.Cycles == 0 {
			t.Fatalf("%v: unverified or zero cycles", kind)
		}
	}
}

func TestPRDMergedMatchesReference(t *testing.T) {
	g := testGraph()
	cfg := graph.DefaultPRD()
	for _, kind := range []apps.SystemKind{apps.StaticPipe, apps.FiferPipe} {
		out, err := runApp(kind, g, cfg, 2, true, smallMerged)
		if err != nil {
			t.Fatalf("%v merged: %v", kind, err)
		}
		if !out.Verified {
			t.Fatalf("%v merged: unverified", kind)
		}
	}
}
