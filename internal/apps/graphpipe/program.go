package graphpipe

import (
	"fmt"

	"fifer/internal/core"
	"fifer/internal/graph"
	"fifer/internal/mem"
	"fifer/internal/queue"
)

// Round control: the control core's role (Sec. 7.1). Rounds are level-
// synchronous — the system quiesces between BFS levels — and the control
// core seeds the next round by swapping fringes and pushing the new scan
// ranges into each replica's fringe DRM.

// seed places vertex v into its owner's current fringe with initial label
// init, and starts the scan.
func (p *Pipeline) seed(v int, init uint64) {
	b := p.Sys.Backing
	b.Store(p.labelAddr(uint64(v)), init)
	rep := p.reps[p.ownerOf(uint64(v))]
	b.Store(rep.curFringe, uint64(v))
	p.pushScan(rep, rep.curFringe, 1)
}

// pushScan hands a fringe range to the replica's scanning DRM.
func (p *Pipeline) pushScan(rep *replica, base mem.Addr, count int) {
	in := rep.drmFringe.In()
	if !in.Enq(queue.Data(uint64(base))) || !in.Enq(queue.Data(uint64(base)+uint64(count*mem.WordBytes))) {
		panic(fmt.Sprintf("replica %d: fringe DRM input overflow", rep.id))
	}
}

// startFirstSearch seeds the initial work before Run.
func (p *Pipeline) startFirstSearch() {
	p.started = true
	switch p.Opts.Mode {
	case ModeBFS, ModeRadii:
		if len(p.Opts.Sources) == 0 {
			panic("graphpipe: no sources")
		}
		p.srcIdx = 0
		p.seed(p.Opts.Sources[0], 0)
		p.curLabel = 1
	case ModeCC:
		p.srcIdx = 0
		if !p.nextComponent() {
			panic("graphpipe: empty graph for CC")
		}
	}
}

// Quiesced implements core.Program: called whenever all queues drain and
// all PEs go idle. It advances to the next BFS level, the next search, or
// reports completion.
func (p *Pipeline) Quiesced(sys *core.System) bool {
	any := false
	for _, rep := range p.reps {
		if rep.nextCnt > 0 {
			any = true
			break
		}
	}
	if any {
		if p.Opts.Mode != ModeCC {
			p.curLabel++ // next BFS level
		}
		for _, rep := range p.reps {
			rep.curFringe, rep.nextFringe = rep.nextFringe, rep.curFringe
			if rep.nextCnt > 0 {
				p.pushScan(rep, rep.curFringe, rep.nextCnt)
			}
			rep.nextCnt = 0
		}
		return true
	}
	// Current search exhausted.
	switch p.Opts.Mode {
	case ModeBFS:
		return false
	case ModeRadii:
		p.srcIdx++
		if p.srcIdx >= len(p.Opts.Sources) {
			return false
		}
		// Reset per-search distances (the control core reuses the label
		// array across searches; radii persist in their own array).
		b := p.Sys.Backing
		for v := 0; v < p.G.NumVertices(); v++ {
			b.Store(p.labelAddr(uint64(v)), graph.Unset)
		}
		p.seed(p.Opts.Sources[p.srcIdx], 0)
		p.curLabel = 1
		return true
	case ModeCC:
		return p.nextComponent()
	}
	return false
}

// nextComponent finds the next unvisited seed for CC; zero-degree vertices
// are labeled directly by the control core (they are their own components
// and need no traversal). It returns false when every vertex is labeled.
func (p *Pipeline) nextComponent() bool {
	b := p.Sys.Backing
	for ; p.srcIdx < p.G.NumVertices(); p.srcIdx++ {
		v := p.srcIdx
		if b.Load(p.labelAddr(uint64(v))) != graph.Unset {
			continue
		}
		if p.G.Degree(v) == 0 {
			b.Store(p.labelAddr(uint64(v)), uint64(v))
			continue
		}
		p.curLabel = uint64(v)
		p.seed(v, uint64(v))
		p.srcIdx++
		return true
	}
	return false
}

// Run seeds the first search and drives the system to completion.
func (p *Pipeline) Run() (core.Result, error) {
	p.startFirstSearch()
	return p.Sys.Run(p)
}

// Labels copies the label array (distances or component ids) out of
// simulated memory.
func (p *Pipeline) Labels() []uint64 {
	out := make([]uint64, p.G.NumVertices())
	for v := range out {
		out[v] = p.Sys.Backing.Load(p.labelAddr(uint64(v)))
	}
	return out
}

// Radii copies the radii array out of simulated memory (ModeRadii only).
func (p *Pipeline) Radii() []uint64 {
	out := make([]uint64, p.G.NumVertices())
	for v := range out {
		out[v] = p.Sys.Backing.Load(p.radiiA + mem.Addr(v*mem.WordBytes))
	}
	return out
}
