// Package graphpipe implements the pipeline-parallel graph-traversal engine
// shared by the BFS, CC, and Radii benchmarks: the four-stage decoupled
// pipeline of Fig. 2(a)/Fig. 10 (process current fringe → enumerate
// neighbors → fetch distances → update data & next fringe), replicated
// across PEs with vertex sharding, plus the merged two-stage variant of
// Sec. 8.4. The three benchmarks differ only in what the update stage
// writes and in how rounds are seeded, which Mode selects.
package graphpipe

import (
	"fmt"

	"fifer/internal/apps"
	"fifer/internal/core"
	"fifer/internal/graph"
	"fifer/internal/mem"
	"fifer/internal/stage"
)

// Mode selects the benchmark semantics layered on the traversal engine.
type Mode int

const (
	// ModeBFS: label = distance from a single source.
	ModeBFS Mode = iota
	// ModeCC: label = component id; successive searches from ascending
	// unvisited seeds.
	ModeCC
	// ModeRadii: repeated BFS from sampled sources; the update stage also
	// maintains radii[v] = max distance seen.
	ModeRadii
)

func (m Mode) String() string {
	switch m {
	case ModeBFS:
		return "bfs"
	case ModeCC:
		return "cc"
	case ModeRadii:
		return "radii"
	}
	return "?"
}

// Options configures a pipeline build.
type Options struct {
	Mode    Mode
	Merged  bool  // two-stage merged variant (Sec. 8.4) instead of four-stage
	Sources []int // BFS: one source; Radii: the sampled sources; CC: ignored
}

// Stages returns the per-replica stage count of the chosen variant.
func (o Options) Stages() int {
	if o.Merged {
		return 2
	}
	return 4
}

// Pipeline is a built graph application ready to Run on a core.System.
type Pipeline struct {
	Sys  *core.System
	G    *graph.Graph
	Opts Options

	place apps.Placement

	// Simulated-memory layout.
	offsetsA   mem.Addr
	neighborsA mem.Addr
	labelA     mem.Addr
	radiiA     mem.Addr

	reps []*replica

	// Round state (control-core registers).
	curLabel uint64 // current distance (BFS/Radii) or component id (CC)
	srcIdx   int    // next source (BFS/Radii) or next seed scan cursor (CC)
	started  bool
}

type replica struct {
	id         int
	curFringe  mem.Addr
	nextFringe mem.Addr
	fringeCap  int
	nextCnt    int // S4's next-fringe count register

	drmFringe *core.DRM // scan mode over the current fringe
	drmOff    *core.DRM // dereference offsets
	drmNgh    *core.DRM // dereference neighbors
	drmDist   *core.DRM // dereference labels (distances)

	fringeQ *apps.QueueRef // drmFringe out → S1
	offQ    *apps.QueueRef // drmOff out → S2
	nghQ    *apps.QueueRef // drmNgh out → S3
	pairQ   *apps.QueueRef // S3-internal pending neighbor ids
	distQ   *apps.QueueRef // drmDist out → S3
	updQ    *apps.QueueRef // routed neighbor ids → S4 (one producer port per replica)

	updOut []stage.OutPort // S3's ports into every replica's updQ

	// S2 edge-enumeration registers.
	scanActive bool
	scanE      uint64
	scanEnd    uint64
}

// label address of vertex v.
func (p *Pipeline) labelAddr(v uint64) mem.Addr {
	return p.labelA + mem.Addr(v*mem.WordBytes)
}

// Build lays out g in sys's memory and constructs the per-replica stages.
func Build(sys *core.System, g *graph.Graph, opts Options) *Pipeline {
	p := &Pipeline{Sys: sys, G: g, Opts: opts, place: apps.PlaceFor(sys.Cfg, opts.Stages())}
	b := sys.Backing

	// Graph and label arrays live in simulated memory.
	p.offsetsA = b.AllocSlice(g.Offsets)
	p.neighborsA = b.AllocSlice(g.Neighbors)
	n := g.NumVertices()
	labels := make([]uint64, n)
	for i := range labels {
		labels[i] = graph.Unset
	}
	p.labelA = b.AllocSlice(labels)
	if opts.Mode == ModeRadii {
		p.radiiA = b.AllocSlice(make([]uint64, n))
	}

	qp := apps.NewQueuePlan(sys)
	R := p.place.Replicas
	producersS3 := make([]int, R) // PE of stage carrying S3's routing for each replica
	for r := 0; r < R; r++ {
		routeStage := 2 // S3 routes in the 4-stage pipeline
		if opts.Merged {
			routeStage = 0 // Sa routes in the merged pipeline
		}
		producersS3[r] = p.place.PEOf(r, routeStage)
	}

	for r := 0; r < R; r++ {
		rep := &replica{id: r}
		// Interleaved sharding: replica r owns vertices v with v%R == r.
		rep.fringeCap = (n + R - 1) / R
		if rep.fringeCap < 1 {
			rep.fringeCap = 1
		}
		rep.curFringe = b.AllocWords(rep.fringeCap)
		rep.nextFringe = b.AllocWords(rep.fringeCap)

		if opts.Merged {
			pe0 := p.place.PEOf(r, 0)
			pe1 := p.place.PEOf(r, 1)
			rep.drmFringe = sys.PE(pe0).DRM(0)
			rep.fringeQ = qp.Request(pe0, fmt.Sprintf("r%d.fringe", r), 2, nil)
			rep.updQ = qp.Request(pe1, fmt.Sprintf("r%d.upd", r), 2, producersS3)
		} else {
			pe0 := p.place.PEOf(r, 0)
			pe1 := p.place.PEOf(r, 1)
			pe2 := p.place.PEOf(r, 2)
			pe3 := p.place.PEOf(r, 3)
			rep.drmFringe = sys.PE(pe0).DRM(0)
			rep.drmOff = sys.PE(pe0).DRM(1)
			rep.drmNgh = sys.PE(pe1).DRM(2)
			rep.drmDist = sys.PE(pe2).DRM(3)
			rep.fringeQ = qp.Request(pe0, fmt.Sprintf("r%d.fringe", r), 1, nil)
			rep.offQ = qp.Request(pe1, fmt.Sprintf("r%d.off", r), 1, offQProducers(pe0, pe1))
			rep.nghQ = qp.Request(pe2, fmt.Sprintf("r%d.ngh", r), 2, offQProducers(pe1, pe2))
			rep.pairQ = qp.Request(pe2, fmt.Sprintf("r%d.pair", r), 1, nil)
			rep.distQ = qp.Request(pe2, fmt.Sprintf("r%d.dist", r), 1, nil)
			rep.updQ = qp.Request(pe3, fmt.Sprintf("r%d.upd", r), 2, producersS3)
		}
		p.reps = append(p.reps, rep)
	}
	qp.Build()

	// Wire DRMs and stages now that queues exist.
	for r := 0; r < R; r++ {
		rep := p.reps[r]
		rep.drmFringe.Configure(core.DRMScan, rep.fringeQ.Local())
		if opts.Merged {
			rep.updOut = updPorts(p, rep)
			p.addMergedStages(rep)
		} else {
			rep.drmOff.Configure(core.DRMDereference, drmOut(rep.offQ, p.place.PEOf(r, 0)))
			rep.drmNgh.Configure(core.DRMDereference, drmOut(rep.nghQ, p.place.PEOf(r, 1)))
			rep.drmDist.Configure(core.DRMDereference, rep.distQ.Local())
			rep.updOut = updPorts(p, rep)
			p.addFullStages(rep)
		}
	}
	return p
}

// offQProducers returns the producer list for a DRM-fed queue: the DRM's PE
// if it differs from the consumer, else nil (local).
func offQProducers(drmPE, consumerPE int) []int {
	if drmPE == consumerPE {
		return nil
	}
	return []int{drmPE}
}

// drmOut returns a DRM's output port into q: local when the DRM sits on the
// consumer PE, credited otherwise (static pipelines cross PEs here).
func drmOut(q *apps.QueueRef, drmPE int) stage.OutPort {
	if q.Consumer == drmPE {
		return q.Local()
	}
	return q.Out(0) // single producer: the DRM's PE
}

// updPorts returns the routing stage's ports into every replica's update
// queue; port index within each arbiter is the sending replica's id.
func updPorts(p *Pipeline, rep *replica) []stage.OutPort {
	ports := make([]stage.OutPort, len(p.reps))
	for d, dst := range p.reps {
		ports[d] = dst.updQ.Out(rep.id)
	}
	return ports
}
