package graphpipe

import (
	"fmt"

	"fifer/internal/cgra"
	"fifer/internal/graph"
	"fifer/internal/mem"
	"fifer/internal/queue"
	"fifer/internal/stage"
)

// place maps a DFG onto the system's fabric, with SIMD replication.
func (p *Pipeline) place2(g *cgra.DFG) *cgra.Mapping {
	m, err := cgra.Place(g, p.Sys.Cfg.Fabric, p.Sys.Cfg.SIMDReplication)
	if err != nil {
		panic(err)
	}
	return m
}

// addFullStages attaches the fully decoupled four-stage pipeline (Fig. 2a)
// for replica rep.
func (p *Pipeline) addFullStages(rep *replica) {
	r := rep.id

	// --- S1: process current fringe --------------------------------------
	// Dequeues vertex ids produced by the fringe-scanning DRM and issues
	// the two offsets addresses to the offsets DRM.
	s1 := &stage.Stage{
		Kernel: stage.KernelFunc{
			KernelName: fmt.Sprintf("%s.r%d.proc-fringe", p.Opts.Mode, r),
			Fn: func(c *stage.Ctx) stage.Status {
				t, ok := c.In[0].Peek()
				if !ok {
					return stage.NoInput
				}
				if c.Out[0].Space() < 2 {
					return stage.NoOutput
				}
				c.In[0].Pop()
				v := t.Value
				c.Out[0].Push(queue.Data(uint64(p.offsetsA) + v*mem.WordBytes))
				c.Out[0].Push(queue.Data(uint64(p.offsetsA) + (v+1)*mem.WordBytes))
				return stage.Fired
			},
		},
		Mapping: p.place2(procFringeDFG()),
		In:      []stage.InPort{rep.fringeQ.In()},
		Out:     []stage.OutPort{rep.drmOff.InPort()},
	}
	p.Sys.PE(p.place.PEOf(r, 0)).AddStage(s1)

	// --- S2: enumerate neighbors ------------------------------------------
	// Consumes (start, end) pairs from the offsets DRM and streams one
	// neighbor-array address per datapath firing to the neighbors DRM
	// (Fig. 6 / Fig. 9 right).
	s2 := &stage.Stage{
		Kernel: stage.KernelFunc{
			KernelName: fmt.Sprintf("%s.r%d.enum-neighbors", p.Opts.Mode, r),
			Fn: func(c *stage.Ctx) stage.Status {
				if !rep.scanActive {
					if c.In[0].Len() < 2 {
						return stage.NoInput
					}
					s, _ := c.In[0].Pop()
					e, _ := c.In[0].Pop()
					if s.Value < e.Value {
						rep.scanActive, rep.scanE, rep.scanEnd = true, s.Value, e.Value
					}
					return stage.Fired
				}
				if c.Out[0].Space() < 1 {
					return stage.NoOutput
				}
				c.Out[0].Push(queue.Data(uint64(p.neighborsA) + rep.scanE*mem.WordBytes))
				rep.scanE++
				if rep.scanE >= rep.scanEnd {
					rep.scanActive = false
				}
				return stage.Fired
			},
		},
		Mapping: p.place2(enumNeighborsDFG()),
		In:      []stage.InPort{rep.offQ.In()},
		Out:     []stage.OutPort{rep.drmNgh.InPort()},
		StateWork: func() int {
			if rep.scanActive {
				return int(rep.scanEnd - rep.scanE)
			}
			return 0
		},
	}
	p.Sys.PE(p.place.PEOf(r, 1)).AddStage(s2)

	// --- S3: fetch distances & route ---------------------------------------
	// Issue side: for each neighbor id, send the label address to the label
	// DRM and remember the id. Route side: pair fetched labels with their
	// ids; unvisited neighbors are routed to the owner replica's update
	// queue, visited ones are filtered out (Fig. 10's cross-PE hop).
	s3 := &stage.Stage{
		Kernel: stage.KernelFunc{
			KernelName: fmt.Sprintf("%s.r%d.fetch-dist", p.Opts.Mode, r),
			Fn: func(c *stage.Ctx) stage.Status {
				// Route phase has priority: it drains the deepest queues.
				if c.In[1].Len() > 0 && c.In[2].Len() > 0 {
					ngh, _ := c.In[1].Peek()
					dist, _ := c.In[2].Peek()
					if dist.Value != graph.Unset {
						c.In[1].Pop()
						c.In[2].Pop()
						return stage.Fired // already visited: filtered
					}
					owner := p.ownerOf(ngh.Value)
					if rep.updOut[owner].Push(queue.Data(ngh.Value)) {
						c.In[1].Pop()
						c.In[2].Pop()
						return stage.Fired
					}
					// Out of credits to that destination; fall through and
					// try the issue side so the PE stays busy.
				}
				if c.In[0].Len() > 0 {
					if c.Out[0].Space() < 1 || rep.pairQ.Queue().Space() < 1 {
						return stage.NoOutput
					}
					t, _ := c.In[0].Pop()
					c.Out[0].Push(queue.Data(uint64(p.labelAddr(t.Value))))
					rep.pairQ.Local().Push(queue.Data(t.Value))
					return stage.Fired
				}
				if c.In[1].Len() > 0 && c.In[2].Len() > 0 {
					return stage.NoOutput // routing blocked on credits
				}
				return stage.NoInput
			},
		},
		Mapping: p.place2(fetchDistDFG()),
		In:      []stage.InPort{rep.nghQ.In(), rep.pairQ.In(), rep.distQ.In()},
		Out:     []stage.OutPort{rep.drmDist.InPort()},
	}
	p.Sys.PE(p.place.PEOf(r, 2)).AddStage(s3)

	// --- S4: update data & next fringe -------------------------------------
	p.addUpdateStage(rep, 3)
}

// addUpdateStage attaches the final stage shared by both variants: check
// the label (authoritatively, on the owner), write it, append to the next
// fringe, and for Radii also fold the distance into radii[v].
func (p *Pipeline) addUpdateStage(rep *replica, stageIdx int) {
	r := rep.id
	s4 := &stage.Stage{
		Kernel: stage.KernelFunc{
			KernelName: fmt.Sprintf("%s.r%d.update", p.Opts.Mode, r),
			Fn: func(c *stage.Ctx) stage.Status {
				t, ok := c.In[0].Peek()
				if !ok {
					return stage.NoInput
				}
				c.In[0].Pop()
				ngh := t.Value
				if cur := c.Load(p.labelAddr(ngh)); cur == graph.Unset {
					c.Store(p.labelAddr(ngh), p.curLabel)
					if rep.nextCnt >= rep.fringeCap {
						panic(fmt.Sprintf("replica %d: next fringe overflow", r))
					}
					c.Store(rep.nextFringe+mem.Addr(rep.nextCnt*mem.WordBytes), ngh)
					rep.nextCnt++
					if p.Opts.Mode == ModeRadii {
						ra := p.radiiA + mem.Addr(ngh*mem.WordBytes)
						if old := c.Load(ra); p.curLabel > old {
							c.Store(ra, p.curLabel)
						}
					}
				}
				return stage.Fired
			},
		},
		Mapping: p.place2(updateDFG(p.Opts.Mode)),
		In:      []stage.InPort{rep.updQ.In()},
		Out:     nil,
	}
	p.Sys.PE(p.place.PEOf(r, stageIdx)).AddStage(s4)
}

// addMergedStages attaches the merged two-stage variant (Sec. 8.4): the
// source-centric stages (fringe, offsets, neighbors) collapse into one
// stage whose offsets/neighbors loads are coupled — reintroducing stalls —
// while the pipeline still decouples across the most expensive indirection
// (the label fetch, folded into the owner-side update stage).
func (p *Pipeline) addMergedStages(rep *replica) {
	r := rep.id
	sa := &stage.Stage{
		Kernel: stage.KernelFunc{
			KernelName: fmt.Sprintf("%s.r%d.merged-src", p.Opts.Mode, r),
			Fn: func(c *stage.Ctx) stage.Status {
				if rep.scanActive {
					ngh := c.Load(p.neighborsA + mem.Addr(rep.scanE*mem.WordBytes))
					owner := p.ownerOf(ngh)
					if !rep.updOut[owner].Push(queue.Data(ngh)) {
						c.ExtraStall = 0 // load retries next attempt
						return stage.NoOutput
					}
					rep.scanE++
					if rep.scanE >= rep.scanEnd {
						rep.scanActive = false
					}
					return stage.Fired
				}
				t, ok := c.In[0].Peek()
				if !ok {
					return stage.NoInput
				}
				c.In[0].Pop()
				v := t.Value
				start := c.Load(p.offsetsA + mem.Addr(v*mem.WordBytes))
				end := c.Load(p.offsetsA + mem.Addr((v+1)*mem.WordBytes))
				if start < end {
					rep.scanActive, rep.scanE, rep.scanEnd = true, start, end
				}
				return stage.Fired
			},
		},
		Mapping: p.place2(mergedSrcDFG()),
		In:      []stage.InPort{rep.fringeQ.In()},
		Out:     rep.updOut,
		StateWork: func() int {
			if rep.scanActive {
				return int(rep.scanEnd - rep.scanE)
			}
			return 0
		},
	}
	p.Sys.PE(p.place.PEOf(r, 0)).AddStage(sa)
	p.addUpdateStage(rep, 1)
}

// ownerOf returns the replica owning vertex v. The traversal benchmarks
// shard by the low bits of the vertex id ("examining bits of the neighbor
// id", Sec. 5.6): BFS wavefronts are spatially clustered, so interleaved
// ownership spreads each level's work across all replicas where contiguous
// blocks would leave most PEs idle.
func (p *Pipeline) ownerOf(v uint64) int {
	return int(v) % p.place.Replicas
}

// --- Stage dataflow graphs ------------------------------------------------
//
// These DFGs drive the timing model: pipeline depth sets drain time, op
// count sets SIMD replication and fabric energy, and they are what the
// bitstream generator places on the 16×5 grid.

func procFringeDFG() *cgra.DFG {
	g := cgra.NewDFG("proc-fringe")
	v := g.Deq(0)
	base := g.Const(0) // offsets base (runtime constant register)
	one := g.Const(1)
	a0 := g.Add(cgra.OpLEA, 3, base, v) // &offsets[v]
	v1 := g.Add(cgra.OpAdd, 0, v, one)
	a1 := g.Add(cgra.OpLEA, 3, base, v1) // &offsets[v+1]
	g.Enq(0, a0)
	g.Enq(0, a1)
	return g
}

func enumNeighborsDFG() *cgra.DFG {
	g := cgra.NewDFG("enum-neighbors")
	s := g.Deq(0) // start (register-held when scanning)
	e := g.Deq(0) // end
	base := g.Const(0)
	one := g.Const(1)
	addr := g.Add(cgra.OpLEA, 3, base, s) // &neighbors[e]
	next := g.Add(cgra.OpAdd, 0, s, one)
	g.Add(cgra.OpCmpLT, 0, next, e) // loop-continue predicate
	g.Enq(0, addr)
	return g
}

func fetchDistDFG() *cgra.DFG {
	g := cgra.NewDFG("fetch-dist")
	ngh := g.Deq(0)
	base := g.Const(0)
	addr := g.Add(cgra.OpLEA, 3, base, ngh) // &labels[ngh]
	g.Enq(0, addr)                          // to label DRM
	g.Enq(1, ngh)                           // pending id
	dist := g.Deq(2)
	unset := g.Const(graph.Unset)
	isUnset := g.Add(cgra.OpCmpEQ, 0, dist, unset)
	pend := g.Deq(1)
	routed := g.Add(cgra.OpSelect, 0, isUnset, pend, unset)
	g.Enq(2, routed) // to owner's update queue
	return g
}

func updateDFG(m Mode) *cgra.DFG {
	g := cgra.NewDFG("update")
	ngh := g.Deq(0)
	base := g.Const(0)
	la := g.Add(cgra.OpLEA, 3, base, ngh)
	cur := g.Add(cgra.OpLoad, 0, la)
	unset := g.Const(graph.Unset)
	isUnset := g.Add(cgra.OpCmpEQ, 0, cur, unset)
	lbl := g.Const(0) // current label register
	val := g.Add(cgra.OpSelect, 0, isUnset, lbl, cur)
	g.Add(cgra.OpStore, 0, la, val)
	fb := g.Const(0) // next-fringe base + count register
	fa := g.Add(cgra.OpLEA, 3, fb, isUnset)
	g.Add(cgra.OpStore, 0, fa, ngh)
	cnt := g.Const(0)
	g.Add(cgra.OpAdd, 0, cnt, isUnset)
	if m == ModeRadii {
		rb := g.Const(0)
		ra := g.Add(cgra.OpLEA, 3, rb, ngh)
		old := g.Add(cgra.OpLoad, 0, ra)
		gt := g.Add(cgra.OpCmpLT, 0, old, lbl)
		mx := g.Add(cgra.OpSelect, 0, gt, lbl, old)
		g.Add(cgra.OpStore, 0, ra, mx)
	}
	return g
}

func mergedSrcDFG() *cgra.DFG {
	g := cgra.NewDFG("merged-src")
	v := g.Deq(0)
	ob := g.Const(0)
	oa0 := g.Add(cgra.OpLEA, 3, ob, v)
	one := g.Const(1)
	v1 := g.Add(cgra.OpAdd, 0, v, one)
	oa1 := g.Add(cgra.OpLEA, 3, ob, v1)
	start := g.Add(cgra.OpLoad, 0, oa0) // coupled: stalls on miss
	end := g.Add(cgra.OpLoad, 0, oa1)
	nb := g.Const(0)
	na := g.Add(cgra.OpLEA, 3, nb, start)
	ngh := g.Add(cgra.OpLoad, 0, na) // coupled neighbor load
	g.Add(cgra.OpCmpLT, 0, start, end)
	g.Enq(0, ngh)
	return g
}
