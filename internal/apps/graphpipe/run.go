package graphpipe

import (
	"fmt"

	"fifer/internal/apps"
	"fifer/internal/core"
	"fifer/internal/graph"
	"fifer/internal/mem"
)

// backingFor sizes the simulated DRAM for a graph workload: CSR arrays,
// labels, radii, per-replica fringes, and configuration storage.
func backingFor(g *graph.Graph) int {
	n, m := g.NumVertices(), g.NumEdges()
	words := 6*n + m + 4096
	return words*mem.WordBytes*2 + (1 << 20)
}

// RunApp executes one graph benchmark on one system and verifies the result
// against the pure-Go reference.
func RunApp(kind apps.SystemKind, mode Mode, g *graph.Graph, sources []int, scale int, merged bool, override func(*core.Config)) (apps.Outcome, error) {
	out := apps.Outcome{Kind: kind}
	switch kind {
	case apps.SerialOOO, apps.MulticoreOOO:
		cores := 1
		if kind == apps.MulticoreOOO {
			cores = 4
		}
		m := apps.NewOOOMachine(cores, backingFor(g), scale)
		labels, radii := RunOOO(m, mode, g, sources)
		out.Cycles = m.Cycles()
		out.Counts = apps.CollectOOOCounts(m)
		apps.FillOOO(&out, m)
		ok, err := verify(mode, g, sources, labels, radii)
		if err != nil {
			return out, fmt.Errorf("%v %v: %w", kind, mode, err)
		}
		out.Verified = ok
		return out, nil
	case apps.StaticPipe, apps.FiferPipe:
		cfg := core.DefaultConfig()
		if kind == apps.StaticPipe {
			cfg = core.StaticConfig()
		}
		cfg.BackingBytes = backingFor(g)
		apps.ScaleLLC(&cfg, scale)
		if override != nil {
			override(&cfg)
		}
		sys, err := core.NewSystemChecked(cfg)
		if err != nil {
			return out, fmt.Errorf("%v %v: %w", kind, mode, err)
		}
		p := Build(sys, g, Options{Mode: mode, Merged: merged, Sources: sources})
		res, err := p.Run()
		if err != nil {
			return out, fmt.Errorf("%v %v: %w", kind, mode, err)
		}
		if err := sys.CheckInvariants(); err != nil {
			return out, fmt.Errorf("%v %v invariants: %w", kind, mode, err)
		}
		out.Cycles = res.Cycles
		out.Pipe = res
		out.Counts = apps.CollectPipeCounts(sys, res)
		var radii []uint64
		if mode == ModeRadii {
			radii = p.Radii()
		}
		ok, err := verify(mode, g, sources, p.Labels(), radii)
		if err != nil {
			return out, fmt.Errorf("%v %v: %w", kind, mode, err)
		}
		out.Verified = ok
		return out, nil
	}
	return out, fmt.Errorf("unknown system kind %v", kind)
}

// verify checks computed labels/radii against the reference algorithms.
func verify(mode Mode, g *graph.Graph, sources []int, labels, radii []uint64) (bool, error) {
	switch mode {
	case ModeBFS:
		want := graph.BFS(g, sources[0])
		return compare("distance", labels, want)
	case ModeCC:
		want := graph.CC(g)
		return compare("component", labels, want)
	case ModeRadii:
		want := graph.Radii(g, sources)
		return compare("radius", radii, want)
	}
	return false, fmt.Errorf("unknown mode %v", mode)
}

func compare(what string, got, want []uint64) (bool, error) {
	if len(got) != len(want) {
		return false, fmt.Errorf("%s array length %d, want %d", what, len(got), len(want))
	}
	for v := range want {
		if got[v] != want[v] {
			return false, fmt.Errorf("vertex %d: %s %d, want %d", v, what, got[v], want[v])
		}
	}
	return true, nil
}

// DefaultSource returns the deterministic BFS source: the highest-degree
// vertex (ties to the lowest id), so traversals cover the graph's core.
func DefaultSource(g *graph.Graph) int {
	best, bestDeg := 0, -1
	for v := 0; v < g.NumVertices(); v++ {
		if d := g.Degree(v); d > bestDeg {
			best, bestDeg = v, d
		}
	}
	return best
}
