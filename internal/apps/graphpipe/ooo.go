package graphpipe

import (
	"fifer/internal/graph"
	"fifer/internal/mem"
	"fifer/internal/ooo"
)

// OOO baselines for the graph benchmarks: the reference algorithms executed
// instruction-by-instruction through the interval core model. The serial
// variant runs everything on core 0; the multicore variant splits each BFS
// level's fringe across cores with a barrier per level (the structure of
// level-synchronous parallel BFS, our stand-in for PBFS/Ligra — see
// DESIGN.md §5).

// oooGraph is the graph laid out in an OOO machine's memory.
type oooGraph struct {
	g          *graph.Graph
	offsetsA   mem.Addr
	neighborsA mem.Addr
	labelA     mem.Addr
	radiiA     mem.Addr
	fringeA    []mem.Addr // per-core next-fringe buffers
}

func layoutOOO(m *ooo.Machine, g *graph.Graph, radii bool) *oooGraph {
	og := &oooGraph{g: g}
	b := m.Backing
	og.offsetsA = b.AllocSlice(g.Offsets)
	og.neighborsA = b.AllocSlice(g.Neighbors)
	n := g.NumVertices()
	labels := make([]uint64, n)
	for i := range labels {
		labels[i] = graph.Unset
	}
	og.labelA = b.AllocSlice(labels)
	if radii {
		og.radiiA = b.AllocSlice(make([]uint64, n))
	}
	for range m.Cores {
		og.fringeA = append(og.fringeA, b.AllocWords(n))
	}
	return og
}

func (og *oooGraph) labelAddr(v uint64) mem.Addr { return og.labelA + mem.Addr(v*mem.WordBytes) }

// bfsLevel processes one fringe level on the given core, appending
// discovered vertices to the core's fringe buffer. Returns the new fringe.
func (og *oooGraph) bfsLevel(c *ooo.Core, coreIdx int, fringe []uint64, d uint64, radii bool) []uint64 {
	var next []uint64
	fa := og.fringeA[coreIdx]
	for _, v := range fringe {
		// Offsets loads: addresses known, independent of each other.
		depS := c.Load(og.offsetsA+mem.Addr(v*mem.WordBytes), 0)
		c.Load(og.offsetsA+mem.Addr((v+1)*mem.WordBytes), 0)
		c.Op(2) // loop bookkeeping
		start, end := og.g.Offsets[v], og.g.Offsets[v+1]
		for e := start; e < end; e++ {
			depN := c.Load(og.neighborsA+mem.Addr(e*mem.WordBytes), depS)
			ngh := og.g.Neighbors[e]
			depD := c.Load(og.labelAddr(ngh), depN)
			unset := c.Backing().Load(og.labelAddr(ngh)) == graph.Unset
			c.Branch(1, unset, depD)
			c.Op(5) // induction, compare, frontier bookkeeping (Ligra edgeMap)
			if unset {
				c.StoreValue(og.labelAddr(ngh), d)
				c.StoreValue(fa+mem.Addr(len(next)*mem.WordBytes), ngh)
				c.Op(3) // CAS retry check + frontier-count update
				next = append(next, ngh)
				if radii {
					ra := og.radiiA + mem.Addr(ngh*mem.WordBytes)
					depR := c.Load(ra, depN)
					old := c.Backing().Load(ra)
					c.Branch(2, d > old, depR)
					if d > old {
						c.StoreValue(ra, d)
					}
				}
			}
		}
	}
	return next
}

// bfsRun performs one complete BFS from src across the machine's cores,
// labeling vertices with their distance.
func (og *oooGraph) bfsRun(m *ooo.Machine, src int, radii bool) {
	m.Cores[0].StoreValue(og.labelAddr(uint64(src)), 0)
	cur := []uint64{uint64(src)}
	for d := uint64(1); len(cur) > 0; d++ {
		var next []uint64
		k := len(m.Cores)
		per := (len(cur) + k - 1) / k
		for i, core := range m.Cores {
			lo, hi := i*per, (i+1)*per
			if lo > len(cur) {
				lo = len(cur)
			}
			if hi > len(cur) {
				hi = len(cur)
			}
			next = append(next, og.bfsLevel(core, i, cur[lo:hi], d, radii)...)
		}
		m.Barrier()
		cur = next
	}
}

// RunOOO executes the mode's reference algorithm on an OOO machine with the
// given core count, returning timing plus the computed labels (distances or
// components) and radii estimates for verification.
func RunOOO(m *ooo.Machine, mode Mode, g *graph.Graph, sources []int) (labels, radii []uint64) {
	og := layoutOOO(m, g, mode == ModeRadii)
	c0 := m.Cores[0]
	switch mode {
	case ModeBFS:
		og.bfsRun(m, sources[0], false)
	case ModeRadii:
		for i, src := range sources {
			if i > 0 {
				// Reset per-search distances (bookkeeping pass).
				for v := 0; v < g.NumVertices(); v++ {
					m.Backing.Store(og.labelAddr(uint64(v)), graph.Unset)
				}
				c0.Op(g.NumVertices() / 8) // vectorized memset cost
			}
			og.bfsRun(m, src, true)
			m.Barrier()
		}
	case ModeCC:
		for s := 0; s < g.NumVertices(); s++ {
			dep := c0.Load(og.labelAddr(uint64(s)), 0)
			visited := m.Backing.Load(og.labelAddr(uint64(s))) != graph.Unset
			c0.Branch(3, visited, dep)
			if visited {
				continue
			}
			if g.Degree(s) == 0 {
				c0.StoreValue(og.labelAddr(uint64(s)), uint64(s))
				continue
			}
			og.ccRun(m, s)
		}
	}
	labels = make([]uint64, g.NumVertices())
	for v := range labels {
		labels[v] = m.Backing.Load(og.labelAddr(uint64(v)))
	}
	if mode == ModeRadii {
		radii = make([]uint64, g.NumVertices())
		for v := range radii {
			radii[v] = m.Backing.Load(og.radiiA + mem.Addr(v*mem.WordBytes))
		}
	}
	return labels, radii
}

// ccRun is a BFS that writes the seed id instead of distances.
func (og *oooGraph) ccRun(m *ooo.Machine, seed int) {
	c0 := m.Cores[0]
	c0.StoreValue(og.labelAddr(uint64(seed)), uint64(seed))
	cur := []uint64{uint64(seed)}
	for len(cur) > 0 {
		var next []uint64
		k := len(m.Cores)
		per := (len(cur) + k - 1) / k
		for i, core := range m.Cores {
			lo, hi := i*per, (i+1)*per
			if lo > len(cur) {
				lo = len(cur)
			}
			if hi > len(cur) {
				hi = len(cur)
			}
			next = append(next, og.bfsLevel(core, i, cur[lo:hi], uint64(seed), false)...)
		}
		m.Barrier()
		cur = next
	}
}
