package graphpipe

import (
	"testing"

	"fifer/internal/core"
	"fifer/internal/graph"
	"fifer/internal/sim"
)

func smallConfig(mode core.Mode, pes int) core.Config {
	cfg := core.DefaultConfig()
	cfg.Mode = mode
	cfg.PEs = pes
	cfg.Hier.Clients = pes
	cfg.BackingBytes = 64 << 20
	cfg.MaxCycles = 50_000_000
	return cfg
}

func testGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g := graph.RMAT("t", 500, 1500, 0.5, sim.NewRand(7))
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	return g
}

func runBFS(t *testing.T, g *graph.Graph, cfg core.Config, merged bool) []uint64 {
	t.Helper()
	sys := core.NewSystem(cfg)
	p := Build(sys, g, Options{Mode: ModeBFS, Merged: merged, Sources: []int{0}})
	res, err := p.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.Cycles == 0 {
		t.Fatal("zero cycles")
	}
	if err := sys.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
	return p.Labels()
}

func TestBFSFiferMatchesReference(t *testing.T) {
	g := testGraph(t)
	want := graph.BFS(g, 0)
	got := runBFS(t, g, smallConfig(core.ModeFifer, 4), false)
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("vertex %d: got dist %d, want %d", v, got[v], want[v])
		}
	}
}

func TestBFSStaticMatchesReference(t *testing.T) {
	g := testGraph(t)
	want := graph.BFS(g, 0)
	got := runBFS(t, g, smallConfig(core.ModeStatic, 8), false)
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("vertex %d: got dist %d, want %d", v, got[v], want[v])
		}
	}
}

func TestBFSMergedMatchesReference(t *testing.T) {
	g := testGraph(t)
	want := graph.BFS(g, 0)
	for _, mode := range []core.Mode{core.ModeFifer, core.ModeStatic} {
		got := runBFS(t, g, smallConfig(mode, 4), true)
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("%v merged: vertex %d: got %d, want %d", mode, v, got[v], want[v])
			}
		}
	}
}

func TestCCMatchesReference(t *testing.T) {
	g := testGraph(t)
	want := graph.CC(g)
	for _, mode := range []core.Mode{core.ModeFifer, core.ModeStatic} {
		sys := core.NewSystem(smallConfig(mode, 4))
		p := Build(sys, g, Options{Mode: ModeCC})
		if _, err := p.Run(); err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		got := p.Labels()
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("%v: vertex %d: got comp %d, want %d", mode, v, got[v], want[v])
			}
		}
	}
}

func TestRadiiMatchesReference(t *testing.T) {
	g := testGraph(t)
	sources := []int{0, 3, 17}
	want := graph.Radii(g, sources)
	sys := core.NewSystem(smallConfig(core.ModeFifer, 4))
	p := Build(sys, g, Options{Mode: ModeRadii, Sources: sources})
	if _, err := p.Run(); err != nil {
		t.Fatal(err)
	}
	got := p.Radii()
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("vertex %d: got radius %d, want %d", v, got[v], want[v])
		}
	}
}

func TestFiferFasterThanStaticOnSkewedGraph(t *testing.T) {
	g := graph.RMAT("skew", 2000, 12000, 0.6, sim.NewRand(11))
	run := func(mode core.Mode) uint64 {
		sys := core.NewSystem(smallConfig(mode, 8))
		p := Build(sys, g, Options{Mode: ModeBFS, Sources: []int{0}})
		res, err := p.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Cycles
	}
	fifer := run(core.ModeFifer)
	static := run(core.ModeStatic)
	if fifer >= static {
		t.Fatalf("Fifer (%d cycles) not faster than static (%d cycles) on a skewed graph", fifer, static)
	}
}
