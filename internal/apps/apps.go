// Package apps holds the types shared by all six benchmark applications:
// the four evaluated systems, stage placement across PEs, and the run
// outcome consumed by the benchmark harness.
package apps

import (
	"fifer/internal/core"
	"fifer/internal/energy"
)

// SystemKind names the four evaluated systems (Sec. 7.1, Fig. 13 legend).
type SystemKind int

const (
	// SerialOOO: 1-core out-of-order Skylake-like baseline.
	SerialOOO SystemKind = iota
	// MulticoreOOO: 4-core out-of-order baseline (Fig. 13's normalization).
	MulticoreOOO
	// StaticPipe: 16-PE CGRA with static spatial pipelines (Fig. 11a).
	StaticPipe
	// FiferPipe: 16-PE Fifer with dynamic temporal pipelines (Fig. 11b).
	FiferPipe
)

func (k SystemKind) String() string {
	switch k {
	case SerialOOO:
		return "serial-ooo"
	case MulticoreOOO:
		return "4-core-ooo"
	case StaticPipe:
		return "static-16pe"
	case FiferPipe:
		return "fifer-16pe"
	}
	return "unknown"
}

// Kinds lists all four systems in Fig. 13's order.
var Kinds = []SystemKind{SerialOOO, MulticoreOOO, StaticPipe, FiferPipe}

// Placement maps a pipeline's stages onto PEs. Fifer places every stage of
// replica r on PE r (time-multiplexed); the static baseline spreads each
// replica's stages across consecutive PEs, one stage per PE, which divides
// the PE count by the stage count (Sec. 7.1).
type Placement struct {
	Replicas int
	PEOf     func(replica, stageIdx int) int
}

// PlaceFor derives the placement for a pipeline with nstages stages on a
// system with cfg.PEs processing elements under cfg.Mode.
func PlaceFor(cfg core.Config, nstages int) Placement {
	if cfg.Mode == core.ModeFifer {
		return Placement{
			Replicas: cfg.PEs,
			PEOf:     func(replica, _ int) int { return replica },
		}
	}
	reps := cfg.PEs / nstages
	if reps < 1 {
		reps = 1
	}
	return Placement{
		Replicas: reps,
		PEOf:     func(replica, stageIdx int) int { return (replica*nstages + stageIdx) % cfg.PEs },
	}
}

// Outcome is one (app, input, system) measurement.
type Outcome struct {
	Kind   SystemKind
	Cycles uint64
	// Pipe holds CGRA-system details (zero-valued for OOO runs).
	Pipe core.Result
	// OOOIssued is the OOO systems' issue-bandwidth cycles (instrs/width,
	// summed over cores); OOOIdle is barrier-wait cycles summed over cores.
	OOOIssued uint64
	OOOIdle   uint64
	// Energy accounting inputs gathered from the run.
	Counts energy.Counts
	// Verified is set when the run's functional output matched the
	// reference implementation.
	Verified bool
}

// Owner computes the contiguous-block shard owner of element v among n
// elements split across r shards ("examining bits of the id", Sec. 5.6 —
// we use the high bits, i.e. contiguous blocks, which also makes per-shard
// scans contiguous in memory).
func Owner(v, n, r int) int {
	block := (n + r - 1) / r
	o := v / block
	if o >= r {
		o = r - 1
	}
	return o
}

// OwnedRange returns shard s's [lo, hi) element range.
func OwnedRange(s, n, r int) (lo, hi int) {
	block := (n + r - 1) / r
	lo = s * block
	hi = lo + block
	if hi > n {
		hi = n
	}
	if lo > n {
		lo = n
	}
	return lo, hi
}
