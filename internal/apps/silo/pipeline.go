package silo

import (
	"fmt"

	"fifer/internal/apps"
	"fifer/internal/btree"
	"fifer/internal/cgra"
	"fifer/internal/core"
	"fifer/internal/mem"
	"fifer/internal/queue"
	"fifer/internal/stage"
)

type pipeline struct {
	sys    *core.System
	tree   *btree.Tree
	merged bool
	place  apps.Placement
	reps   []*replica
}

type replica struct {
	id       int
	keysA    mem.Addr // this replica's lookup keys
	nKeys    int
	resultsA mem.Addr
	resIdx   int // S3's result counter register

	inFlight int // lookups inside the traversal loop
	maxFly   int

	drmKeys *core.DRM // scan over keysA
	drmNode *core.DRM // dereference node headers

	keyQ  *apps.QueueRef
	nodeQ *apps.QueueRef // the cyclic queue: (key, nodeAddr) pairs
	pendQ *apps.QueueRef
	hdrQ  *apps.QueueRef
	leafQ *apps.QueueRef

	nodeFromQ0 stage.OutPort
	nodeFromS2 stage.OutPort

	// Merged-variant register: none needed (single stage walks levels
	// with coupled loads, one level per firing).
	mKey    uint64
	mAddr   mem.Addr
	mActive bool
}

func (p *pipeline) stages() int {
	if p.merged {
		return 1
	}
	return 4
}

func build(sys *core.System, ds Dataset, merged bool) *pipeline {
	p := &pipeline{sys: sys, merged: merged}
	tree, err := btree.Build(sys.Backing, ds.Keys, ds.Values)
	if err != nil {
		panic(err)
	}
	p.tree = tree
	p.place = apps.PlaceFor(sys.Cfg, p.stages())
	R := p.place.Replicas
	b := sys.Backing

	qp := apps.NewQueuePlan(sys)
	for r := 0; r < R; r++ {
		rep := &replica{id: r}
		// Stripe lookups across replicas.
		var mine []uint64
		for i := r; i < len(ds.Lookups); i += R {
			mine = append(mine, ds.Lookups[i])
		}
		rep.nKeys = len(mine)
		if len(mine) == 0 {
			mine = []uint64{0}
		}
		rep.keysA = b.AllocSlice(mine)
		nres := rep.nKeys
		if nres == 0 {
			nres = 1
		}
		rep.resultsA = b.AllocWords(nres)

		pe := func(s int) int { return p.place.PEOf(r, s) }
		rep.drmKeys = sys.PE(pe(0)).DRM(0)
		if merged {
			rep.keyQ = qp.Request(pe(0), fmt.Sprintf("r%d.key", r), 1, nil)
		} else {
			rep.drmNode = sys.PE(pe(1)).DRM(1)
			rep.keyQ = qp.Request(pe(0), fmt.Sprintf("r%d.key", r), 1, nil)
			rep.nodeQ = qp.Request(pe(1), fmt.Sprintf("r%d.node", r), 2, nodeProducers(pe(0), pe(2), pe(1)))
			rep.pendQ = qp.Request(pe(2), fmt.Sprintf("r%d.pend", r), 1, prod(pe(1), pe(2)))
			rep.hdrQ = qp.Request(pe(2), fmt.Sprintf("r%d.hdr", r), 1, prod(pe(1), pe(2)))
			rep.leafQ = qp.Request(pe(3), fmt.Sprintf("r%d.leaf", r), 1, prod(pe(2), pe(3)))
		}
		p.reps = append(p.reps, rep)
	}
	qp.Build()

	for r := 0; r < R; r++ {
		rep := p.reps[r]
		rep.drmKeys.Configure(core.DRMScan, rep.keyQ.Local())
		if merged {
			p.addMerged(rep)
			continue
		}
		pe1 := p.place.PEOf(r, 1)
		rep.drmNode.Configure(core.DRMDereference, drmOut(rep.hdrQ, pe1))
		rep.nodeFromQ0 = rep.nodeQ.Out(0)
		rep.nodeFromS2 = rep.nodeQ.Out(1)
		caps := []int{rep.nodeQ.Queue().Cap(), rep.pendQ.Queue().Cap(), rep.leafQ.Queue().Cap()}
		m := caps[0]
		for _, c := range caps {
			if c < m {
				m = c
			}
		}
		rep.maxFly = m / 4
		if rep.maxFly < 2 {
			rep.maxFly = 2
		}
		p.addFull(rep)
	}
	return p
}

// nodeProducers lists the cyclic queue's two producers: the query stage and
// the traverse stage.
func nodeProducers(q0PE, s2PE, consPE int) []int {
	if q0PE == consPE && s2PE == consPE {
		return nil
	}
	return []int{q0PE, s2PE}
}

func prod(prodPE, consPE int) []int {
	if prodPE == consPE {
		return nil
	}
	return []int{prodPE}
}

func drmOut(q *apps.QueueRef, drmPE int) stage.OutPort {
	if q.Consumer == drmPE {
		return q.Local()
	}
	return q.Out(0)
}

func (p *pipeline) addFull(rep *replica) {
	r := rep.id
	pe := func(s int) int { return p.place.PEOf(r, s) }
	root := uint64(p.tree.RootAddr)

	// Q0: query — inject keys, throttled by the in-flight limit.
	p.sys.PE(pe(0)).AddStage(&stage.Stage{
		Kernel: stage.KernelFunc{
			KernelName: fmt.Sprintf("silo.r%d.query", r),
			Fn: func(c *stage.Ctx) stage.Status {
				if rep.inFlight >= rep.maxFly {
					return stage.Sleep
				}
				t, ok := c.In[0].Peek()
				if !ok {
					return stage.NoInput
				}
				if rep.nodeFromQ0.Space() < 2 {
					return stage.NoOutput
				}
				c.In[0].Pop()
				rep.nodeFromQ0.Push(queue.Data(t.Value))
				rep.nodeFromQ0.Push(queue.Data(root))
				rep.inFlight++
				return stage.Fired
			},
		},
		Mapping: mustPlace(p.sys, queryDFG()),
		In:      []stage.InPort{throttledIn{InPort: rep.keyQ.In(), rep: rep}},
		Out:     []stage.OutPort{rep.nodeFromQ0},
	})

	// S1: lookup — issue the header dereference.
	p.sys.PE(pe(1)).AddStage(&stage.Stage{
		Kernel: stage.KernelFunc{
			KernelName: fmt.Sprintf("silo.r%d.lookup", r),
			Fn: func(c *stage.Ctx) stage.Status {
				if c.In[0].Len() < 2 {
					return stage.NoInput
				}
				if c.Out[0].Space() < 1 || c.Out[1].Space() < 2 {
					return stage.NoOutput
				}
				key, _ := c.In[0].Pop()
				addr, _ := c.In[0].Pop()
				c.Out[0].Push(queue.Data(addr.Value)) // header word address
				c.Out[1].Push(queue.Data(key.Value))
				c.Out[1].Push(queue.Data(addr.Value))
				return stage.Fired
			},
		},
		Mapping: mustPlace(p.sys, lookupDFG()),
		In:      []stage.InPort{rep.nodeQ.In()},
		Out:     []stage.OutPort{rep.drmNode.InPort(), rep.pendQ.Out(0)},
	})

	// S2: traverse internal node (or forward leaves).
	p.sys.PE(pe(2)).AddStage(&stage.Stage{
		Kernel: stage.KernelFunc{
			KernelName: fmt.Sprintf("silo.r%d.traverse", r),
			Fn: func(c *stage.Ctx) stage.Status {
				if c.In[0].Len() < 1 || c.In[1].Len() < 2 {
					return stage.NoInput
				}
				hdr, _ := c.In[0].Peek()
				numKeys, leaf := btree.DecodeHeader(hdr.Value)
				key, _ := c.In[1].Peek()
				addr, _ := c.In[1].PeekAt(1)
				if leaf {
					if c.Out[1].Space() < 2 {
						return stage.NoOutput
					}
					c.In[0].Pop()
					c.In[1].Pop()
					c.In[1].Pop()
					c.Out[1].Push(queue.Data(key.Value))
					c.Out[1].Push(queue.Data(addr.Value))
					return stage.Fired
				}
				if c.Out[0].Space() < 2 {
					return stage.NoOutput
				}
				c.In[0].Pop()
				c.In[1].Pop()
				c.In[1].Pop()
				na := mem.Addr(addr.Value)
				i := 0
				for i < numKeys && key.Value >= c.Load(btree.KeyAddr(na, i)) {
					i++
				}
				child := c.Load(btree.ChildAddr(na, i))
				c.Out[0].Push(queue.Data(key.Value))
				c.Out[0].Push(queue.Data(child))
				return stage.Fired
			},
		},
		Mapping: mustPlace(p.sys, traverseDFG()),
		In:      []stage.InPort{rep.hdrQ.In(), rep.pendQ.In()},
		Out:     []stage.OutPort{rep.nodeFromS2, rep.leafQ.Out(0)},
	})

	// S3: process leaf — locate the key, fetch the value, store the result.
	p.sys.PE(pe(3)).AddStage(&stage.Stage{
		Kernel: stage.KernelFunc{
			KernelName: fmt.Sprintf("silo.r%d.leaf", r),
			Fn: func(c *stage.Ctx) stage.Status {
				if c.In[0].Len() < 2 {
					return stage.NoInput
				}
				key, _ := c.In[0].Pop()
				addr, _ := c.In[0].Pop()
				na := mem.Addr(addr.Value)
				numKeys, _ := btree.DecodeHeader(c.Load(na))
				val := MissingMark
				for i := 0; i < numKeys; i++ {
					if c.Load(btree.KeyAddr(na, i)) == key.Value {
						val = c.Load(btree.ChildAddr(na, i))
						break
					}
				}
				c.Store(rep.resultsA+mem.Addr(rep.resIdx*mem.WordBytes), val)
				rep.resIdx++
				rep.inFlight--
				return stage.Fired
			},
		},
		Mapping: mustPlace(p.sys, leafDFG()),
		In:      []stage.InPort{rep.leafQ.In()},
	})
}

// addMerged attaches the one-stage merged variant: the whole traversal with
// coupled loads, one level per firing.
func (p *pipeline) addMerged(rep *replica) {
	root := mem.Addr(p.tree.RootAddr)
	p.sys.PE(p.place.PEOf(rep.id, 0)).AddStage(&stage.Stage{
		Kernel: stage.KernelFunc{
			KernelName: fmt.Sprintf("silo.r%d.merged", rep.id),
			Fn: func(c *stage.Ctx) stage.Status {
				if !rep.mActive {
					t, ok := c.In[0].Peek()
					if !ok {
						return stage.NoInput
					}
					c.In[0].Pop()
					rep.mKey, rep.mAddr, rep.mActive = t.Value, root, true
					return stage.Fired
				}
				numKeys, leaf := btree.DecodeHeader(c.Load(rep.mAddr))
				if leaf {
					val := MissingMark
					for i := 0; i < numKeys; i++ {
						if c.Load(btree.KeyAddr(rep.mAddr, i)) == rep.mKey {
							val = c.Load(btree.ChildAddr(rep.mAddr, i))
							break
						}
					}
					c.Store(rep.resultsA+mem.Addr(rep.resIdx*mem.WordBytes), val)
					rep.resIdx++
					rep.mActive = false
					return stage.Fired
				}
				i := 0
				for i < numKeys && rep.mKey >= c.Load(btree.KeyAddr(rep.mAddr, i)) {
					i++
				}
				rep.mAddr = mem.Addr(c.Load(btree.ChildAddr(rep.mAddr, i)))
				return stage.Fired
			},
		},
		Mapping: mustPlace(p.sys, mergedDFG()),
		In:      []stage.InPort{rep.keyQ.In()},
		StateWork: func() int {
			if rep.mActive {
				return 1
			}
			return 0
		},
	})
}

func mustPlace(sys *core.System, g *cgra.DFG) *cgra.Mapping {
	m, err := cgra.Place(g, sys.Cfg.Fabric, sys.Cfg.SIMDReplication)
	if err != nil {
		panic(err)
	}
	return m
}
