// Package silo is the in-memory-database benchmark (Sec. 7.2, Fig. 12b):
// YCSB-C point lookups against a B+tree index. The pipeline contains a
// cycle — internal nodes re-enqueue the lookup for another dereference —
// which Fifer permits because each internal node enqueues at most one
// additional node. Lookups are striped across PEs; the pipeline overlaps
// many lookups to keep multiple memory accesses in flight.
//
// Stages per replica (four, as in Fig. 12b):
//
//	Q0 query:    stream keys, inject (key, root) into the traversal loop,
//	             throttled by an in-flight-lookup credit counter so the
//	             cyclic queue can always absorb re-enqueues
//	S1 lookup:   issue the node-header dereference to the node DRM
//	S2 traverse: internal nodes — scan separator keys, follow the child
//	             pointer back into the loop; leaves forward to S3
//	S3 leaf:     scan the leaf, fetch the value, store the result
//
// Per the paper, Silo's queue memory is scaled to a quarter of the default
// (16 KB → 4 KB) to better fit the LLC.
package silo

import (
	"fifer/internal/apps"
	"fifer/internal/btree"
	"fifer/internal/core"
	"fifer/internal/sim"
	"fifer/internal/ycsb"
)

// Name is the benchmark's reporting name.
const Name = "Silo"

// Workload sizes per scale (tree records / total lookups).
var scales = []struct{ records, lookups int }{
	{20_000, 2_000},
	{200_000, 8_000},
	{1_000_000, 32_000},
}

// Dataset is a generated Silo workload.
type Dataset struct {
	Keys    []uint64 // loaded record keys (index i ↔ key Keys[i])
	Values  []uint64
	Lookups []uint64 // YCSB-C request keys
}

// GenerateDataset builds the B+tree contents and the YCSB-C request stream.
func GenerateDataset(scale int, seed uint64) Dataset {
	sc := scales[scale]
	d := Dataset{
		Keys:   make([]uint64, sc.records),
		Values: make([]uint64, sc.records),
	}
	r := sim.NewRand(seed ^ 0x51107)
	for i := range d.Keys {
		d.Keys[i] = ycsb.DefaultKeyOf(uint64(i))
		d.Values[i] = r.Uint64()
	}
	w := ycsb.GenerateC(sc.records, sc.lookups, seed^0xc0ffee, ycsb.DefaultKeyOf)
	d.Lookups = w.Keys
	return d
}

// Run executes Silo on the chosen system at the given scale.
func Run(kind apps.SystemKind, scale int, seed uint64, merged bool, override func(*core.Config)) (apps.Outcome, error) {
	ds := GenerateDataset(scale, seed)
	return runApp(kind, ds, scale, merged, override)
}

// refLookups computes the expected lookup results (value, found-flag packed
// as value with missing keys yielding btree.MissingMark).
func refLookups(t *btree.Tree, lookups []uint64) []uint64 {
	out := make([]uint64, len(lookups))
	for i, k := range lookups {
		v, ok := t.Lookup(k)
		if !ok {
			v = MissingMark
		}
		out[i] = v
	}
	return out
}

// MissingMark is stored as the result of a lookup that found no record.
const MissingMark = ^uint64(0)
