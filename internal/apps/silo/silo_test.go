package silo

import (
	"testing"

	"fifer/internal/apps"
	"fifer/internal/core"
)

func small(cfg *core.Config) {
	cfg.PEs = 8
	cfg.Hier.Clients = 8
	cfg.MaxCycles = 100_000_000
}

func tinyDataset() Dataset {
	ds := GenerateDataset(0, 42)
	ds.Lookups = ds.Lookups[:400]
	return ds
}

func TestSiloAllSystemsMatchReference(t *testing.T) {
	ds := tinyDataset()
	for _, kind := range apps.Kinds {
		out, err := runApp(kind, ds, 2, false, small)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if !out.Verified || out.Cycles == 0 {
			t.Fatalf("%v: unverified or zero cycles", kind)
		}
	}
}

func TestSiloMergedMatchesReference(t *testing.T) {
	ds := tinyDataset()
	for _, kind := range []apps.SystemKind{apps.StaticPipe, apps.FiferPipe} {
		out, err := runApp(kind, ds, 2, true, small)
		if err != nil {
			t.Fatalf("%v merged: %v", kind, err)
		}
		if !out.Verified {
			t.Fatalf("%v merged: unverified", kind)
		}
	}
}

func TestSiloMissingKeysReported(t *testing.T) {
	ds := tinyDataset()
	// Poison some lookups with keys that are not in the tree.
	for i := 0; i < len(ds.Lookups); i += 7 {
		ds.Lookups[i] = ds.Lookups[i] ^ 0x1
	}
	out, err := runApp(apps.FiferPipe, ds, 2, false, small)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Verified {
		t.Fatal("unverified")
	}
}
