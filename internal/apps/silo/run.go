package silo

import (
	"fmt"

	"fifer/internal/apps"
	"fifer/internal/btree"
	"fifer/internal/cgra"
	"fifer/internal/core"
	"fifer/internal/mem"
	"fifer/internal/ooo"
	"fifer/internal/queue"
	"fifer/internal/stage"
)

// throttledIn hides the key queue from the scheduler while the traversal
// loop is at its in-flight-lookup limit, so the query stage is not
// considered ready when it cannot actually inject.
type throttledIn struct {
	stage.InPort
	rep *replica
}

func (t throttledIn) Len() int {
	if t.rep.inFlight >= t.rep.maxFly {
		return 0
	}
	return t.InPort.Len()
}

func backingFor(ds Dataset) int {
	nodes := (len(ds.Keys)/btree.Fanout + 2) * 2
	return nodes*btree.NodeBytes + len(ds.Lookups)*2*mem.WordBytes + (8 << 20)
}

func runApp(kind apps.SystemKind, ds Dataset, scale int, merged bool, override func(*core.Config)) (apps.Outcome, error) {
	out := apps.Outcome{Kind: kind}
	var got []uint64 // results in global lookup order
	switch kind {
	case apps.SerialOOO, apps.MulticoreOOO:
		cores := 1
		if kind == apps.MulticoreOOO {
			cores = 4
		}
		m := apps.NewOOOMachine(cores, backingFor(ds), scale)
		got = runOOO(m, ds)
		out.Cycles = m.Cycles()
		out.Counts = apps.CollectOOOCounts(m)
		apps.FillOOO(&out, m)
		tree, err := btree.Build(mem.NewBacking(backingFor(ds)), ds.Keys, ds.Values)
		if err != nil {
			return out, err
		}
		want := refLookups(tree, ds.Lookups)
		if err := compare(got, want); err != nil {
			return out, fmt.Errorf("%v silo: %w", kind, err)
		}
	case apps.StaticPipe, apps.FiferPipe:
		cfg := core.DefaultConfig()
		if kind == apps.StaticPipe {
			cfg = core.StaticConfig()
		}
		// Sec. 7.2: Silo's queue memory is scaled down 4× to fit the LLC.
		cfg.QueueMemBytes /= 4
		cfg.BackingBytes = backingFor(ds)
		apps.ScaleLLC(&cfg, scale)
		if override != nil {
			override(&cfg)
		}
		sys, err := core.NewSystemChecked(cfg)
		if err != nil {
			return out, fmt.Errorf("%v silo: %w", kind, err)
		}
		p := build(sys, ds, merged)
		p.startScans()
		res, err := sys.Run(core.ProgramFunc(func(*core.System) bool { return false }))
		if err != nil {
			return out, fmt.Errorf("%v silo: %w", kind, err)
		}
		if err := sys.CheckInvariants(); err != nil {
			return out, fmt.Errorf("%v silo invariants: %w", kind, err)
		}
		out.Cycles = res.Cycles
		out.Pipe = res
		out.Counts = apps.CollectPipeCounts(sys, res)
		got = p.extract(len(ds.Lookups))
		want := refLookups(p.tree, ds.Lookups)
		if err := compare(got, want); err != nil {
			return out, fmt.Errorf("%v silo: %w", kind, err)
		}
	default:
		return out, fmt.Errorf("unknown system kind %v", kind)
	}
	out.Verified = true
	return out, nil
}

func compare(got, want []uint64) error {
	if len(got) != len(want) {
		return fmt.Errorf("%d results, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			return fmt.Errorf("lookup %d: value %#x, want %#x", i, got[i], want[i])
		}
	}
	return nil
}

// startScans seeds each replica's key-scan DRM with its key range.
func (p *pipeline) startScans() {
	for _, rep := range p.reps {
		if rep.nKeys == 0 {
			continue
		}
		in := rep.drmKeys.In()
		in.Enq(queue.Data(uint64(rep.keysA)))
		in.Enq(queue.Data(uint64(rep.keysA) + uint64(rep.nKeys*mem.WordBytes)))
	}
}

// extract reassembles results from per-replica stripes into global order.
func (p *pipeline) extract(total int) []uint64 {
	out := make([]uint64, total)
	R := len(p.reps)
	for r, rep := range p.reps {
		for k := 0; k < rep.nKeys; k++ {
			out[r+k*R] = p.sys.Backing.Load(rep.resultsA + mem.Addr(k*mem.WordBytes))
		}
	}
	return out
}

// runOOO executes the lookups through the OOO model, striping across cores.
func runOOO(m *ooo.Machine, ds Dataset) []uint64 {
	tree, err := btree.Build(m.Backing, ds.Keys, ds.Values)
	if err != nil {
		panic(err)
	}
	keysA := m.Backing.AllocSlice(ds.Lookups)
	resA := m.Backing.AllocWords(len(ds.Lookups))
	out := make([]uint64, len(ds.Lookups))
	for i, key := range ds.Lookups {
		c := m.Cores[i%len(m.Cores)]
		c.Load(keysA+mem.Addr(uint64(i)*mem.WordBytes), 0)
		addr := tree.RootAddr
		dep := ooo.Dep(0)
		for {
			depH := c.Load(addr, dep)
			numKeys, leaf := btree.DecodeHeader(m.Backing.Load(addr))
			c.Branch(30, leaf, depH)
			if leaf {
				val := MissingMark
				for k := 0; k < numKeys; k++ {
					c.Load(btree.KeyAddr(addr, k), depH)
					c.Op(1)
					if m.Backing.Load(btree.KeyAddr(addr, k)) == key {
						depV := c.Load(btree.ChildAddr(addr, k), depH)
						val = m.Backing.Load(btree.ChildAddr(addr, k))
						_ = depV
						break
					}
				}
				out[i] = val
				c.StoreValue(resA+mem.Addr(uint64(i)*mem.WordBytes), val)
				break
			}
			k := 0
			for k < numKeys && key >= m.Backing.Load(btree.KeyAddr(addr, k)) {
				c.Load(btree.KeyAddr(addr, k), depH)
				c.Op(1)
				k++
			}
			dep = c.Load(btree.ChildAddr(addr, k), depH)
			addr = mem.Addr(m.Backing.Load(btree.ChildAddr(addr, k)))
		}
	}
	m.Barrier()
	return out
}

// --- Stage dataflow graphs -------------------------------------------------

func queryDFG() *cgra.DFG {
	g := cgra.NewDFG("silo-query")
	key := g.Deq(0)
	root := g.Const(0)
	g.Enq(0, key)
	g.Enq(0, root)
	return g
}

func lookupDFG() *cgra.DFG {
	g := cgra.NewDFG("silo-lookup")
	key := g.Deq(0)
	addr := g.Deq(0)
	g.Enq(0, addr)
	g.Enq(1, key)
	g.Enq(1, addr)
	return g
}

func traverseDFG() *cgra.DFG {
	g := cgra.NewDFG("silo-traverse")
	hdr := g.Deq(0)
	key := g.Deq(1)
	addr := g.Deq(1)
	one := g.Const(1)
	nk := g.Add(cgra.OpShr, 0, hdr, one)
	leaf := g.Add(cgra.OpAnd, 0, hdr, one)
	// Separator scan: the node's keys arrive as a line-wide coupled load;
	// comparators select the child index.
	k0 := g.Add(cgra.OpLoad, 0, addr)
	k1 := g.Add(cgra.OpLoad, 0, addr)
	c0 := g.Add(cgra.OpCmpLT, 0, key, k0)
	c1 := g.Add(cgra.OpCmpLT, 0, key, k1)
	idx := g.Add(cgra.OpAdd, 0, c0, c1)
	_ = nk
	ca := g.Add(cgra.OpLEA, 3, addr, idx)
	child := g.Add(cgra.OpLoad, 0, ca)
	routed := g.Add(cgra.OpSelect, 0, leaf, addr, child)
	g.Enq(0, key)
	g.Enq(0, routed)
	return g
}

func leafDFG() *cgra.DFG {
	g := cgra.NewDFG("silo-leaf")
	key := g.Deq(0)
	addr := g.Deq(0)
	hdr := g.Add(cgra.OpLoad, 0, addr)
	k0 := g.Add(cgra.OpLoad, 0, addr)
	k1 := g.Add(cgra.OpLoad, 0, addr)
	e0 := g.Add(cgra.OpCmpEQ, 0, key, k0)
	e1 := g.Add(cgra.OpCmpEQ, 0, key, k1)
	idx := g.Add(cgra.OpAdd, 0, e0, e1)
	va := g.Add(cgra.OpLEA, 3, addr, idx)
	val := g.Add(cgra.OpLoad, 0, va)
	_ = hdr
	rb := g.Const(0)
	ri := g.Const(0)
	ra := g.Add(cgra.OpLEA, 3, rb, ri)
	g.Add(cgra.OpStore, 0, ra, val)
	return g
}

func mergedDFG() *cgra.DFG {
	g := cgra.NewDFG("silo-merged")
	key := g.Deq(0)
	addr := g.Const(0) // node-address register
	hdr := g.Add(cgra.OpLoad, 0, addr)
	one := g.Const(1)
	leaf := g.Add(cgra.OpAnd, 0, hdr, one)
	k0 := g.Add(cgra.OpLoad, 0, addr)
	k1 := g.Add(cgra.OpLoad, 0, addr)
	c0 := g.Add(cgra.OpCmpLT, 0, key, k0)
	c1 := g.Add(cgra.OpCmpLT, 0, key, k1)
	idx := g.Add(cgra.OpAdd, 0, c0, c1)
	ca := g.Add(cgra.OpLEA, 3, addr, idx)
	child := g.Add(cgra.OpLoad, 0, ca)
	next := g.Add(cgra.OpSelect, 0, leaf, addr, child)
	rb := g.Const(0)
	ra := g.Add(cgra.OpLEA, 3, rb, next)
	g.Add(cgra.OpStore, 0, ra, child)
	return g
}
