// Package radii is the graph-radii-estimation benchmark (Sec. 7.2): BFS
// from a random sample of sources, recording each vertex's maximum observed
// distance. The sample is seeded so every system sees identical sources.
package radii

import (
	"fifer/internal/apps"
	"fifer/internal/apps/graphpipe"
	"fifer/internal/core"
	"fifer/internal/graph"
	"fifer/internal/sim"
)

// Name is the benchmark's reporting name.
const Name = "Radii"

// Samples is the number of BFS sources (the paper samples iterations to
// bound simulation time; we do the same).
const Samples = 4

// Run executes Radii on the chosen system and input.
func Run(kind apps.SystemKind, input graph.Input, scale graph.Scale, seed uint64, merged bool, override func(*core.Config)) (apps.Outcome, error) {
	g := graph.Generate(input, scale, seed)
	sources := graph.SampleSources(g, Samples, sim.NewRand(seed^0x4add1))
	return graphpipe.RunApp(kind, graphpipe.ModeRadii, g, sources, int(scale), merged, override)
}
