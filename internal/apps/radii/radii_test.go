package radii

import (
	"testing"

	"fifer/internal/apps"
	"fifer/internal/graph"
)

func TestRadiiAllSystemsVerified(t *testing.T) {
	for _, kind := range apps.Kinds {
		out, err := Run(kind, graph.Hu, graph.ScaleTiny, 1, false, nil)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if !out.Verified || out.Cycles == 0 {
			t.Fatalf("%v: unverified", kind)
		}
	}
}

func TestRadiiSameSourcesAcrossSystems(t *testing.T) {
	// All systems must sample identical sources for the comparison to be
	// apples-to-apples: same seed ⇒ deterministic outcome per system.
	a, err := Run(apps.SerialOOO, graph.Dy, graph.ScaleTiny, 9, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(apps.SerialOOO, graph.Dy, graph.ScaleTiny, 9, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles {
		t.Fatalf("nondeterministic: %d vs %d", a.Cycles, b.Cycles)
	}
}

func TestRadiiMergedVerified(t *testing.T) {
	out, err := Run(apps.StaticPipe, graph.Hu, graph.ScaleTiny, 4, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Verified {
		t.Fatal("merged Radii unverified")
	}
}
