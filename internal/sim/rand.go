// Package sim provides the shared building blocks of the cycle-level
// simulator: a deterministic random-number generator, cycle bookkeeping,
// and a small statistics registry.
//
// Everything in this package (and in the packages built on it) is
// deterministic: the same seed and configuration always produce the same
// simulated cycle counts and the same functional results.
package sim

// Rand is a small, fast, deterministic xorshift64* generator.
// It is used everywhere randomness is needed (input generation, Zipfian
// sampling) so that simulations are reproducible without depending on
// math/rand's global state.
type Rand struct {
	state uint64
}

// NewRand returns a generator seeded with seed. A zero seed is remapped to a
// fixed non-zero constant because xorshift has an all-zero fixed point.
func NewRand(seed uint64) *Rand {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &Rand{state: seed}
}

// Uint64 returns the next pseudo-random 64-bit value.
func (r *Rand) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545f4914f6cdd1d
}

// Intn returns a pseudo-random integer in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a pseudo-random value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle pseudo-randomly reorders the first n elements using swap.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
