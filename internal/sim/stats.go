package sim

import (
	"fmt"
	"sort"
	"strings"
)

// Counter is a named monotonically increasing statistic.
type Counter struct {
	Name  string
	Value uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.Value += n }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Value++ }

// Stats is a registry of named counters. Components register counters at
// construction time; reporting code iterates over them in name order.
type Stats struct {
	counters map[string]*Counter
}

// NewStats returns an empty statistics registry.
func NewStats() *Stats {
	return &Stats{counters: make(map[string]*Counter)}
}

// Counter returns the counter with the given name, creating it on first use.
func (s *Stats) Counter(name string) *Counter {
	if c, ok := s.counters[name]; ok {
		return c
	}
	c := &Counter{Name: name}
	s.counters[name] = c
	return c
}

// Get returns the current value of the named counter, or zero if it has
// never been touched.
func (s *Stats) Get(name string) uint64 {
	if c, ok := s.counters[name]; ok {
		return c.Value
	}
	return 0
}

// Names returns all registered counter names in sorted order.
func (s *Stats) Names() []string {
	names := make([]string, 0, len(s.counters))
	for n := range s.counters {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// String renders the registry as "name=value" lines, sorted by name.
func (s *Stats) String() string {
	var b strings.Builder
	for _, n := range s.Names() {
		fmt.Fprintf(&b, "%s=%d\n", n, s.counters[n].Value)
	}
	return b.String()
}
