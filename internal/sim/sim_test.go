package sim

import (
	"testing"
	"testing/quick"
)

func TestRandDeterministic(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestRandZeroSeed(t *testing.T) {
	r := NewRand(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed stuck at zero")
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRand(1)
	for i := 0; i < 10_000; i++ {
		if v := r.Intn(7); v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	r.Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := NewRand(3)
	sum := 0.0
	for i := 0; i < 10_000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %g", f)
		}
		sum += f
	}
	if mean := sum / 10_000; mean < 0.45 || mean > 0.55 {
		t.Fatalf("mean %g far from 0.5", mean)
	}
}

// Property: Perm always returns a permutation.
func TestPermProperty(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		r := NewRand(seed)
		p := r.Perm(int(n%50) + 1)
		seen := make([]bool, len(p))
		for _, v := range p {
			if v < 0 || v >= len(p) || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestStats(t *testing.T) {
	s := NewStats()
	s.Counter("b").Add(3)
	s.Counter("a").Inc()
	s.Counter("b").Inc()
	if s.Get("b") != 4 || s.Get("a") != 1 || s.Get("missing") != 0 {
		t.Fatal("counter values wrong")
	}
	names := s.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("names = %v", names)
	}
	if s.String() != "a=1\nb=4\n" {
		t.Fatalf("render = %q", s.String())
	}
}
