package fifer_test

import (
	"strings"
	"testing"

	"fifer"
)

func TestPublicAPIRunApp(t *testing.T) {
	opt := fifer.Options{Scale: 0, Seed: 1}
	out, err := fifer.RunApp("BFS", "Hu", fifer.FiferPipe, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Verified || out.Cycles == 0 {
		t.Fatal("bad outcome")
	}
	e := fifer.EnergyBreakdown(out)
	if e.Total() <= 0 {
		t.Fatal("no energy accounted")
	}
}

func TestPublicAPIOverride(t *testing.T) {
	opt := fifer.Options{Scale: 0, Seed: 1}
	base, err := fifer.RunApp("BFS", "Hu", fifer.FiferPipe, opt)
	if err != nil {
		t.Fatal(err)
	}
	tiny, err := fifer.RunApp("BFS", "Hu", fifer.FiferPipe, opt, func(cfg *fifer.Config) {
		*cfg = cfg.WithQueueScale(0.25)
	})
	if err != nil {
		t.Fatal(err)
	}
	if tiny.Cycles == base.Cycles {
		t.Fatal("override had no effect")
	}
}

func TestPublicAPIUnknownApp(t *testing.T) {
	if _, err := fifer.RunApp("NoSuchApp", "x", fifer.FiferPipe, fifer.Options{}); err == nil {
		t.Fatal("unknown app accepted")
	}
}

func TestAppAndInputRegistry(t *testing.T) {
	if len(fifer.AppNames) != 6 {
		t.Fatalf("expected 6 apps, got %v", fifer.AppNames)
	}
	for _, app := range fifer.AppNames {
		if len(fifer.InputsOf(app)) == 0 {
			t.Fatalf("%s has no inputs", app)
		}
	}
	if got := fifer.InputsOf("SpMM"); len(got) != 6 {
		t.Fatalf("SpMM inputs = %v", got)
	}
}

func TestPrintTables(t *testing.T) {
	var b strings.Builder
	fifer.PrintTables(&b, fifer.Options{Scale: 0, Seed: 1})
	out := b.String()
	for _, want := range []string{"Table 1", "Table 2", "Table 3", "Table 4", "1.34", "coAuthorsDBLP"} {
		if !strings.Contains(out, want) {
			t.Fatalf("tables output missing %q", want)
		}
	}
}

func TestConfigsDiffer(t *testing.T) {
	if fifer.DefaultConfig().Mode == fifer.StaticConfig().Mode {
		t.Fatal("default and static configs share a mode")
	}
}
