module fifer

go 1.22
